#!/usr/bin/env python3
"""Deep forest vs CNN on trace-like data (the Figure 4/5 machinery).

A standalone machine-learning demo of the from-scratch deep forest:
multi-grained scanning extracts spatial features, cascade levels add
concepts, and the result is compared to the NumPy CNN baseline on the
same spatially-localized regression task — including run-to-run
stability, the paper's reason for choosing deep forests.

Run:  python examples/deep_forest_demo.py
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.baselines.cnn import CNNHyperParams, CNNRegressor
from repro.forest import DeepForestRegressor


def make_data(n, rng):
    """Targets depend on a localized patch plus a flat feature."""
    r = np.random.default_rng(rng)
    traces = r.normal(0, 0.25, size=(n, 16, 12))
    y = r.uniform(0.3, 1.0, size=n)
    for i in range(n):
        traces[i, 5:9, 4:8] += y[i]
    flat = r.uniform(size=(n, 4))
    return flat, traces, y + 0.3 * flat[:, 0]


def median_ape(pred, actual):
    return float(np.median(np.abs(pred - actual) / actual))


def main() -> None:
    flat_tr, traces_tr, y_tr = make_data(150, rng=0)
    flat_te, traces_te, y_te = make_data(80, rng=1)

    rows = []
    for seed in range(3):
        t0 = time.perf_counter()
        df = DeepForestRegressor(
            windows=[(4, 4), (8, 8)],
            mgs_estimators=10,
            n_levels=2,
            forests_per_level=4,
            n_estimators=20,
            rng=seed,
        )
        df.fit(flat_tr, traces_tr, y_tr)
        df_time = time.perf_counter() - t0
        df_err = median_ape(df.predict(flat_te, traces_te), y_te)

        t0 = time.perf_counter()
        cnn = CNNRegressor(
            CNNHyperParams(n_filters=8, kernel=(3, 3), hidden=32, epochs=30),
            rng=seed,
        )
        cnn.fit(flat_tr, traces_tr, y_tr)
        cnn_time = time.perf_counter() - t0
        cnn_err = median_ape(cnn.predict(flat_te, traces_te), y_te)
        rows.append([seed, df_err, df_time, cnn_err, cnn_time])

    print(
        format_table(
            ["seed", "DF median APE", "DF train s", "CNN median APE", "CNN train s"],
            rows,
            title="Deep forest vs CNN across seeds (Figure 5's phenomenon)",
            precision=4,
        )
    )

    df_errs = np.array([r[1] for r in rows])
    cnn_errs = np.array([r[3] for r in rows])
    print(
        f"\nspread across seeds: DF {df_errs.max() - df_errs.min():.4f}, "
        f"CNN {cnn_errs.max() - cnn_errs.min():.4f}"
    )
    print("Deep forests train layer-by-layer, so repeated trainings agree;")
    print("back-prop CNNs drift with initialization — the paper's Figure 5.")


if __name__ == "__main__":
    main()
