#!/usr/bin/env python3
"""Online management: re-planning timeouts as load drifts.

The paper's conclusion: "Given 30 minutes to profile workloads, our
approach can be used directly to manage short-term allocation."  This
example profiles once, then manages a Redis + Spstream collocation
through a diurnal load pattern, re-planning the timeout vector each
epoch and comparing against the one-shot plan a dynaSprint-style
calibration would freeze.

Run:  python examples/online_management.py
"""

import numpy as np

from repro import Profiler, StacModel, uniform_conditions
from repro.analysis import format_table
from repro.core.profiler import ProfilerSettings
from repro.core.sampling import grid_anchor_conditions
from repro.manager import AdaptiveTimeoutController, LoadScenario, OnlineManager

PAIR = ("redis", "spstream")


def main() -> None:
    print("profiling", PAIR, "(one offline campaign)...")
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=450, n_windows=3), rng=7
    )
    conditions = uniform_conditions(PAIR, n=10, rng=7) + grid_anchor_conditions(
        PAIR, utilization=0.9
    )
    model = StacModel(rng=0).fit(profiler.profile(conditions))

    controller = AdaptiveTimeoutController(model=model, workloads=PAIR)
    scenario = LoadScenario.diurnal(2, low=0.4, high=0.92, n_epochs=6)

    print("managing a diurnal load pattern (6 epochs)...")
    adaptive = OnlineManager(controller, n_queries=1200, rng=1).run(
        scenario, adapt=True
    )
    one_shot = OnlineManager(controller, n_queries=1200, rng=1).run(
        scenario, adapt=False
    )

    rows = []
    for a, s in zip(adaptive, one_shot):
        rows.append(
            [
                a.epoch,
                a.utilizations[0],
                str(a.timeouts),
                float(a.p95.mean()),
                float(s.p95.mean()),
            ]
        )
    print(
        format_table(
            ["epoch", "load", "adaptive plan", "adaptive p95", "one-shot p95"],
            rows,
            title="Diurnal management (p95 mean over services, service-time units)",
        )
    )
    total_a = sum(float(r.p95.mean()) for r in adaptive)
    total_s = sum(float(r.p95.mean()) for r in one_shot)
    print(
        f"\ntotal p95 across the day: adaptive {total_a:.2f} vs one-shot "
        f"{total_s:.2f} ({total_s / total_a:.2f}x)"
    )
    print(f"distinct plans used: {controller.plans_computed}")


if __name__ == "__main__":
    main()
