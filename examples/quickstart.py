#!/usr/bin/env python3
"""Quickstart: the full short-term cache allocation pipeline in ~60 lines.

Profiles a Redis + Social collocation (Stage 1), trains the deep-forest
effective-allocation model (Stage 2), predicts response time through
queueing simulation (Stage 3), searches for a timeout vector, and
verifies the chosen policy on the ground-truth testbed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Profiler, StacModel, model_driven_policy, uniform_conditions
from repro.analysis import ape_summary, format_table
from repro.baselines import RuntimeEvaluator, no_sharing_policy
from repro.core.profiler import ProfilerSettings
from repro.testbed import default_machine
from repro.workloads import get_workload

PAIR = ("redis", "social")


def main() -> None:
    # ---- Stage 1: profile runtime conditions on the testbed ------------
    print("Stage 1: profiling", PAIR, "...")
    conditions = uniform_conditions(PAIR, n=10, rng=0)
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=500, n_windows=4), rng=0
    )
    dataset = profiler.profile(conditions)
    print(f"  {len(dataset)} profile rows, trace shape {dataset.traces.shape}")

    # ---- Stage 2 + 3: train the model, check held-out accuracy ---------
    train, test = dataset.split_conditions(0.6, rng=1)
    model = StacModel(rng=0).fit(train)
    pred = model.predict_rows(test)
    acc = ape_summary(pred["rt_mean"], test.y_rt_mean)
    print(
        f"Stage 2+3: held-out response-time error: "
        f"median {acc['median']:.1%}, p95 {acc['p95']:.1%}"
    )

    # ---- Policy search: pick a timeout vector for both services --------
    policy = model_driven_policy(model, PAIR, (0.9, 0.9))
    print(f"Policy search: chose timeouts {policy.timeouts} (x service time)")

    # ---- Verify on the ground-truth testbed ----------------------------
    evaluator = RuntimeEvaluator(
        machine=default_machine(),
        specs=[get_workload(n) for n in PAIR],
        utilization=0.9,
        n_queries=2000,
        rng=42,
    )
    base = evaluator.p95(no_sharing_policy(2).timeouts)
    ours = evaluator.p95(policy.timeouts)
    rows = [
        [name, base[i], ours[i], base[i] / ours[i]]
        for i, name in enumerate(PAIR)
    ]
    print(
        format_table(
            ["service", "p95 no-sharing", "p95 model-driven", "speedup"],
            rows,
            title="Verification on the testbed (response times in service-time units)",
        )
    )
    assert np.all(base / ours > 1.0), "policy should beat the baseline"
    print("OK: model-driven short-term allocation beats no-sharing.")


if __name__ == "__main__":
    main()
