#!/usr/bin/env python3
"""The paper's motivating scenario: a social-networking site under SLO.

A user query fans out across 36 microservices in 30 Docker containers
(baseline response 7.5 ms).  If a query is still outstanding past the
SLO warning, short-term cache allocation grants the whole service extra
LLC ways.  But the collocated Redis session store wants those same
shared ways.  This example sweeps Social's timeout and shows the
three-way interaction between arrival rate, timeout and the partner's
response time that Section 5.2 describes.

Run:  python examples/social_network_slo.py
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import RuntimeEvaluator
from repro.testbed import default_machine
from repro.workloads import SocialGraph, get_workload


def main() -> None:
    social = get_workload("social")
    redis = get_workload("redis")

    # --- the microservice DAG behind Social -----------------------------
    graph = SocialGraph(rng=0)
    lat = graph.sample_latency(5000, mean_total=social.baseline_service_time, rng=1)
    print(
        f"Social: {graph.n_services} microservices in {graph.n_containers} "
        f"containers; baseline p50 {np.median(lat) * 1e3:.1f} ms, "
        f"p95 {np.percentile(lat, 95) * 1e3:.1f} ms, "
        f"p99 {np.percentile(lat, 99) * 1e3:.1f} ms"
    )

    # --- sweep Social's timeout with Redis boosting aggressively --------
    evaluator = RuntimeEvaluator(
        machine=default_machine(),
        specs=[social, redis],
        utilization=0.9,
        n_queries=2500,
        rng=7,
    )
    redis_timeout = 0.5  # Redis is latency-critical: boost early
    rows = []
    for social_timeout in (0.0, 0.5, 1.0, 2.0, 4.0, np.inf):
        p95 = evaluator.p95((social_timeout, redis_timeout))
        label = "never" if np.isinf(social_timeout) else f"{social_timeout:.1f}"
        rows.append(
            [
                label,
                p95[0] * social.baseline_service_time * 1e3,
                p95[1] * redis.baseline_service_time * 1e3,
            ]
        )
    print(
        format_table(
            ["social timeout (x svc time)", "social p95 (ms)", "redis p95 (ms)"],
            rows,
            title="\nTimeout sweep at 90% load (redis timeout fixed at 0.5)",
        )
    )

    # --- the same sweep at low load: the interaction disappears ---------
    rows_low = []
    for social_timeout in (0.0, 1.0, np.inf):
        p95 = evaluator.p95((social_timeout, redis_timeout), utilization=0.4)
        label = "never" if np.isinf(social_timeout) else f"{social_timeout:.1f}"
        rows_low.append(
            [
                label,
                p95[0] * social.baseline_service_time * 1e3,
                p95[1] * redis.baseline_service_time * 1e3,
            ]
        )
    print(
        format_table(
            ["social timeout (x svc time)", "social p95 (ms)", "redis p95 (ms)"],
            rows_low,
            title="\nSame sweep at 40% load — queueing delay out of the picture",
        )
    )
    print(
        "\nNote how Social's best timeout depends on the arrival rate — the\n"
        "arrival x service-time x timeout interaction that dynaSprint's\n"
        "low-rate calibration misses (Section 5.2)."
    )


if __name__ == "__main__":
    main()
