#!/usr/bin/env python3
"""Low-level substrate tour: CAT masks, MRC measurement and contention.

Uses the cache substrate directly — no modeling pipeline — to show
(1) how contiguous way masks create private/shared regions, (2) how a
workload's miss-ratio curve is measured with the set-associative
simulator and fitted to the analytic form, and (3) how concurrent
short-term allocations erode each other's effective capacity.

Run:  python examples/cache_contention_study.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cache import (
    CacheGeometry,
    CatController,
    SharedWayContention,
    fit_exponential_mrc,
    measure_mrc,
)
from repro.cache.cat import pairwise_layout
from repro.workloads import get_workload, workload_stream


def main() -> None:
    # --- 1. CAT layout on the paper's Xeon E5-2683 (20 ways) ------------
    n_ways = 20
    pol_a, pol_b = pairwise_layout(
        n_ways, private_ways=1, shared_ways=1, timeouts=(1.0, 1.5)
    )
    ctl = CatController(n_ways=n_ways)
    ctl.register("jacobi", pol_a)
    ctl.register("bfs", pol_b)
    print("CAT layout (way indices):")
    for name in ("jacobi", "bfs"):
        pol = ctl.policy(name)
        priv = ctl.private_region(name)
        print(
            f"  {name:7s} default={list(pol.default.ways())} "
            f"boost={list(pol.boost.ways())} private={list(priv.ways())}"
        )
    assert ctl.private_regions_disjoint() and ctl.max_sharers() <= 2
    print("  Section 2 conjectures hold: private disjoint, <=2 sharers\n")

    # --- 2. Measure + fit a miss-ratio curve ----------------------------
    geom = CacheGeometry(n_sets=64, n_ways=16)
    stream = workload_stream("zipf", 20000, n_lines=4096, rng=0)
    caps, ratios = measure_mrc(stream, geom, way_counts=[1, 2, 4, 8, 12, 16])
    fit = fit_exponential_mrc(caps, ratios)
    rows = [
        [c / 1024, r, float(fit.miss_ratio(c))] for c, r in zip(caps, ratios)
    ]
    print(
        format_table(
            ["capacity (KiB)", "measured miss ratio", "fitted m(c)"],
            rows,
            title="Miss-ratio curve: set-associative measurement vs exponential fit",
            precision=4,
        )
    )
    print(
        f"  fit: m0={fit.m0:.3f}, m_inf={fit.m_inf:.3f}, "
        f"footprint={fit.footprint_bytes / 1024:.0f} KiB\n"
    )

    # --- 3. Contention: concurrent boosts erode effective capacity ------
    redis = get_workload("redis")
    knn = get_workload("knn")
    model = SharedWayContention()
    shared_ways = 4.0
    intensities = {
        "redis alone": [redis.fill_intensity(redis.baseline_capacity), 0.0],
        "redis + knn boosting": [
            redis.fill_intensity(redis.baseline_capacity),
            knn.fill_intensity(knn.baseline_capacity),
        ],
    }
    rows = []
    for label, lam in intensities.items():
        share = model.effective_shared_ways(shared_ways, lam)
        rows.append([label, share[0], share[1], shared_ways - share.sum()])
    print(
        format_table(
            ["scenario", "redis eff. ways", "partner eff. ways", "ways lost to churn"],
            rows,
            title="Shared-way contention (4 shared ways)",
        )
    )
    print(
        "\nConcurrent short-term allocations split the shared region AND\n"
        "lose capacity to fill churn — why effective allocation falls\n"
        "below 1 and must be learned, not assumed."
    )


if __name__ == "__main__":
    main()
