"""Tests for seeded k-means."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import KMeans


def blobs(rng=0):
    r = np.random.default_rng(rng)
    a = r.normal([0, 0], 0.1, size=(30, 2))
    b = r.normal([5, 5], 0.1, size=(30, 2))
    c = r.normal([0, 5], 0.1, size=(30, 2))
    return np.vstack([a, b, c])


class TestKMeans:
    def test_recovers_separated_blobs(self):
        X = blobs()
        km = KMeans(k=3, rng=0).fit(X)
        labels = km.labels_
        # Each true blob maps to exactly one cluster.
        for start in (0, 30, 60):
            assert len(set(labels[start : start + 30].tolist())) == 1
        assert len(set(labels.tolist())) == 3

    def test_predict_matches_fit_labels(self):
        X = blobs(1)
        km = KMeans(k=3, rng=0).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_1d_input_accepted(self):
        x = np.concatenate([np.zeros(10), np.ones(10) * 9])
        km = KMeans(k=2, rng=0).fit(x)
        assert len(set(km.labels_.tolist())) == 2

    def test_k_equals_n(self):
        X = np.arange(4, dtype=float)[:, None]
        km = KMeans(k=4, rng=0).fit(X)
        assert len(set(km.labels_.tolist())) == 4
        assert km.inertia_ == pytest.approx(0.0)

    def test_reproducible(self):
        X = blobs(2)
        l1 = KMeans(k=3, rng=7).fit(X).labels_
        l2 = KMeans(k=3, rng=7).fit(X).labels_
        assert np.array_equal(l1, l2)

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(k=0)
        with pytest.raises(ValueError):
            KMeans(k=5).fit(np.zeros((3, 2)))
        with pytest.raises(RuntimeError):
            KMeans(k=2).predict(np.zeros((3, 2)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 10**6))
    def test_inertia_nonincreasing_in_k(self, k, seed):
        r = np.random.default_rng(seed)
        X = r.normal(size=(40, 3))
        i1 = KMeans(k=k, rng=0).fit(X).inertia_
        i2 = KMeans(k=k + 1, rng=0).fit(X).inertia_
        # More clusters can only reduce (well-fitted) inertia; allow slack
        # for local optima.
        assert i2 <= i1 * 1.15
