"""Tests for EA feature-importance analysis."""

import pytest

from repro.analysis import ea_feature_importances, top_features
from repro.core import ProfileDataset
from repro.core.profile_vec import DYNAMIC_FEATURE_NAMES, STATIC_FEATURE_NAMES


class TestImportances:
    def test_named_output(self, small_dataset):
        imp = ea_feature_importances(small_dataset, n_estimators=10, rng=0)
        expected = set(STATIC_FEATURE_NAMES) | set(DYNAMIC_FEATURE_NAMES) | {
            "counter_trace"
        }
        assert set(imp) == expected
        assert abs(sum(imp.values()) - 1.0) < 0.05

    def test_timeout_matters(self, small_dataset):
        """The own timeout is a first-order driver of EA."""
        imp = ea_feature_importances(small_dataset, n_estimators=20, rng=0)
        names = [n for n, _ in top_features(imp, k=8)]
        assert any("timeout" in n or "boost" in n for n in names)

    def test_top_features_sorted(self, small_dataset):
        imp = ea_feature_importances(small_dataset, n_estimators=10, rng=0)
        top = top_features(imp, k=3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ea_feature_importances(ProfileDataset())
        with pytest.raises(ValueError):
            top_features({"a": 1.0}, k=0)
