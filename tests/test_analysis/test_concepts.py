"""Tests for concept-based workload clustering."""

import pytest

from repro.analysis import cluster_workloads_by_concepts
from repro.analysis.concepts import cluster_workloads_by_counters
from repro.core import EAModel, ProfileDataset


@pytest.fixture(scope="module")
def concept_model(mixed_pair_dataset):
    model = EAModel(
        learner="cascade", rng=0, n_levels=1, forests_per_level=2, n_estimators=8
    )
    return model.fit(mixed_pair_dataset)


class TestConceptClustering:
    def test_assigns_every_workload(self, concept_model, mixed_pair_dataset):
        clusters = cluster_workloads_by_concepts(
            concept_model, mixed_pair_dataset, k=2, rng=0
        )
        assert set(clusters) == {"jacobi", "bfs", "redis", "knn"}
        assert set(clusters.values()) <= {0, 1}

    def test_counter_clustering_control(self, mixed_pair_dataset):
        clusters = cluster_workloads_by_counters(mixed_pair_dataset, k=2, rng=0)
        assert set(clusters) == {"jacobi", "bfs", "redis", "knn"}

    def test_too_many_clusters_rejected(self, concept_model, mixed_pair_dataset):
        with pytest.raises(ValueError):
            cluster_workloads_by_concepts(
                concept_model, mixed_pair_dataset, k=10, rng=0
            )

    def test_empty_dataset_rejected(self, concept_model):
        with pytest.raises(ValueError):
            cluster_workloads_by_concepts(concept_model, ProfileDataset(), k=2)
        with pytest.raises(ValueError):
            cluster_workloads_by_counters(ProfileDataset(), k=2)
