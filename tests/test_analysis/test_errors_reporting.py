"""Tests for error metrics and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    ape_summary,
    format_series,
    format_table,
    median_ape,
    percentile_ape,
)


class TestErrorStats:
    def test_median_ape(self):
        assert median_ape([1.1, 1.2, 0.9], [1.0, 1.0, 1.0]) == pytest.approx(0.1)

    def test_percentile_ape(self):
        pred = np.ones(100) * 1.1
        pred[-1] = 2.0
        actual = np.ones(100)
        assert percentile_ape(pred, actual, 50) == pytest.approx(0.1)
        assert percentile_ape(pred, actual, 99.9) > 0.5

    def test_summary_keys(self):
        s = ape_summary([1.0, 2.0], [1.0, 1.0])
        assert set(s) == {"median", "p95", "mean", "n"}
        assert s["n"] == 2


class TestFormatting:
    def test_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.235" in out  # default precision 3

    def test_table_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_nan_renders_as_na_placeholder(self):
        # Regression: NaN cells used to render as "nan" through the
        # float path — indistinguishable from a label and inconsistent
        # with precision-formatted cells; they are now a missing-value
        # marker.
        out = format_table(["x", "y"], [[1.0, float("nan")]])
        cells = out.splitlines()[-1].split("|")
        assert cells[1].strip() == "na"
        assert "nan" not in out

    def test_na_placeholder_customizable(self):
        out = format_table(["x"], [[float("nan")]], na="-")
        assert out.splitlines()[-1].strip() == "-"
        out = format_series(
            "fig", [1], [float("nan")], "t", "err", na="missing"
        )
        assert "missing" in out

    def test_infinities_render_bare_and_signed(self):
        out = format_table(
            ["a", "b"], [[float("inf"), float("-inf")]], precision=5
        )
        last = [c.strip() for c in out.splitlines()[-1].split("|")]
        assert last == ["inf", "-inf"]

    def test_numpy_nan_cell(self):
        out = format_table(["x"], [[np.float64("nan")]])
        assert out.splitlines()[-1].strip() == "na"

    def test_series(self):
        out = format_series("fig", [1, 2], [0.5, 0.25], "t", "err")
        assert "fig" in out and "err" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("f", [1], [1, 2])
