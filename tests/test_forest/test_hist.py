"""Tests for quantile binning and histogram split finding."""

import numpy as np
import pytest

from repro.forest import (
    CompletelyRandomForestRegressor,
    RandomForestRegressor,
    RegressionTree,
    quantile_bin,
)
from repro.forest import tree as tree_mod
from repro.forest.binning import MAX_BINS


def friedman_like(n=300, rng=0):
    r = np.random.default_rng(rng)
    X = r.uniform(size=(n, 5))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 20 * (X[:, 2] - 0.5) ** 2
    return X, y + r.normal(0, 0.2, n)


class TestQuantileBin:
    def test_constant_feature_has_no_edges(self):
        X = np.column_stack([np.full(50, 3.7), np.arange(50.0)])
        b = quantile_bin(X)
        assert b.edges[0].size == 0
        assert np.all(b.codes[:, 0] == 0)
        assert b.n_bins[0] == 1

    def test_few_distinct_values_get_midpoint_edges(self):
        # < 255 distinct values: one bin per value, edges at midpoints —
        # exactly the exact splitter's candidate thresholds.
        vals = np.array([0.0, 1.0, 4.0, 10.0])
        col = np.repeat(vals, 5)
        b = quantile_bin(col[:, None])
        assert np.array_equal(b.edges[0], np.array([0.5, 2.5, 7.0]))
        assert b.n_bins[0] == 4
        # Each distinct value lands in its own code, in order.
        assert np.array_equal(np.unique(b.codes[:, 0]), np.arange(4))

    def test_tie_at_boundary_goes_left(self):
        # The contract: code(x) <= b  <=>  x <= edges[b].  A value that
        # equals a boundary must land in the lower bin.
        # Quantile boundaries can coincide with data values: with
        # max_bins=2 the single boundary is the median, a data value.
        col = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        b = quantile_bin(col[:, None], max_bins=2)
        assert b.edges[0][0] == 2.0
        assert b.codes[2, 0] == 0  # x == boundary lands in the lower bin
        assert np.array_equal(b.codes[:, 0], np.array([0, 0, 0, 1, 1]))

    def test_code_edge_consistency_property(self):
        # (x <= edges[b]) == (code <= b) for every boundary — random data.
        r = np.random.default_rng(7)
        col = np.round(r.normal(size=400), 1)  # heavy ties
        b = quantile_bin(col[:, None])
        codes = b.codes[:, 0].astype(int)
        for bidx, boundary in enumerate(b.edges[0]):
            assert np.array_equal(col <= boundary, codes <= bidx)

    def test_wide_feature_respects_bin_budget(self):
        r = np.random.default_rng(0)
        col = r.normal(size=5000)  # ~5000 distinct values
        b = quantile_bin(col[:, None], max_bins=64)
        assert b.n_bins[0] <= 64
        assert b.codes[:, 0].max() == b.edges[0].size  # top bin occupied

    def test_nan_maps_to_top_bin(self):
        col = np.array([0.0, 1.0, 2.0, np.nan, -np.inf, np.inf])
        b = quantile_bin(col[:, None])
        top = b.edges[0].size
        assert b.codes[3, 0] == top
        assert b.codes[5, 0] == top
        assert b.codes[4, 0] == 0  # -inf sorts before everything

    def test_all_nan_column_is_single_bin(self):
        X = np.column_stack([np.full(20, np.nan), np.arange(20.0)])
        b = quantile_bin(X)
        assert b.edges[0].size == 0
        assert np.all(b.codes[:, 0] == 0)

    def test_max_bins_validation(self):
        with pytest.raises(ValueError):
            quantile_bin(np.zeros((3, 1)), max_bins=1)
        with pytest.raises(ValueError):
            quantile_bin(np.zeros((3, 1)), max_bins=256)
        with pytest.raises(ValueError):
            quantile_bin(np.zeros(3))  # 1-D

    def test_codes_are_uint8(self):
        r = np.random.default_rng(1)
        b = quantile_bin(r.normal(size=(1000, 3)))
        assert b.codes.dtype == np.uint8
        assert b.codes.max() <= MAX_BINS - 1


class TestHistTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 200)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        t = RegressionTree(strategy="hist", rng=0).fit(X, y)
        assert np.allclose(t.predict(X), y)

    def test_picks_informative_feature(self):
        r = np.random.default_rng(3)
        X = r.uniform(size=(300, 4))
        y = 5.0 * X[:, 2]
        t = RegressionTree(max_depth=1, strategy="hist", rng=0).fit(X, y)
        assert t._feature_a[0] == 2

    def test_thresholds_are_raw_space(self):
        # Hist trees record raw thresholds, so predict needs no binning
        # and out-of-sample inputs route sensibly.
        X, y = friedman_like(200)
        t = RegressionTree(max_depth=4, strategy="hist", rng=0).fit(X, y)
        split_thr = t._threshold_a[t._feature_a >= 0]
        assert split_thr.min() >= 0.0 and split_thr.max() <= 1.0

    def test_min_samples_leaf_respected(self):
        X, y = friedman_like(100)
        t = RegressionTree(min_samples_leaf=10, strategy="hist", rng=0).fit(X, y)
        # Count samples per leaf by routing the training set.
        node = np.zeros(len(X), dtype=int)
        for _ in range(t.depth + 1):
            f = t._feature_a[node]
            go = np.where(
                f >= 0, X[np.arange(len(X)), np.maximum(f, 0)] <= t._threshold_a[node], False
            )
            node = np.where(f >= 0, np.where(go, t._left_a[node], t._right_a[node]), node)
        _, leaf_counts = np.unique(node, return_counts=True)
        assert leaf_counts.min() >= 10

    def test_deterministic(self):
        X, y = friedman_like(150)
        t1 = RegressionTree(max_features="sqrt", strategy="hist", rng=5).fit(X, y)
        t2 = RegressionTree(max_features="sqrt", strategy="hist", rng=5).fit(X, y)
        assert np.array_equal(t1._threshold_a, t2._threshold_a)
        assert np.array_equal(t1._feature_a, t2._feature_a)

    def test_sorted_and_bincount_paths_agree(self, monkeypatch):
        # The small-node argsort fallback and the bincount histogram must
        # find the same splits — force each path globally and compare.
        # Integer targets make every sum exact, so the two accumulation
        # orders produce bitwise-equal losses and identical trees.
        X, y = friedman_like(180, rng=9)
        y = np.round(y)
        monkeypatch.setattr(tree_mod, "_HIST_SORT_CUTOFF", 0)
        t_hist = RegressionTree(strategy="hist", rng=1).fit(X, y)
        monkeypatch.setattr(tree_mod, "_HIST_SORT_CUTOFF", 10**9)
        t_sort = RegressionTree(strategy="hist", rng=1).fit(X, y)
        assert np.array_equal(t_hist._feature_a, t_sort._feature_a)
        assert np.array_equal(t_hist._threshold_a, t_sort._threshold_a)
        assert np.array_equal(t_hist._value_a, t_sort._value_a)

    def test_random_splitter_hist(self):
        X, y = friedman_like(150)
        t = RegressionTree(splitter="random", strategy="hist", rng=2).fit(X, y)
        # Grown to purity: training predictions reproduce leaf means well.
        assert np.mean((t.predict(X) - y) ** 2) < np.var(y) * 0.1

    def test_handles_nan_training_values(self):
        r = np.random.default_rng(4)
        X = r.uniform(size=(120, 3))
        X[::7, 1] = np.nan
        y = 3.0 * X[:, 0]
        t = RegressionTree(strategy="hist", rng=0).fit(X, y)
        assert np.isfinite(t.predict(X[:5])).all()


class TestHistForest:
    @pytest.mark.parametrize(
        "cls", [RandomForestRegressor, CompletelyRandomForestRegressor]
    )
    def test_accuracy_close_to_exact(self, cls):
        X, y = friedman_like(400, rng=5)
        Xt, yt = friedman_like(400, rng=6)
        fe = cls(n_estimators=20, rng=0).fit(X, y)
        fh = cls(n_estimators=20, strategy="hist", rng=0).fit(X, y)
        mse_e = np.mean((fe.predict(Xt) - yt) ** 2)
        mse_h = np.mean((fh.predict(Xt) - yt) ** 2)
        assert mse_h < mse_e * 1.2  # within 20% of the exact splitter

    def test_importances_well_formed(self):
        X, y = friedman_like(200)
        f = RandomForestRegressor(n_estimators=8, strategy="hist", rng=0).fit(X, y)
        imp = f.feature_importances_
        assert imp.shape == (5,) and np.isclose(imp.sum(), 1.0)
        # Friedman's informative features dominate the noise features.
        assert imp[:3].sum() > imp[3:].sum()

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=2, strategy="nope")
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=2, n_bins=1)
        with pytest.raises(ValueError):
            RegressionTree(strategy="nope")
