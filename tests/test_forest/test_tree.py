"""Tests for the vectorized CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forest import RegressionTree


def toy_step(n=200, rng=0):
    r = np.random.default_rng(rng)
    X = r.uniform(0, 1, size=(n, 3))
    y = np.where(X[:, 1] > 0.5, 2.0, -1.0)
    return X, y


class TestFitting:
    def test_perfect_fit_on_step(self):
        X, y = toy_step()
        t = RegressionTree(rng=0).fit(X, y)
        assert np.allclose(t.predict(X), y)

    def test_single_sample(self):
        t = RegressionTree().fit([[1.0]], [3.0])
        assert t.predict([[99.0]]) == pytest.approx(3.0)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(1).uniform(size=(50, 4))
        t = RegressionTree().fit(X, np.full(50, 7.0))
        assert t.n_nodes == 1
        assert np.allclose(t.predict(X), 7.0)

    def test_max_depth_respected(self):
        X, y = toy_step(400, rng=2)
        y = y + np.random.default_rng(3).normal(0, 0.5, size=400)
        t = RegressionTree(max_depth=3, rng=0).fit(X, y)
        assert t.depth <= 3

    def test_min_samples_leaf_respected(self):
        X, y = toy_step(100, rng=4)
        t = RegressionTree(min_samples_leaf=20, rng=0).fit(X, y)
        # Leaf predictions are means over >= 20 samples: at most 5 leaves.
        assert len(np.unique(t.predict(X))) <= 5

    def test_prediction_is_leaf_mean(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([1.0, 3.0, 10.0, 20.0])
        t = RegressionTree(min_samples_leaf=2).fit(X, y)
        pred = t.predict(np.array([[0.0], [1.0]]))
        assert pred[0] == pytest.approx(2.0)
        assert pred[1] == pytest.approx(15.0)

    def test_random_splitter_fits_pure(self):
        X, y = toy_step(300, rng=5)
        t = RegressionTree(splitter="random", rng=6).fit(X, y)
        # Completely-random trees grow until pure leaves.
        assert np.allclose(t.predict(X), y)

    def test_deterministic_given_seed(self):
        X, y = toy_step(150, rng=7)
        y = y + np.random.default_rng(8).normal(0, 0.3, 150)
        p1 = RegressionTree(splitter="random", rng=42).fit(X, y).predict(X)
        p2 = RegressionTree(splitter="random", rng=42).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)


class TestSplitQuality:
    def test_picks_informative_feature(self):
        r = np.random.default_rng(9)
        X = r.uniform(size=(300, 5))
        y = 5.0 * (X[:, 3] > 0.4)  # only feature 3 matters
        t = RegressionTree(max_depth=1, rng=0).fit(X, y)
        assert t._feature[0] == 3
        assert t._threshold[0] == pytest.approx(0.4, abs=0.05)

    def test_max_features_sqrt(self):
        t = RegressionTree(max_features="sqrt")
        assert t._n_candidate_features(16) == 4
        assert t._n_candidate_features(1) == 1

    def test_max_features_int(self):
        t = RegressionTree(max_features=3)
        assert t._n_candidate_features(10) == 3
        assert t._n_candidate_features(2) == 2

    def test_bad_max_features(self):
        t = RegressionTree(max_features=0)
        with pytest.raises(ValueError):
            t._n_candidate_features(4)


class TestDeepTrees:
    def test_deep_chain_fit_below_recursion_limit(self):
        """Unbounded-depth fits must not depend on the interpreter's
        recursion limit (the build walks an explicit stack).

        Exponentially growing targets make the best split peel a few
        samples off the top each time, producing a chain far deeper
        than the lowered recursion limit.
        """
        import sys

        n = 400
        X = np.arange(n, dtype=float).reshape(-1, 1)
        y = 1.5 ** np.arange(n)
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(120)
            tree = RegressionTree(splitter="best", rng=0).fit(X, y)
        finally:
            sys.setrecursionlimit(limit)
        assert tree.depth > 120
        # Every leaf is a single sample: the fit is exact.
        assert tree.n_nodes == 2 * n - 1
        assert np.array_equal(tree.predict(X), y)

    def test_preorder_node_numbering(self):
        # Root is node 0 and the left child is always the next node —
        # the numbering contract of the (formerly recursive) builder.
        rng = np.random.default_rng(3)
        X = rng.normal(size=(120, 4))
        y = rng.normal(size=120) + 2.0 * X[:, 1]
        tree = RegressionTree(rng=0).fit(X, y)
        assert tree._feature[0] != -1  # root split exists
        for node, f in enumerate(tree._feature):
            if f != -1:
                assert tree._left[node] == node + 1
                assert tree._right[node] > tree._left[node]


class TestValidation:
    def test_bad_splitter(self):
        with pytest.raises(ValueError):
            RegressionTree(splitter="greedy")

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3, 2)), np.zeros(4))

    def test_empty_data(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_wrong_width(self):
        t = RegressionTree().fit([[1.0, 2.0]], [1.0])
        with pytest.raises(ValueError):
            t.predict([[1.0]])


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 60), st.integers(1, 4), st.integers(0, 10**6))
    def test_predictions_within_target_range(self, n, d, seed):
        """Tree predictions are convex combinations of training targets."""
        r = np.random.default_rng(seed)
        X = r.normal(size=(n, d))
        y = r.normal(size=n)
        t = RegressionTree(rng=seed).fit(X, y)
        pred = t.predict(r.normal(size=(20, d)))
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 40), st.integers(0, 10**6))
    def test_train_fit_reduces_error_vs_mean(self, n, seed):
        r = np.random.default_rng(seed)
        X = r.uniform(size=(n, 2))
        y = X[:, 0] * 3 + r.normal(0, 0.01, n)
        t = RegressionTree(min_samples_leaf=1, rng=seed).fit(X, y)
        tree_err = np.mean((t.predict(X) - y) ** 2)
        mean_err = np.var(y)
        assert tree_err <= mean_err + 1e-12
