"""Tests for cascade levels and the deep forest facade."""

import numpy as np
import pytest

from repro.forest import (
    CascadeForest,
    DeepForestRegressor,
    RandomForestRegressor,
    cross_fit_predict,
)


def hidden_interaction(n=240, rng=0):
    """y depends on an interaction of two features — the kind of 'concept'
    cascades capture (Figure 3)."""
    r = np.random.default_rng(rng)
    X = r.uniform(size=(n, 6))
    y = np.where((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5), 1.0, 0.0)
    return X, y + r.normal(0, 0.05, n)


class TestCrossFit:
    def test_shape_and_out_of_fold(self):
        X, y = hidden_interaction(90)
        pred = cross_fit_predict(
            lambda: RandomForestRegressor(n_estimators=5, rng=0), X, y, k=3, rng=1
        )
        assert pred.shape == (90,)

    def test_no_leakage_vs_insample(self):
        """Out-of-fold error must be larger than training error on noise."""
        r = np.random.default_rng(2)
        X = r.uniform(size=(120, 4))
        y = r.normal(size=120)  # pure noise
        oof = cross_fit_predict(
            lambda: RandomForestRegressor(n_estimators=10, rng=0), X, y, k=3, rng=3
        )
        model = RandomForestRegressor(n_estimators=10, rng=0).fit(X, y)
        insample = model.predict(X)
        err_oof = np.mean((oof - y) ** 2)
        err_in = np.mean((insample - y) ** 2)
        assert err_oof > err_in

    def test_validation(self):
        X, y = hidden_interaction(10)
        with pytest.raises(ValueError):
            cross_fit_predict(lambda: None, X, y, k=1)
        with pytest.raises(ValueError):
            cross_fit_predict(lambda: None, X[:2], y[:2], k=3)


class TestCascade:
    def test_fits_interaction(self):
        X, y = hidden_interaction(300, rng=4)
        Xt, yt = hidden_interaction(150, rng=5)
        c = CascadeForest(n_levels=2, forests_per_level=2, n_estimators=15, rng=0)
        c.fit(X, y)
        err = np.mean((c.predict(Xt) - yt) ** 2)
        assert err < np.var(yt) * 0.3

    def test_concept_feature_shape(self):
        X, y = hidden_interaction(100, rng=6)
        c = CascadeForest(n_levels=3, forests_per_level=2, n_estimators=5, rng=0)
        c.fit(X, y)
        feats = c.concept_features(X[:20])
        assert feats.shape == (20, 3 * 2)

    def test_concepts_track_target(self):
        X, y = hidden_interaction(260, rng=7)
        c = CascadeForest(n_levels=2, forests_per_level=2, n_estimators=15, rng=0)
        c.fit(X, y)
        feats = c.concept_features(X)
        corr = np.corrcoef(feats.mean(axis=1), y)[0, 1]
        assert corr > 0.6

    def test_unfitted_raises(self):
        c = CascadeForest()
        with pytest.raises(RuntimeError):
            c.predict(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            c.concept_features(np.zeros((1, 3)))

    def test_reproducible(self):
        X, y = hidden_interaction(80, rng=8)
        p1 = (
            CascadeForest(n_levels=1, forests_per_level=2, n_estimators=4, rng=9)
            .fit(X, y)
            .predict(X)
        )
        p2 = (
            CascadeForest(n_levels=1, forests_per_level=2, n_estimators=4, rng=9)
            .fit(X, y)
            .predict(X)
        )
        assert np.array_equal(p1, p2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CascadeForest(n_levels=0)
        with pytest.raises(ValueError):
            CascadeForest(patience=0)
        with pytest.raises(ValueError):
            CascadeForest().fit(np.zeros((4, 2)), np.zeros(5))

    def test_level_scores_recorded(self):
        X, y = hidden_interaction(120, rng=20)
        c = CascadeForest(n_levels=3, forests_per_level=2, n_estimators=5, rng=0)
        c.fit(X, y)
        assert len(c.level_scores_) == 3
        assert all(s >= 0 for s in c.level_scores_)

    def test_early_stop_truncates_on_noise(self):
        """On pure noise, added levels cannot help, so early stopping
        should grow fewer levels than the cap."""
        r = np.random.default_rng(21)
        X = r.uniform(size=(90, 4))
        y = r.normal(size=90)
        c = CascadeForest(
            n_levels=6,
            forests_per_level=2,
            n_estimators=5,
            early_stop=True,
            patience=1,
            rng=0,
        )
        c.fit(X, y)
        assert len(c._levels) < 6
        # A truncated cascade must still predict.
        assert c.predict(X).shape == (90,)

    def test_early_stop_keeps_useful_levels(self):
        X, y = hidden_interaction(260, rng=22)
        c = CascadeForest(
            n_levels=4,
            forests_per_level=2,
            n_estimators=15,
            early_stop=True,
            patience=1,
            rng=0,
        )
        c.fit(X, y)
        err = np.mean((c.predict(X) - y) ** 2)
        assert err < np.var(y) * 0.3


class TestDeepForest:
    def test_flat_only(self):
        X, y = hidden_interaction(200, rng=10)
        df = DeepForestRegressor(
            windows=None, n_levels=1, forests_per_level=2, n_estimators=10, rng=0
        )
        df.fit(X, None, y)
        assert df.predict(X, None).shape == (200,)

    def test_traces_only(self):
        r = np.random.default_rng(11)
        traces = r.normal(size=(60, 8, 8))
        y = traces[:, 2:4, 2:4].mean(axis=(1, 2))
        df = DeepForestRegressor(
            windows=[(3, 3)],
            mgs_estimators=5,
            n_levels=1,
            forests_per_level=2,
            n_estimators=10,
            rng=0,
        )
        df.fit(None, traces, y)
        pred = df.predict(None, traces)
        assert np.corrcoef(pred, y)[0, 1] > 0.8

    def test_combined_inputs(self):
        r = np.random.default_rng(12)
        X = r.uniform(size=(80, 3))
        traces = r.normal(size=(80, 6, 6))
        y = X[:, 0] + traces[:, 1:3, 1:3].mean(axis=(1, 2))
        df = DeepForestRegressor(
            windows=[(3, 3)],
            mgs_estimators=5,
            n_levels=1,
            forests_per_level=2,
            n_estimators=10,
            rng=0,
        )
        df.fit(X, traces, y)
        assert df.predict(X, traces).shape == (80,)
        assert df.concept_features(X, traces).shape[0] == 80

    def test_no_inputs_rejected(self):
        df = DeepForestRegressor(rng=0)
        with pytest.raises(ValueError):
            df.fit(None, None, np.zeros(3))

    def test_unfitted_raises(self):
        df = DeepForestRegressor()
        with pytest.raises(RuntimeError):
            df.predict(np.zeros((1, 2)), None)
