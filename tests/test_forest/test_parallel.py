"""Tests for the plan/execute fit split and the shared-memory pool.

The acceptance bar: ``strategy="exact"`` must produce bit-identical
trees to the pre-refactor per-forest loop, for every ``n_jobs``.
"""

import numpy as np
import pytest

from repro._util import spawn_rngs
from repro.baselines.dtree import DecisionTreeBaseline
from repro.forest import (
    CascadeForest,
    CompletelyRandomForestRegressor,
    MultiGrainScanner,
    RandomForestRegressor,
    RegressionTree,
    cross_fit_predict,
)
from repro.forest import parallel as parallel_mod
from repro.forest.deep_forest import DeepForestRegressor


def friedman_like(n=300, rng=0):
    r = np.random.default_rng(rng)
    X = r.uniform(size=(n, 5))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 20 * (X[:, 2] - 0.5) ** 2
    return X, y + r.normal(0, 0.2, n)


def trees_equal(a: RegressionTree, b: RegressionTree) -> bool:
    return (
        np.array_equal(a._feature_a, b._feature_a)
        and np.array_equal(a._threshold_a, b._threshold_a)
        and np.array_equal(a._left_a, b._left_a)
        and np.array_equal(a._right_a, b._right_a)
        and np.array_equal(a._value_a, b._value_a)
    )


class TestLegacyLoopIdentity:
    """Satellite 1: fitted trees unchanged vs the old fit-as-you-go loop."""

    def test_random_forest_matches_legacy_loop(self):
        X, y = friedman_like(200, rng=4)
        seed = 17
        f = RandomForestRegressor(n_estimators=5, rng=seed).fit(X, y)
        # The pre-refactor loop, reimplemented verbatim: one spawned rng
        # per tree, bootstrap indices then a tree seed drawn from it.
        parent = np.random.default_rng(seed)
        n = X.shape[0]
        legacy = []
        for t_rng in spawn_rngs(parent, 5):
            sample_idx = t_rng.integers(0, n, size=n)
            t_seed = int(t_rng.integers(0, 2**62))
            legacy.append(
                RegressionTree(
                    max_features="sqrt", splitter="best", rng=t_seed
                ).fit(X[sample_idx], y[sample_idx])
            )
        assert all(trees_equal(a, b) for a, b in zip(f.trees_, legacy))

    def test_completely_random_matches_legacy_loop(self):
        X, y = friedman_like(150, rng=8)
        seed = 3
        f = CompletelyRandomForestRegressor(n_estimators=4, rng=seed).fit(X, y)
        parent = np.random.default_rng(seed)
        legacy = []
        for t_rng in spawn_rngs(parent, 4):
            t_seed = int(t_rng.integers(0, 2**62))
            legacy.append(
                RegressionTree(
                    max_features=None, splitter="random", rng=t_seed
                ).fit(X, y)
            )
        assert all(trees_equal(a, b) for a, b in zip(f.trees_, legacy))


@pytest.mark.parametrize(
    "cls", [RandomForestRegressor, CompletelyRandomForestRegressor]
)
@pytest.mark.parametrize("strategy", ["exact", "hist"])
class TestForestPoolIdentity:
    def test_n_jobs_bit_identical(self, cls, strategy):
        X, y = friedman_like(150)
        f1 = cls(n_estimators=4, strategy=strategy, rng=11).fit(X, y)
        f2 = cls(n_estimators=4, strategy=strategy, n_jobs=2, rng=11).fit(X, y)
        assert all(trees_equal(a, b) for a, b in zip(f1.trees_, f2.trees_))
        assert np.array_equal(f1.predict(X), f2.predict(X))
        assert np.array_equal(
            f1.feature_importances_, f2.feature_importances_
        )


class TestPoolFallbacks:
    def test_inline_fallback_without_shared_memory(self, monkeypatch):
        # With shared memory unavailable, arrays ride the initializer
        # inline — results must not change.
        X, y = friedman_like(120)
        f1 = RandomForestRegressor(n_estimators=3, rng=2).fit(X, y)
        monkeypatch.setattr(parallel_mod, "_shared_memory", None)
        f2 = RandomForestRegressor(n_estimators=3, n_jobs=2, rng=2).fit(X, y)
        assert all(trees_equal(a, b) for a, b in zip(f1.trees_, f2.trees_))

    def test_export_inline_entry_roundtrip(self):
        arr = np.arange(12.0).reshape(3, 4)
        entry, seg = parallel_mod._export_array(arr)
        try:
            back = parallel_mod._attach_array(entry)
            assert np.array_equal(back, arr)
        finally:
            if seg is not None:
                seg.close()
                seg.unlink()

    def test_fit_plans_validation(self):
        with pytest.raises(ValueError):
            parallel_mod.fit_plans([], n_jobs=0)
        assert parallel_mod.fit_plans([], n_jobs=1) == []


class TestCascadeIdentity:
    def test_cascade_n_jobs_bit_identical(self):
        X, y = friedman_like(120, rng=2)
        kw = dict(
            n_levels=2, forests_per_level=2, n_estimators=3, k_folds=3
        )
        c1 = CascadeForest(rng=5, **kw).fit(X, y)
        c2 = CascadeForest(rng=5, n_jobs=2, **kw).fit(X, y)
        assert np.array_equal(c1.predict(X), c2.predict(X))
        assert np.array_equal(c1.concept_features(X), c2.concept_features(X))
        assert c1.level_scores_ == c2.level_scores_

    def test_cross_fit_predict_n_jobs_identity(self):
        X, y = friedman_like(90, rng=3)
        make = lambda: RandomForestRegressor(n_estimators=3, rng=7)
        p1 = cross_fit_predict(make, X, y, k=3, rng=1, n_jobs=1)
        p2 = cross_fit_predict(make, X, y, k=3, rng=1, n_jobs=2)
        assert np.array_equal(p1, p2)

    def test_cross_fit_predict_non_plan_model_fallback(self):
        # Models without plan_fit (the baselines) still cross-fit.
        X, y = friedman_like(60, rng=6)
        p = cross_fit_predict(
            lambda: DecisionTreeBaseline(rng=0), X, y, k=3, rng=2, n_jobs=2
        )
        assert p.shape == (60,)
        assert np.isfinite(p).all()


class TestMGSAndDeepForest:
    def test_mgs_plumbs_n_jobs_and_stays_identical(self):
        # Satellite 2: n_jobs reaches the window forests and the
        # transform is bit-identical for every value.
        r = np.random.default_rng(0)
        traces = r.uniform(size=(40, 12, 12))
        y = traces.mean(axis=(1, 2))
        m1 = MultiGrainScanner(
            windows=[(5, 5)], n_estimators=4, rng=3
        ).fit(traces, y)
        m2 = MultiGrainScanner(
            windows=[(5, 5)], n_estimators=4, n_jobs=2, rng=3
        ).fit(traces, y)
        assert m2.n_jobs == 2
        for f in m2._forests:
            assert f.n_jobs == 2
        assert np.array_equal(m1.transform(traces), m2.transform(traces))

    def test_deep_forest_n_jobs_bit_identical(self):
        r = np.random.default_rng(1)
        traces = r.uniform(size=(45, 10, 10))
        X_flat = traces.reshape(45, -1)[:, :6]
        y = traces.mean(axis=(1, 2))
        kw = dict(
            windows=[(5, 5)],
            mgs_estimators=3,
            n_levels=1,
            forests_per_level=2,
            n_estimators=3,
            k_folds=3,
        )
        d1 = DeepForestRegressor(rng=9, **kw).fit(X_flat, traces, y)
        d2 = DeepForestRegressor(rng=9, n_jobs=2, **kw).fit(X_flat, traces, y)
        assert np.array_equal(
            d1.predict(X_flat, traces), d2.predict(X_flat, traces)
        )


class TestPredictPerTreePacked:
    """Satellite 3: small batches route through PackedForest, bit-exact."""

    def test_small_batch_equals_stacked_loop(self):
        X, y = friedman_like(300, rng=7)
        f = RandomForestRegressor(n_estimators=10, rng=1).fit(X, y)
        Xs = X[:50]  # <= 256 rows and >= 8 trees: packed path
        stacked = np.stack([t.predict(Xs) for t in f.trees_])
        assert np.array_equal(f.predict_per_tree(Xs), stacked)

    def test_large_batch_equals_stacked_loop(self):
        X, y = friedman_like(400, rng=7)
        f = RandomForestRegressor(n_estimators=10, rng=1).fit(X, y)
        stacked = np.stack([t.predict(X) for t in f.trees_])  # 400 > 256
        assert np.array_equal(f.predict_per_tree(X), stacked)

    def test_hist_forest_routes_packed_too(self):
        X, y = friedman_like(300, rng=2)
        f = RandomForestRegressor(
            n_estimators=9, strategy="hist", rng=1
        ).fit(X, y)
        Xs = X[:40]
        stacked = np.stack([t.predict(Xs) for t in f.trees_])
        assert np.array_equal(f.predict_per_tree(Xs), stacked)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor(n_estimators=2).predict_per_tree(
                np.zeros((3, 2))
            )
