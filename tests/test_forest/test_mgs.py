"""Tests for multi-grained scanning."""

import numpy as np
import pytest

from repro.forest import MultiGrainScanner, sliding_windows


def traces_with_signal(n=60, H=12, W=10, rng=0):
    """Traces where a bright patch's intensity determines the target."""
    r = np.random.default_rng(rng)
    t = r.normal(0, 0.1, size=(n, H, W))
    y = r.uniform(0, 1, size=n)
    for i in range(n):
        t[i, 3:6, 2:5] += y[i]  # spatially localized signal
    return t, y


class TestSlidingWindows:
    def test_figure4_counts(self):
        """Figure 4's example: 29x20 trace, 5x5 window -> 25x16=400 windows."""
        t = np.zeros((2, 29, 20))
        out = sliding_windows(t, (5, 5))
        assert out.shape == (2, 400, 25)

    def test_full_window_single_position(self):
        t = np.arange(24, dtype=float).reshape(1, 4, 6)
        out = sliding_windows(t, (4, 6))
        assert out.shape == (1, 1, 24)
        assert np.array_equal(out[0, 0], t[0].ravel())

    def test_window_content_correct(self):
        t = np.arange(12, dtype=float).reshape(1, 3, 4)
        out = sliding_windows(t, (2, 2))
        # First window: rows 0-1, cols 0-1.
        assert np.array_equal(out[0, 0], [0, 1, 4, 5])

    def test_oversized_window_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((1, 3, 3)), (4, 2))

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((3, 3)), (2, 2))


class TestScanner:
    def test_transform_shape(self):
        t, y = traces_with_signal()
        sc = MultiGrainScanner(
            windows=[(3, 3), (5, 5)], n_estimators=5, rng=0
        ).fit(t, y)
        feats = sc.transform(t)
        expect = (12 - 3 + 1) * (10 - 3 + 1) + (12 - 5 + 1) * (10 - 5 + 1)
        assert feats.shape == (60, expect)
        assert sc.n_features() == expect

    def test_learns_localized_signal(self):
        t, y = traces_with_signal(n=80, rng=1)
        t_test, y_test = traces_with_signal(n=40, rng=2)
        sc = MultiGrainScanner(windows=[(3, 3)], n_estimators=10, rng=0).fit(t, y)
        feats = sc.transform(t_test)
        # Averaging features over the signal-bearing positions should
        # correlate strongly with the target.
        corr = np.corrcoef(feats.mean(axis=1), y_test)[0, 1]
        assert corr > 0.7

    def test_max_instances_subsampling(self):
        t, y = traces_with_signal(n=40)
        sc = MultiGrainScanner(
            windows=[(3, 3)], n_estimators=3, max_instances=100, rng=0
        )
        sc.fit(t, y)  # should not blow up despite 40*80=3200 instances
        assert sc.transform(t).shape[0] == 40

    def test_shape_mismatch_on_transform(self):
        t, y = traces_with_signal(n=20)
        sc = MultiGrainScanner(windows=[(3, 3)], n_estimators=2, rng=0).fit(t, y)
        with pytest.raises(ValueError):
            sc.transform(np.zeros((5, 9, 9)))

    def test_unfitted_raises(self):
        sc = MultiGrainScanner(windows=[(3, 3)])
        with pytest.raises(RuntimeError):
            sc.transform(np.zeros((1, 5, 5)))
        with pytest.raises(RuntimeError):
            sc.n_features()

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiGrainScanner(windows=[])
        with pytest.raises(ValueError):
            MultiGrainScanner(n_estimators=0)
        t, y = traces_with_signal(n=10)
        with pytest.raises(ValueError):
            MultiGrainScanner(windows=[(3, 3)]).fit(t, y[:5])
