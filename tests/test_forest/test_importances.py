"""Tests for impurity-based feature importances."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor, RegressionTree


def data_with_one_signal(n=300, d=6, signal=2, rng=0):
    r = np.random.default_rng(rng)
    X = r.uniform(size=(n, d))
    y = 3.0 * X[:, signal] + r.normal(0, 0.05, n)
    return X, y


class TestTreeImportances:
    def test_signal_feature_dominates(self):
        X, y = data_with_one_signal()
        t = RegressionTree(max_depth=6, rng=0).fit(X, y)
        imp = t.feature_importances_
        assert imp.argmax() == 2
        assert imp[2] > 0.8

    def test_sums_to_one(self):
        X, y = data_with_one_signal(rng=1)
        t = RegressionTree(max_depth=4, rng=0).fit(X, y)
        assert t.feature_importances_.sum() == pytest.approx(1.0)

    def test_single_leaf_all_zero(self):
        t = RegressionTree().fit(np.zeros((5, 3)), np.ones(5))
        assert np.all(t.feature_importances_ == 0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            _ = RegressionTree().feature_importances_


class TestForestImportances:
    def test_forest_aggregates(self):
        X, y = data_with_one_signal(rng=2)
        f = RandomForestRegressor(n_estimators=20, rng=0).fit(X, y)
        imp = f.feature_importances_
        assert imp.shape == (6,)
        assert imp.argmax() == 2
        assert imp.sum() == pytest.approx(1.0, abs=0.02)

    def test_two_signals_ranked(self):
        r = np.random.default_rng(3)
        X = r.uniform(size=(400, 5))
        y = 4.0 * X[:, 0] + 1.0 * X[:, 3] + r.normal(0, 0.05, 400)
        f = RandomForestRegressor(n_estimators=20, rng=0).fit(X, y)
        imp = f.feature_importances_
        assert imp[0] > imp[3] > max(imp[1], imp[2], imp[4])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            _ = RandomForestRegressor(n_estimators=2).feature_importances_
