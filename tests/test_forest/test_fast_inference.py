"""Tests for Bolt-style packed forest inference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forest import (
    CompletelyRandomForestRegressor,
    PackedForest,
    RandomForestRegressor,
)


def fitted_forest(n_estimators=10, n=200, d=5, rng=0, cls=RandomForestRegressor):
    r = np.random.default_rng(rng)
    X = r.uniform(size=(n, d))
    y = np.sin(3 * X[:, 0]) + X[:, 1]
    return cls(n_estimators=n_estimators, rng=rng).fit(X, y), X


class TestEquivalence:
    @pytest.mark.parametrize(
        "cls", [RandomForestRegressor, CompletelyRandomForestRegressor]
    )
    def test_matches_naive_predictions(self, cls):
        forest, X = fitted_forest(cls=cls)
        packed = PackedForest.from_forest(forest)
        assert np.allclose(packed.predict(X), forest.predict(X))

    def test_per_tree_matches(self):
        forest, X = fitted_forest(n_estimators=4)
        packed = PackedForest.from_forest(forest)
        assert np.allclose(
            packed.predict_per_tree(X[:20]), forest.predict_per_tree(X[:20])
        )

    def test_unseen_inputs(self):
        forest, X = fitted_forest()
        packed = PackedForest.from_forest(forest)
        Xt = np.random.default_rng(9).uniform(-2, 3, size=(50, X.shape[1]))
        assert np.allclose(packed.predict(Xt), forest.predict(Xt))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 8), st.integers(5, 60), st.integers(0, 10**6))
    def test_equivalence_property(self, n_trees, n_samples, seed):
        forest, X = fitted_forest(n_estimators=n_trees, n=60, rng=seed)
        packed = PackedForest.from_forest(forest)
        Xt = np.random.default_rng(seed + 1).uniform(size=(n_samples, X.shape[1]))
        assert np.allclose(packed.predict(Xt), forest.predict(Xt))


class TestForestIntegration:
    def test_predict_dispatches_to_packed_consistently(self):
        """Small-batch predictions (packed path) must equal large-batch
        predictions (per-tree path) point for point."""
        forest, X = fitted_forest(n_estimators=12, n=300)
        Xt = np.random.default_rng(4).uniform(size=(400, X.shape[1]))
        big = forest.predict(Xt)  # per-tree path (400 > 256)
        small = np.concatenate(
            [forest.predict(Xt[i : i + 100]) for i in range(0, 400, 100)]
        )
        assert np.allclose(big, small)

    def test_pack_cached_until_refit(self):
        forest, X = fitted_forest(n_estimators=8)
        p1 = forest.pack()
        assert forest.pack() is p1
        forest.fit(X, np.zeros(X.shape[0]))
        assert forest.pack() is not p1

    def test_pack_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor(n_estimators=2).pack()


class TestStructure:
    def test_node_accounting(self):
        forest, _ = fitted_forest(n_estimators=6)
        packed = PackedForest.from_forest(forest)
        assert packed.n_trees == 6
        assert packed.n_nodes == sum(t.n_nodes for t in forest.trees_)

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            PackedForest.from_forest(RandomForestRegressor(n_estimators=2))

    def test_wrong_width_rejected(self):
        forest, _ = fitted_forest()
        packed = PackedForest.from_forest(forest)
        with pytest.raises(ValueError):
            packed.predict(np.zeros((3, 2)))
