"""Tests for random and completely-random forests."""

import numpy as np
import pytest

from repro.forest import CompletelyRandomForestRegressor, RandomForestRegressor


def friedman_like(n=300, rng=0):
    r = np.random.default_rng(rng)
    X = r.uniform(size=(n, 5))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 20 * (X[:, 2] - 0.5) ** 2
    return X, y + r.normal(0, 0.2, n)


@pytest.mark.parametrize(
    "cls", [RandomForestRegressor, CompletelyRandomForestRegressor]
)
class TestBothForests:
    def test_fits_nonlinear_function(self, cls):
        X, y = friedman_like()
        Xt, yt = friedman_like(rng=1)
        f = cls(n_estimators=30, rng=0).fit(X, y)
        mse = np.mean((f.predict(Xt) - yt) ** 2)
        assert mse < np.var(yt) * 0.5  # much better than predicting the mean

    def test_reproducible(self, cls):
        X, y = friedman_like(100)
        p1 = cls(n_estimators=5, rng=3).fit(X, y).predict(X)
        p2 = cls(n_estimators=5, rng=3).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_predict_before_fit_raises(self, cls):
        with pytest.raises(RuntimeError):
            cls(n_estimators=2).predict(np.zeros((1, 2)))

    def test_per_tree_shape(self, cls):
        X, y = friedman_like(80)
        f = cls(n_estimators=4, rng=0).fit(X, y)
        per_tree = f.predict_per_tree(X[:10])
        assert per_tree.shape == (4, 10)
        assert np.allclose(per_tree.mean(axis=0), f.predict(X[:10]))

    def test_validation(self, cls):
        with pytest.raises(ValueError):
            cls(n_estimators=0)
        with pytest.raises(ValueError):
            cls(n_estimators=2, n_jobs=0)
        with pytest.raises(ValueError):
            cls(n_estimators=2).fit(np.zeros((3, 2)), np.zeros(5))


class TestForestContrast:
    def test_ensembling_beats_single_tree(self):
        X, y = friedman_like(400, rng=5)
        Xt, yt = friedman_like(400, rng=6)
        f1 = RandomForestRegressor(n_estimators=1, rng=1).fit(X, y)
        f30 = RandomForestRegressor(n_estimators=30, rng=1).fit(X, y)
        e1 = np.mean((f1.predict(Xt) - yt) ** 2)
        e30 = np.mean((f30.predict(Xt) - yt) ** 2)
        assert e30 < e1

    def test_completely_random_trees_are_deeper_but_diverse(self):
        """Random-threshold trees individually fit worse but still ensemble
        to a reasonable model (the diversity the cascade relies on)."""
        X, y = friedman_like(300, rng=7)
        Xt, yt = friedman_like(300, rng=8)
        crf = CompletelyRandomForestRegressor(n_estimators=30, rng=2).fit(X, y)
        err = np.mean((crf.predict(Xt) - yt) ** 2)
        assert err < np.var(yt)

    def test_parallel_training_matches_serial(self):
        X, y = friedman_like(120, rng=9)
        serial = RandomForestRegressor(n_estimators=4, n_jobs=1, rng=11).fit(X, y)
        parallel = RandomForestRegressor(n_estimators=4, n_jobs=2, rng=11).fit(X, y)
        assert np.allclose(serial.predict(X), parallel.predict(X))
