"""Cross-module integration tests: the full pipeline, edge conditions,
and determinism guarantees spanning subsystems."""

import numpy as np
import pytest

from repro import (
    Profiler,
    RuntimeCondition,
    StacModel,
    model_driven_policy,
    uniform_conditions,
)
from repro.baselines import RuntimeEvaluator, no_sharing_policy
from repro.core.profiler import ProfilerSettings
from repro.testbed import default_machine
from repro.workloads import YCSB_SESSION_MIX, get_workload

FAST = dict(
    windows=[(5, 5)],
    mgs_estimators=5,
    mgs_max_instances=2000,
    n_levels=1,
    forests_per_level=2,
    n_estimators=10,
)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline(self):
        conditions = uniform_conditions(("redis", "knn"), n=6, rng=0)
        profiler = Profiler(
            settings=ProfilerSettings(n_queries=300, n_windows=3, trace_ticks=12),
            rng=0,
        )
        dataset = profiler.profile(conditions)
        model = StacModel(rng=0, **FAST).fit(dataset)
        return dataset, model

    def test_policy_beats_baseline_on_testbed(self, pipeline):
        _, model = pipeline
        policy = model_driven_policy(
            model, ("redis", "knn"), (0.9, 0.9), timeout_grid=(0.0, 1.0, 4.0)
        )
        evaluator = RuntimeEvaluator(
            machine=default_machine(),
            specs=[get_workload("redis"), get_workload("knn")],
            utilization=0.9,
            n_queries=1200,
            rng=50,
        )
        base = evaluator.p95(no_sharing_policy(2).timeouts)
        ours = evaluator.p95(policy.timeouts)
        # Joint improvement: nobody worse, someone clearly better.
        assert np.all(ours <= base * 1.05)
        assert np.any(ours < base * 0.9)

    def test_predictions_deterministic_end_to_end(self, pipeline):
        dataset, _ = pipeline
        cond = RuntimeCondition(("redis", "knn"), (0.8, 0.8), (1.0, 2.0))
        m1 = StacModel(rng=3, **FAST).fit(dataset)
        m2 = StacModel(rng=3, **FAST).fit(dataset)
        p1 = m1.predict_condition(cond)
        p2 = m2.predict_condition(cond)
        assert np.allclose(p1.effective_allocations, p2.effective_allocations)
        assert p1.summaries[0].p95 == p2.summaries[0].p95

    @pytest.mark.parametrize(
        "learner", ["deep_forest", "cascade", "random_forest", "tree", "linear"]
    )
    def test_every_learner_supports_condition_prediction(self, pipeline, learner):
        dataset, _ = pipeline
        kwargs = FAST if learner in ("deep_forest", "cascade") else {}
        model = StacModel(rng=0, learner=learner, **kwargs).fit(dataset)
        pred = model.predict_condition(
            RuntimeCondition(("redis", "knn"), (0.7, 0.7), (0.5, 3.0))
        )
        assert len(pred.summaries) == 2
        assert np.all(pred.effective_allocations > 0)


class TestEdgeConditions:
    def test_always_boost_condition(self):
        """timeout=0 on both: permanent short-term allocation."""
        profiler = Profiler(
            settings=ProfilerSettings(n_queries=200, n_windows=2, trace_ticks=8),
            rng=1,
        )
        ds = profiler.profile(
            [RuntimeCondition(("redis", "spstream"), (0.9, 0.9), (0.0, 0.0))]
        )
        assert len(ds) > 0
        # Near-permanent boosting measured in the dynamic features.
        boost = [r.x_dynamic[1] for r in ds.rows]
        assert min(boost) > 0.8

    def test_near_saturation(self):
        profiler = Profiler(
            settings=ProfilerSettings(n_queries=250, n_windows=2, trace_ticks=8),
            rng=2,
        )
        ds = profiler.profile(
            [RuntimeCondition(("jacobi", "bfs"), (0.94, 0.94), (1.0, 1.0))]
        )
        assert np.all(np.isfinite(ds.y_rt_mean))
        assert np.all(ds.y_rt_mean > 1.0)  # heavy queueing

    def test_single_service_profiling(self):
        profiler = Profiler(
            settings=ProfilerSettings(n_queries=200, n_windows=2, trace_ticks=8),
            rng=3,
        )
        ds = profiler.profile(
            [RuntimeCondition(("redis",), (0.8,), (1.0,))]
        )
        assert len(ds) > 0
        assert ds.traces.shape[1] == 29  # one service block only

    def test_query_mix_through_pipeline(self):
        """A mixed-demand workload flows through profiling and training."""
        mixed = get_workload("redis").with_mix(YCSB_SESSION_MIX)
        from repro.testbed import (
            CollocatedService,
            CollocationConfig,
            CollocationRuntime,
        )

        cfg = CollocationConfig(
            machine=default_machine(),
            services=[
                CollocatedService(mixed, timeout=0.5, utilization=0.9),
                CollocatedService(get_workload("knn"), timeout=1.0, utilization=0.9),
            ],
        )
        res = CollocationRuntime(cfg, rng=4).run(n_queries=500)
        svc = res.service("redis")
        # Mixture demands: heavier tail than the plain lognormal.
        assert svc.demands.max() / svc.demands.mean() > 2.0
        assert 0 < svc.effective_allocation() < 2.0

    def test_asymmetric_utilizations(self):
        profiler = Profiler(
            settings=ProfilerSettings(n_queries=250, n_windows=2, trace_ticks=8),
            rng=5,
        )
        ds = profiler.profile(
            [RuntimeCondition(("redis", "social"), (0.3, 0.93), (0.5, 0.5))]
        )
        rows = {r.service_name: r for r in ds.rows}
        # The loaded service queues; the idle one does not.
        assert rows["social"].x_dynamic[0] > rows["redis"].x_dynamic[0]


class TestNumericalRobustness:
    def test_model_survives_constant_ea_training(self):
        """If every profiled EA is identical (degenerate but possible at
        huge timeouts), training and prediction must still work."""
        profiler = Profiler(
            settings=ProfilerSettings(n_queries=200, n_windows=2, trace_ticks=8),
            rng=6,
        )
        conds = [
            RuntimeCondition(("knn", "kmeans"), (0.4, 0.4), (6.0, 6.0)),
            RuntimeCondition(("knn", "kmeans"), (0.5, 0.5), (5.5, 5.8)),
            RuntimeCondition(("knn", "kmeans"), (0.3, 0.35), (5.0, 6.0)),
        ]
        ds = profiler.profile(conds)
        assert np.ptp(ds.y_ea) < 0.05  # nearly constant target
        model = StacModel(rng=0, **FAST).fit(ds)
        pred = model.predict_rows(ds)
        assert np.all(np.isfinite(pred["rt_mean"]))

    def test_trace_padding_with_slow_sampling(self):
        """0.2 Hz sampling on short windows produces heavy zero padding
        without breaking feature extraction."""
        profiler = Profiler(
            settings=ProfilerSettings(n_queries=200, n_windows=4, trace_ticks=20),
            rng=7,
        )
        ds = profiler.profile(
            [
                RuntimeCondition(
                    ("jacobi", "bfs"), (0.5, 0.5), (1.0, 1.0), sampling_hz=0.2
                )
            ]
        )
        # Most ticks are padding; the model must still fit.
        zero_frac = float((ds.traces == 0).mean())
        assert zero_frac > 0.3
        StacModel(rng=0, **FAST).fit(ds)
