"""Smoke tests: the runnable examples must stay runnable.

Only the fastest example executes in the unit suite; the others are
exercised manually / by the bench session (they share all their code
paths with tested modules).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_examples_present():
    expected = {
        "quickstart.py",
        "social_network_slo.py",
        "cache_contention_study.py",
        "deep_forest_demo.py",
        "online_management.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}


def test_cache_contention_study_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "cache_contention_study.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Section 2 conjectures hold" in proc.stdout
    assert "Miss-ratio curve" in proc.stdout


def test_examples_have_main_guard():
    for path in EXAMPLES.glob("*.py"):
        text = path.read_text()
        assert '__main__' in text, f"{path.name} lacks a main guard"
        assert text.startswith("#!"), f"{path.name} lacks a shebang"
