"""Tests for the online management layer."""

import numpy as np
import pytest

from repro import Profiler, StacModel, uniform_conditions
from repro.core.profiler import ProfilerSettings
from repro.manager import (
    AdaptiveTimeoutController,
    EpochResult,
    LoadScenario,
    OnlineManager,
)

PAIR = ("redis", "knn")
FAST = dict(
    windows=[(5, 5)],
    mgs_estimators=5,
    mgs_max_instances=2000,
    n_levels=1,
    forests_per_level=2,
    n_estimators=10,
)


@pytest.fixture(scope="module")
def controller():
    conditions = uniform_conditions(PAIR, n=6, rng=0)
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=300, n_windows=3, trace_ticks=12),
        rng=0,
    )
    model = StacModel(rng=0, **FAST).fit(profiler.profile(conditions))
    return AdaptiveTimeoutController(
        model=model, workloads=PAIR, timeout_grid=(0.0, 1.0, 4.0)
    )


class TestLoadScenario:
    def test_ramp(self):
        s = LoadScenario.ramp(2, 0.4, 0.9, 6)
        assert s.n_epochs == 6 and s.n_services == 2
        assert s.epochs[0][0] == pytest.approx(0.4)
        assert s.epochs[-1][0] == pytest.approx(0.9)

    def test_diurnal_peaks_mid(self):
        s = LoadScenario.diurnal(2, 0.3, 0.9, 7)
        mids = [e[0] for e in s.epochs]
        assert max(mids) == mids[3]
        assert mids[0] == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadScenario(())
        with pytest.raises(ValueError):
            LoadScenario(((0.5, 0.5), (0.6,)))
        with pytest.raises(ValueError):
            LoadScenario(((1.5, 0.5),))
        with pytest.raises(ValueError):
            LoadScenario.ramp(2, 0.3, 0.9, 0)


class TestController:
    def test_recommend_shape(self, controller):
        plan = controller.recommend((0.9, 0.9))
        assert plan.name == "adaptive"
        assert len(plan.timeouts) == 2
        assert all(t in (0.0, 1.0, 4.0) for t in plan.timeouts)

    def test_plan_caching(self, controller):
        before = controller.plans_computed
        a = controller.recommend((0.71, 0.71))
        b = controller.recommend((0.72, 0.72))  # same 0.05 quantum bucket
        assert a is b
        assert controller.plans_computed == before + 1

    def test_distinct_loads_distinct_plans(self, controller):
        controller.recommend((0.3, 0.3))
        n = controller.plans_computed
        controller.recommend((0.55, 0.55))  # different quantum bucket
        assert controller.plans_computed == n + 1

    def test_validation(self, controller):
        with pytest.raises(ValueError):
            controller.recommend((0.9,))
        with pytest.raises(ValueError):
            AdaptiveTimeoutController(
                model=controller.model, workloads=PAIR, utilization_quantum=0.0
            )


class TestOnlineManager:
    def test_epoch_results_structure(self, controller):
        manager = OnlineManager(controller, n_queries=300, rng=1)
        scenario = LoadScenario.ramp(2, 0.5, 0.9, 3)
        results = manager.run(scenario, adapt=True)
        assert len(results) == 3
        assert all(isinstance(r, EpochResult) for r in results)
        assert results[0].utilizations == (0.5, 0.5)
        assert results[0].p95.shape == (2,)

    def test_static_mode_keeps_first_plan(self, controller):
        manager = OnlineManager(controller, n_queries=300, rng=2)
        scenario = LoadScenario.ramp(2, 0.4, 0.9, 3)
        results = manager.run(scenario, adapt=False)
        assert len({r.timeouts for r in results}) == 1

    def test_width_mismatch(self, controller):
        manager = OnlineManager(controller, n_queries=300, rng=3)
        with pytest.raises(ValueError):
            manager.run(LoadScenario.ramp(3, 0.4, 0.8, 2))

    def test_bad_queries(self, controller):
        with pytest.raises(ValueError):
            OnlineManager(controller, n_queries=5)
