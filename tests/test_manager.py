"""Tests for the online management layer."""

import numpy as np
import pytest

from repro import Profiler, StacModel, uniform_conditions
from repro.core.profiler import ProfilerSettings
from repro.manager import (
    AdaptiveTimeoutController,
    EpochResult,
    LoadScenario,
    OnlineManager,
)

PAIR = ("redis", "knn")
FAST = dict(
    windows=[(5, 5)],
    mgs_estimators=5,
    mgs_max_instances=2000,
    n_levels=1,
    forests_per_level=2,
    n_estimators=10,
)


@pytest.fixture(scope="module")
def controller():
    conditions = uniform_conditions(PAIR, n=6, rng=0)
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=300, n_windows=3, trace_ticks=12),
        rng=0,
    )
    model = StacModel(rng=0, **FAST).fit(profiler.profile(conditions))
    return AdaptiveTimeoutController(
        model=model, workloads=PAIR, timeout_grid=(0.0, 1.0, 4.0)
    )


class TestLoadScenario:
    def test_ramp(self):
        s = LoadScenario.ramp(2, 0.4, 0.9, 6)
        assert s.n_epochs == 6 and s.n_services == 2
        assert s.epochs[0][0] == pytest.approx(0.4)
        assert s.epochs[-1][0] == pytest.approx(0.9)

    def test_diurnal_peaks_mid(self):
        s = LoadScenario.diurnal(2, 0.3, 0.9, 7)
        mids = [e[0] for e in s.epochs]
        assert max(mids) == mids[3]
        assert mids[0] == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadScenario(())
        with pytest.raises(ValueError):
            LoadScenario(((0.5, 0.5), (0.6,)))
        with pytest.raises(ValueError):
            LoadScenario(((1.5, 0.5),))
        with pytest.raises(ValueError):
            LoadScenario.ramp(2, 0.3, 0.9, 0)


class TestController:
    def test_recommend_shape(self, controller):
        plan = controller.recommend((0.9, 0.9))
        assert plan.name == "adaptive"
        assert len(plan.timeouts) == 2
        assert all(t in (0.0, 1.0, 4.0) for t in plan.timeouts)

    def test_plan_caching(self, controller):
        before = controller.plans_computed
        a = controller.recommend((0.71, 0.71))
        b = controller.recommend((0.72, 0.72))  # same 0.05 quantum bucket
        assert a is b
        assert controller.plans_computed == before + 1

    def test_distinct_loads_distinct_plans(self, controller):
        controller.recommend((0.3, 0.3))
        n = controller.plans_computed
        controller.recommend((0.55, 0.55))  # different quantum bucket
        assert controller.plans_computed == n + 1

    def test_validation(self, controller):
        with pytest.raises(ValueError):
            controller.recommend((0.9,))
        with pytest.raises(ValueError):
            AdaptiveTimeoutController(
                model=controller.model, workloads=PAIR, utilization_quantum=0.0
            )


class TestOnlineManager:
    def test_epoch_results_structure(self, controller):
        manager = OnlineManager(controller, n_queries=300, rng=1)
        scenario = LoadScenario.ramp(2, 0.5, 0.9, 3)
        results = manager.run(scenario, adapt=True)
        assert len(results) == 3
        assert all(isinstance(r, EpochResult) for r in results)
        assert results[0].utilizations == (0.5, 0.5)
        assert results[0].p95.shape == (2,)

    def test_static_mode_keeps_first_plan(self, controller):
        manager = OnlineManager(controller, n_queries=300, rng=2)
        scenario = LoadScenario.ramp(2, 0.4, 0.9, 3)
        results = manager.run(scenario, adapt=False)
        assert len({r.timeouts for r in results}) == 1

    def test_width_mismatch(self, controller):
        manager = OnlineManager(controller, n_queries=300, rng=3)
        with pytest.raises(ValueError):
            manager.run(LoadScenario.ramp(3, 0.4, 0.8, 2))

    def test_bad_queries(self, controller):
        with pytest.raises(ValueError):
            OnlineManager(controller, n_queries=5)


class TestCacheKeyQuantization:
    """Regression: ``np.round`` banker's rounding made bucket edges
    inconsistent (0.125 -> 0.10 but 0.175 -> 0.15 at quantum 0.05);
    keys now quantize half-up, so every midpoint rounds the same way.
    """

    def test_bucket_edges_round_half_up(self, controller):
        assert controller._key((0.125, 0.175)) == (0.15, 0.2)

    def test_all_midpoints_round_up(self, controller):
        q = controller.utilization_quantum
        for k in range(2, 18):
            mid = k * q + q / 2
            (key, _) = controller._key((mid, 0.5))
            assert key == pytest.approx(min((k + 1) * q, 0.95)), mid

    def test_interior_values_unchanged(self, controller):
        assert controller._key((0.71, 0.72)) == (0.7, 0.7)
        assert controller._key((0.30, 0.55)) == (0.3, 0.55)

    def test_keys_clipped_to_valid_utilization(self, controller):
        lo, hi = controller._key((0.01, 0.99))
        assert lo == pytest.approx(0.05)
        assert hi == pytest.approx(0.95)

    def test_equal_loads_share_one_plan_across_edge(self, controller):
        before = controller.plans_computed
        a = controller.recommend((0.125, 0.125))
        b = controller.recommend((0.13, 0.13))  # same half-up bucket
        assert a is b
        assert controller.plans_computed == before + 1


class TestGroundTruthSeeding:
    """Regression: ``run`` used to draw fresh epoch seeds from the live
    RNG, so back-to-back adapt=True / adapt=False runs on one manager
    simulated *different* ground truth and conflated policy effect with
    seed noise.  Seeds now derive from one fixed spawn per manager.
    """

    def test_repeated_runs_share_ground_truth(self, controller):
        manager = OnlineManager(controller, n_queries=300, rng=7)
        scenario = LoadScenario.ramp(2, 0.5, 0.8, 2)
        r1 = manager.run(scenario, adapt=False)
        r2 = manager.run(scenario, adapt=False)
        for a, b in zip(r1, r2):
            assert np.array_equal(a.p95, b.p95)
            assert np.array_equal(a.mean, b.mean)

    def test_ab_runs_share_epoch_zero(self, controller):
        """Epoch 0 uses the same plan in both modes, so with shared
        ground truth its outcomes must match exactly."""
        manager = OnlineManager(controller, n_queries=300, rng=8)
        scenario = LoadScenario.ramp(2, 0.5, 0.8, 2)
        adaptive = manager.run(scenario, adapt=True)
        static = manager.run(scenario, adapt=False)
        assert adaptive[0].timeouts == static[0].timeouts
        assert np.array_equal(adaptive[0].p95, static[0].p95)

    def test_distinct_managers_distinct_ground_truth(self, controller):
        scenario = LoadScenario.ramp(2, 0.5, 0.8, 2)
        r1 = OnlineManager(controller, n_queries=300, rng=9).run(scenario)
        r2 = OnlineManager(controller, n_queries=300, rng=10).run(scenario)
        assert not np.array_equal(r1[0].p95, r2[0].p95)


class TestControllerParallel:
    def test_njobs_validation(self, controller):
        with pytest.raises(ValueError):
            AdaptiveTimeoutController(
                model=controller.model, workloads=PAIR, n_jobs=0
            )

    def test_parallel_controller_matches_serial(self, controller):
        parallel = AdaptiveTimeoutController(
            model=controller.model,
            workloads=PAIR,
            timeout_grid=(0.0, 1.0, 4.0),
            n_jobs=2,
        )
        assert parallel.recommend((0.9, 0.9)).timeouts == controller.recommend(
            (0.9, 0.9)
        ).timeouts
