"""Tests for the L1/L2/LLC hierarchy."""

import numpy as np
import pytest

from repro.cache import (
    CacheGeometry,
    CacheHierarchy,
    CacheLevelSpec,
    HierarchyCounters,
    SetAssociativeCache,
    WayMask,
)


def make_hierarchy(cos_id=0, llc=None):
    llc = llc or SetAssociativeCache(CacheGeometry(n_sets=64, n_ways=8))
    return (
        CacheHierarchy(
            llc=llc,
            l1d_spec=CacheLevelSpec("L1D", 2 * 1024, 2),
            l2_spec=CacheLevelSpec("L2", 8 * 1024, 4),
            cos_id=cos_id,
        ),
        llc,
    )


class TestRouting:
    def test_empty_stream(self):
        h, _ = make_hierarchy()
        c = h.access(np.array([], dtype=np.int64))
        assert c.l1d_loads == 0 and c.llc_loads == 0

    def test_miss_cascade_totals(self):
        h, _ = make_hierarchy()
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 20, size=500) * 64
        c = h.access(addrs, rng=np.random.default_rng(1))
        assert c.l1d_loads + c.l1d_stores == 500
        l1_misses = c.l1d_load_misses + c.l1d_store_misses
        assert c.l2_requests == l1_misses
        assert c.llc_loads + c.llc_stores == c.l2_misses
        assert c.llc_load_misses <= c.llc_loads
        assert c.llc_store_misses <= c.llc_stores

    def test_hot_loop_served_by_l1(self):
        h, _ = make_hierarchy()
        addrs = np.tile(np.arange(4) * 64, 100)
        c = h.access(addrs, rng=np.random.default_rng(2))
        # After compulsory misses everything stays in L1.
        assert c.l1d_load_misses + c.l1d_store_misses <= 4

    def test_llc_mask_respected(self):
        h, llc = make_hierarchy(cos_id=3)
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 22, size=2000) * 64
        h.access(addrs, llc_mask=WayMask(2, 3), rng=np.random.default_rng(1))
        filled = np.nonzero(llc.valid.any(axis=0))[0]
        assert set(filled.tolist()) <= {2, 3, 4}

    def test_store_fraction_zero_all_loads(self):
        h, _ = make_hierarchy()
        c = h.access(np.arange(50) * 64, store_fraction=0.0)
        assert c.l1d_stores == 0 and c.llc_stores == 0

    def test_shared_llc_cross_pollution(self):
        """Two hierarchies over one LLC contend for its lines."""
        llc = SetAssociativeCache(CacheGeometry(n_sets=16, n_ways=2))
        ha, _ = make_hierarchy(cos_id=0, llc=llc)
        hb, _ = make_hierarchy(cos_id=1, llc=llc)
        rng = np.random.default_rng(0)
        a_addrs = rng.integers(0, 1 << 18, size=1000) * 64
        b_addrs = rng.integers(1 << 20, 1 << 21, size=1000) * 64
        ha.access(a_addrs, rng=np.random.default_rng(1))
        hb.access(b_addrs, rng=np.random.default_rng(2))
        owners = set(llc.owner[llc.valid].tolist())
        assert owners == {0, 1} or 1 in owners  # B displaced some of A


class TestCounters:
    def test_merge_adds_fields(self):
        a = HierarchyCounters(l1d_loads=3, llc_load_misses=2)
        b = HierarchyCounters(l1d_loads=4, llc_load_misses=1)
        m = a.merge(b)
        assert m.l1d_loads == 7 and m.llc_load_misses == 3

    def test_as_dict_keys_stable(self):
        d = HierarchyCounters().as_dict()
        assert "llc_evictions" in d and len(d) == 14
