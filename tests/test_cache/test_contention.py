"""Tests for the shared-way contention model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import SharedWayContention


class TestEffectiveSharedWays:
    def test_single_sharer_gets_everything(self):
        m = SharedWayContention()
        out = m.effective_shared_ways(4.0, [2.0, 0.0])
        assert out[0] == pytest.approx(4.0) and out[1] == 0.0

    def test_no_sharers(self):
        m = SharedWayContention()
        assert np.all(m.effective_shared_ways(4.0, [0.0, 0.0]) == 0.0)

    def test_occupancy_proportional(self):
        m = SharedWayContention(mode="occupancy", churn=0.0)
        out = m.effective_shared_ways(6.0, [1.0, 2.0])
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(4.0)

    def test_equal_split(self):
        m = SharedWayContention(mode="equal", churn=0.0)
        out = m.effective_shared_ways(6.0, [1.0, 5.0])
        assert out[0] == out[1] == pytest.approx(3.0)

    def test_churn_destroys_capacity(self):
        """Concurrent sharers keep less than the proportional split."""
        no_churn = SharedWayContention(churn=0.0).effective_shared_ways(
            6.0, [1.0, 1.0]
        )
        churned = SharedWayContention(churn=0.6).effective_shared_ways(
            6.0, [1.0, 1.0]
        )
        assert np.all(churned < no_churn)
        assert churned.sum() < 6.0

    def test_churn_only_applies_under_concurrency(self):
        m = SharedWayContention(churn=0.8)
        out = m.effective_shared_ways(6.0, [3.0, 0.0])
        assert out[0] == pytest.approx(6.0)  # lone sharer keeps everything

    def test_churn_hits_minority_sharer_harder(self):
        """Relative churn loss grows as a sharer's share shrinks."""
        m = SharedWayContention(churn=0.5)
        out = m.effective_shared_ways(6.0, [1.0, 3.0])
        base = SharedWayContention(churn=0.0).effective_shared_ways(6.0, [1.0, 3.0])
        kept = out / base
        assert kept[0] < kept[1]

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            SharedWayContention().effective_shared_ways(4.0, [-1.0, 2.0])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SharedWayContention(mode="weird")

    def test_bad_churn_rejected(self):
        with pytest.raises(ValueError):
            SharedWayContention(churn=1.5)

    @settings(max_examples=50)
    @given(
        st.floats(0.0, 32.0),
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=5),
    )
    def test_conservation_without_churn(self, shared, lam):
        """With churn disabled, the split conserves the shared region."""
        for mode in ("occupancy", "equal"):
            out = SharedWayContention(mode=mode, churn=0.0).effective_shared_ways(
                shared, lam
            )
            if any(x > 0 for x in lam) and shared > 0:
                assert out.sum() == pytest.approx(shared, rel=1e-9)
            else:
                assert out.sum() == 0.0
            assert np.all(out >= 0)

    @settings(max_examples=50)
    @given(
        st.floats(0.0, 1.0),
        st.floats(0.1, 32.0),
        st.lists(st.floats(0.1, 100.0), min_size=2, max_size=5),
    )
    def test_churn_bounded(self, churn, shared, lam):
        """Churned shares stay within [0, proportional share]."""
        out = SharedWayContention(churn=churn).effective_shared_ways(shared, lam)
        base = SharedWayContention(churn=0.0).effective_shared_ways(shared, lam)
        assert np.all(out >= 0)
        assert np.all(out <= base + 1e-12)


class TestSlowdown:
    def test_no_extra_misses_no_slowdown(self):
        m = SharedWayContention()
        assert m.slowdown_factor(0.2, 0.2, 0.5) == pytest.approx(1.0)

    def test_doubled_misses_fully_memory_bound(self):
        m = SharedWayContention()
        assert m.slowdown_factor(0.2, 0.4, 1.0) == pytest.approx(2.0)

    def test_doubled_misses_compute_bound(self):
        # The paper observes workloads absorbing 2X LLC misses without
        # significant response-time increase: low memory_boundedness.
        m = SharedWayContention()
        assert m.slowdown_factor(0.2, 0.4, 0.05) == pytest.approx(1.05)

    def test_fewer_misses_speeds_up(self):
        m = SharedWayContention()
        assert m.slowdown_factor(0.4, 0.2, 0.8) < 1.0

    def test_zero_baseline_neutral(self):
        assert SharedWayContention().slowdown_factor(0.0, 0.3, 0.5) == 1.0

    def test_invalid_boundedness(self):
        with pytest.raises(ValueError):
            SharedWayContention().slowdown_factor(0.1, 0.2, 1.5)
