"""Tests for cache geometry and address decomposition."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cache import CacheGeometry


class TestConstruction:
    def test_basic_sizes(self):
        g = CacheGeometry(n_sets=1024, n_ways=16, line_size=64)
        assert g.size_bytes == 1024 * 16 * 64
        assert g.way_size_bytes == 1024 * 64

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry(n_sets=1000, n_ways=16)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry(n_sets=64, n_ways=4, line_size=48)

    def test_rejects_nonpositive_ways(self):
        with pytest.raises(ValueError, match="n_ways"):
            CacheGeometry(n_sets=64, n_ways=0)

    def test_from_size_rounds_sets_down(self):
        g = CacheGeometry.from_size(40 * 1024 * 1024, n_ways=20, line_size=64)
        assert g.n_ways == 20
        # 40MB / (20 * 64) = 32768 sets, already a power of two
        assert g.n_sets == 32768

    def test_from_size_too_small(self):
        with pytest.raises(ValueError, match="too small"):
            CacheGeometry.from_size(16, n_ways=8, line_size=64)


class TestAddressSplit:
    def test_line_offset_ignored(self):
        g = CacheGeometry(n_sets=64, n_ways=4, line_size=64)
        t0, s0 = g.split_address([128])
        t1, s1 = g.split_address([128 + 63])
        assert t0 == t1 and s0 == s1

    def test_adjacent_lines_adjacent_sets(self):
        g = CacheGeometry(n_sets=64, n_ways=4, line_size=64)
        _, s = g.split_address([0, 64, 128])
        assert list(s) == [0, 1, 2]

    def test_set_wraps(self):
        g = CacheGeometry(n_sets=4, n_ways=2, line_size=64)
        _, s = g.split_address([4 * 64])
        assert s[0] == 0

    def test_negative_address_rejected(self):
        g = CacheGeometry(n_sets=4, n_ways=2)
        with pytest.raises(ValueError, match="non-negative"):
            g.split_address([-1])

    @given(st.integers(min_value=0, max_value=2**40))
    def test_roundtrip_reconstruction(self, addr):
        g = CacheGeometry(n_sets=256, n_ways=8, line_size=64)
        tag, idx = g.split_address([addr])
        line = (int(tag[0]) << g.index_bits) | int(idx[0])
        assert line == addr // g.line_size

    @given(
        st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=50)
    )
    def test_vectorized_matches_scalar(self, addrs):
        g = CacheGeometry(n_sets=128, n_ways=4)
        tags, sets = g.split_address(addrs)
        for a, t, s in zip(addrs, tags, sets):
            t1, s1 = g.split_address([a])
            assert t == t1[0] and s == s1[0]
