"""Tests for the set-associative cache with per-way write enables."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CacheGeometry, SetAssociativeCache, WayMask


def small_cache(n_sets=4, n_ways=4, line=64):
    return SetAssociativeCache(CacheGeometry(n_sets=n_sets, n_ways=n_ways, line_size=line))


class TestBasicBehaviour:
    def test_first_access_misses_second_hits(self):
        c = small_cache()
        r1 = c.access([0])
        r2 = c.access([0])
        assert r1.n_misses == 1 and r2.n_hits == 1

    def test_same_line_different_offset_hits(self):
        c = small_cache()
        c.access([0])
        r = c.access([63])
        assert r.n_hits == 1

    def test_working_set_fits_all_hits_after_warmup(self):
        c = small_cache(n_sets=4, n_ways=4)
        # 16 distinct lines = exactly capacity
        addrs = np.arange(16) * 64
        c.access(addrs)
        r = c.access(addrs)
        assert r.n_hits == 16

    def test_working_set_exceeds_capacity_thrash(self):
        c = small_cache(n_sets=1, n_ways=2)
        # 3 lines mapping to the single set, cyclic: classic LRU thrash
        addrs = np.tile(np.arange(3) * 64, 10)
        r = c.access(addrs)
        assert r.n_hits == 0

    def test_lru_evicts_least_recent(self):
        c = small_cache(n_sets=1, n_ways=2)
        c.access([0 * 64, 1 * 64])  # set holds {0, 1}
        c.access([0 * 64])  # touch 0; LRU is now 1
        c.access([2 * 64])  # evicts 1
        assert c.access([0 * 64]).n_hits == 1
        assert c.access([1 * 64]).n_misses == 1

    def test_eviction_counted(self):
        c = small_cache(n_sets=1, n_ways=1)
        r = c.access([0, 64])
        assert r.n_evictions == 1

    def test_reset(self):
        c = small_cache()
        c.access([0, 64, 128])
        c.reset()
        assert c.occupancy == 0.0
        assert c.access([0]).n_misses == 1


class TestWriteEnableMasks:
    def test_fills_restricted_to_mask(self):
        c = small_cache(n_sets=2, n_ways=4)
        mask = WayMask(1, 2)
        c.access(np.arange(8) * 64, mask=mask, cos_id=7)
        filled_ways = np.nonzero(c.valid.any(axis=0))[0]
        assert set(filled_ways.tolist()) <= {1, 2}
        assert set(c.owner[c.valid].tolist()) == {7}

    def test_hit_outside_mask_still_hits(self):
        c = small_cache(n_sets=1, n_ways=4)
        c.access([0], mask=WayMask(0, 1), cos_id=0)
        # A different COS whose mask excludes way 0 still hits the line.
        r = c.access([0], mask=WayMask(2, 2), cos_id=1)
        assert r.n_hits == 1

    def test_mask_shrinks_effective_capacity(self):
        addrs = np.tile(np.arange(4) * 64, 20)  # 4 lines in one set
        full = small_cache(n_sets=1, n_ways=4)
        half = small_cache(n_sets=1, n_ways=4)
        r_full = full.access(addrs)
        r_half = half.access(addrs, mask=WayMask(0, 2))
        assert r_full.n_misses < r_half.n_misses

    def test_mask_exceeding_ways_rejected(self):
        c = small_cache(n_sets=2, n_ways=2)
        with pytest.raises(ValueError, match="exceeds"):
            c.access([0], mask=WayMask(0, 4))

    def test_occupancy_by_owner(self):
        c = small_cache(n_sets=2, n_ways=4)
        c.access([0, 64], mask=WayMask(0, 2), cos_id=1)
        c.access([1024, 2048], mask=WayMask(2, 2), cos_id=2)
        occ = c.occupancy_by_owner()
        assert occ.get(1, 0) >= 1 and occ.get(2, 0) >= 1

    def test_flush_ways(self):
        c = small_cache(n_sets=2, n_ways=4)
        c.access(np.arange(8) * 64)
        flushed = c.flush_ways(WayMask(0, 2))
        assert flushed > 0
        assert not c.valid[:, :2].any()


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 1023), min_size=1, max_size=200),
        st.integers(1, 4),
    )
    def test_hits_never_exceed_accesses(self, lines, n_ways_mask):
        c = small_cache(n_sets=4, n_ways=4)
        addrs = np.asarray(lines) * 64
        r = c.access(addrs, mask=WayMask(0, n_ways_mask))
        assert 0 <= r.n_hits <= len(lines)
        assert r.n_hits + r.n_misses == len(lines)
        assert r.hits.shape == (len(lines),)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=100))
    def test_repeat_pass_hit_count_monotone(self, lines):
        """Re-running the same stream can only raise the hit count when the
        working set fits in the enabled capacity."""
        c = small_cache(n_sets=16, n_ways=16)  # big enough: 256 lines
        addrs = np.asarray(lines) * 64
        r1 = c.access(addrs)
        r2 = c.access(addrs)
        assert r2.n_hits >= r1.n_hits
        assert r2.n_hits == len(lines)  # everything resident now

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4))
    def test_more_ways_never_more_misses_lru(self, extra):
        """LRU is a stack algorithm: enabling more ways cannot add misses
        when filling from way 0 upward."""
        rng = np.random.default_rng(42)
        addrs = rng.integers(0, 64, size=300) * 64
        small = small_cache(n_sets=2, n_ways=8)
        big = small_cache(n_sets=2, n_ways=8)
        r_small = small.access(addrs, mask=WayMask(0, 2))
        r_big = big.access(addrs, mask=WayMask(0, 2 + extra))
        assert r_big.n_misses <= r_small.n_misses
