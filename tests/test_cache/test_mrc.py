"""Tests for miss-ratio curves: analytic form, fitting, measurement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CacheGeometry, MissRatioCurve, fit_exponential_mrc, measure_mrc


class TestAnalyticForm:
    def test_limits(self):
        mrc = MissRatioCurve(m0=0.9, m_inf=0.1, footprint_bytes=1e6)
        assert mrc.miss_ratio(0.0) == pytest.approx(0.9)
        assert mrc.miss_ratio(1e12) == pytest.approx(0.1, abs=1e-6)

    def test_monotone_decreasing(self):
        mrc = MissRatioCurve(m0=0.8, m_inf=0.05, footprint_bytes=2e6)
        caps = np.linspace(0, 2e7, 50)
        vals = mrc.miss_ratio(caps)
        assert np.all(np.diff(vals) <= 1e-12)

    def test_ways_helper(self):
        mrc = MissRatioCurve(m0=0.5, m_inf=0.1, footprint_bytes=1e6)
        assert mrc.miss_ratio_ways(4, 250_000) == pytest.approx(mrc.miss_ratio(1e6))

    def test_marginal_utility_decreasing(self):
        mrc = MissRatioCurve(m0=0.5, m_inf=0.1, footprint_bytes=1e6)
        assert mrc.marginal_utility(0) > mrc.marginal_utility(5e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MissRatioCurve(m0=0.1, m_inf=0.5, footprint_bytes=1e6)
        with pytest.raises(ValueError):
            MissRatioCurve(m0=0.5, m_inf=0.1, footprint_bytes=0)
        with pytest.raises(ValueError):
            MissRatioCurve(m0=1.5, m_inf=0.1, footprint_bytes=1e6)

    @settings(max_examples=50)
    @given(
        st.floats(0.05, 1.0),
        st.floats(0.0, 0.05),
        st.floats(1e3, 1e9),
        st.floats(0, 1e10),
    )
    def test_output_bounded(self, m0, m_inf, fp, cap):
        mrc = MissRatioCurve(m0=m0, m_inf=m_inf, footprint_bytes=fp)
        v = mrc.miss_ratio(cap)
        assert m_inf - 1e-12 <= v <= m0 + 1e-12


class TestFitting:
    def test_recovers_known_curve(self):
        true = MissRatioCurve(m0=0.7, m_inf=0.08, footprint_bytes=3e6)
        caps = np.linspace(1e5, 2e7, 30)
        fit = fit_exponential_mrc(caps, true.miss_ratio(caps))
        assert fit.m0 == pytest.approx(0.7, rel=0.05)
        assert fit.m_inf == pytest.approx(0.08, rel=0.1)
        assert fit.footprint_bytes == pytest.approx(3e6, rel=0.1)

    def test_noisy_fit_reasonable(self):
        rng = np.random.default_rng(7)
        true = MissRatioCurve(m0=0.6, m_inf=0.1, footprint_bytes=1e6)
        caps = np.linspace(1e4, 8e6, 40)
        noisy = np.clip(true.miss_ratio(caps) + rng.normal(0, 0.01, 40), 0, 1)
        fit = fit_exponential_mrc(caps, noisy)
        assert abs(fit.miss_ratio(2e6) - true.miss_ratio(2e6)) < 0.05

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            fit_exponential_mrc([1, 2], [0.1, 0.2])


class TestMeasurement:
    def test_measured_mrc_decreasing_for_lru(self):
        g = CacheGeometry(n_sets=8, n_ways=8)
        rng = np.random.default_rng(3)
        # Zipf-ish reuse so capacity matters.
        lines = rng.zipf(1.3, size=4000) % 256
        stream = lines * 64
        caps, ratios = measure_mrc(stream, g, way_counts=[1, 2, 4, 8])
        assert caps.shape == (4,)
        assert ratios[0] >= ratios[-1]

    def test_measured_then_fit_pipeline(self):
        g = CacheGeometry(n_sets=8, n_ways=8)
        rng = np.random.default_rng(5)
        lines = rng.zipf(1.5, size=3000) % 128
        caps, ratios = measure_mrc(lines * 64, g)
        fit = fit_exponential_mrc(caps, ratios)
        assert 0 <= fit.m_inf <= fit.m0 <= 1
