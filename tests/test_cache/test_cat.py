"""Tests for CAT way masks, policies and the Section 2 conjectures."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cache import (
    CatController,
    ShortTermPolicy,
    WayMask,
    private_region,
)
from repro.cache.cat import pairwise_layout


class TestWayMask:
    def test_ways_and_bitmask(self):
        m = WayMask(2, 3)
        assert list(m.ways()) == [2, 3, 4]
        assert m.bitmask() == 0b11100

    def test_from_bitmask_roundtrip(self):
        m = WayMask(4, 5)
        assert WayMask.from_bitmask(m.bitmask()) == m

    def test_from_bitmask_rejects_noncontiguous(self):
        with pytest.raises(ValueError, match="contiguous"):
            WayMask.from_bitmask(0b1011)

    def test_from_bitmask_rejects_zero(self):
        with pytest.raises(ValueError):
            WayMask.from_bitmask(0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WayMask(0, 0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            WayMask(-1, 2)

    def test_overlap_and_intersection(self):
        a, b = WayMask(0, 4), WayMask(2, 4)
        assert a.overlaps(b) and b.overlaps(a)
        assert a.intersection(b) == WayMask(2, 2)

    def test_disjoint_intersection_none(self):
        assert WayMask(0, 2).intersection(WayMask(2, 2)) is None
        assert not WayMask(0, 2).overlaps(WayMask(2, 2))

    def test_covers(self):
        assert WayMask(0, 6).covers(WayMask(1, 3))
        assert not WayMask(1, 3).covers(WayMask(0, 6))

    @given(
        st.integers(0, 20), st.integers(1, 10), st.integers(0, 20), st.integers(1, 10)
    )
    def test_overlap_symmetric_and_matches_sets(self, o1, l1, o2, l2):
        a, b = WayMask(o1, l1), WayMask(o2, l2)
        sets_overlap = bool(set(a.ways().tolist()) & set(b.ways().tolist()))
        assert a.overlaps(b) == sets_overlap == b.overlaps(a)

    @given(
        st.integers(0, 20), st.integers(1, 10), st.integers(0, 20), st.integers(1, 10)
    )
    def test_intersection_matches_set_semantics(self, o1, l1, o2, l2):
        a, b = WayMask(o1, l1), WayMask(o2, l2)
        expect = sorted(set(a.ways().tolist()) & set(b.ways().tolist()))
        inter = a.intersection(b)
        got = [] if inter is None else inter.ways().tolist()
        assert got == expect


class TestShortTermPolicy:
    def test_gross_increase(self):
        p = ShortTermPolicy(WayMask(0, 2), WayMask(0, 4), timeout=1.5)
        assert p.gross_increase == 2.0

    def test_boost_must_cover_default(self):
        with pytest.raises(ValueError, match="cover"):
            ShortTermPolicy(WayMask(0, 4), WayMask(2, 4), timeout=1.0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            ShortTermPolicy(WayMask(0, 2), WayMask(0, 3), timeout=-1)

    def test_active_mask(self):
        p = ShortTermPolicy(WayMask(0, 2), WayMask(0, 4), timeout=1.0)
        assert p.active_mask(False) == WayMask(0, 2)
        assert p.active_mask(True) == WayMask(0, 4)


class TestPrivateRegion:
    def test_no_others_full_default(self):
        p = ShortTermPolicy(WayMask(0, 2), WayMask(0, 4), timeout=1.0)
        assert private_region(p, []) == WayMask(0, 2)

    def test_pairwise_layout_private_regions(self):
        pa, pb = pairwise_layout(8, private_ways=2, shared_ways=2, timeouts=(1.0, 1.0))
        assert private_region(pa, [pb]) == WayMask(0, 2)
        assert private_region(pb, [pa]) == WayMask(4, 2)

    def test_fully_shared_no_private(self):
        a = ShortTermPolicy(WayMask(0, 4), WayMask(0, 4), timeout=1.0)
        b = ShortTermPolicy(WayMask(0, 4), WayMask(0, 4), timeout=1.0)
        assert private_region(a, [b]) is None


class TestCatController:
    def _controller(self, n_ways=8):
        ctl = CatController(n_ways=n_ways)
        pa, pb = pairwise_layout(
            n_ways, private_ways=2, shared_ways=2, timeouts=(1.0, 2.0)
        )
        ctl.register("A", pa)
        ctl.register("B", pb)
        return ctl

    def test_register_and_masks(self):
        ctl = self._controller()
        assert ctl.active_mask("A") == WayMask(0, 2)
        ctl.set_boosted("A", True)
        assert ctl.active_mask("A") == WayMask(0, 4)
        assert ctl.is_boosted("A")
        ctl.set_boosted("A", False)
        assert not ctl.is_boosted("A")

    def test_register_rejects_oversized_policy(self):
        ctl = CatController(n_ways=4)
        with pytest.raises(ValueError, match="beyond"):
            ctl.register("X", ShortTermPolicy(WayMask(0, 3), WayMask(0, 6), 1.0))

    def test_set_boosted_unknown_workload(self):
        ctl = self._controller()
        with pytest.raises(KeyError):
            ctl.set_boosted("nope", True)

    def test_unregister(self):
        ctl = self._controller()
        ctl.unregister("A")
        assert ctl.workloads == ["B"]

    def test_conjecture1_private_disjoint(self):
        ctl = self._controller()
        assert ctl.private_regions_disjoint()
        assert ctl.all_have_private_cache()

    def test_conjecture2_max_two_sharers(self):
        # Three workloads on a 12-way LLC, middle one shares with both sides.
        ctl = CatController(n_ways=12)
        ctl.register("L", ShortTermPolicy(WayMask(0, 2), WayMask(0, 4), 1.0))
        ctl.register(
            "M", ShortTermPolicy(WayMask(5, 2), WayMask(3, 6), 1.0)
        )  # shares 3-4 with L's boost and 9-10... no: boost is 3..8
        ctl.register("R", ShortTermPolicy(WayMask(10, 2), WayMask(8, 4), 1.0))
        assert ctl.all_have_private_cache()
        assert ctl.max_sharers() <= 2

    @given(st.data())
    def test_conjectures_hold_for_random_valid_layouts(self, data):
        """Any pairwise layout generated by pairwise_layout satisfies both
        Section 2 conjectures."""
        n_ways = data.draw(st.integers(6, 24))
        private = data.draw(st.integers(1, max(1, (n_ways - 1) // 2 - 1)))
        max_shared = n_ways - 2 * private
        shared = data.draw(st.integers(1, max(1, max_shared)))
        if 2 * private + shared > n_ways:
            return
        ctl = CatController(n_ways=n_ways)
        pa, pb = pairwise_layout(n_ways, private, shared, timeouts=(1.0, 1.0))
        ctl.register("A", pa)
        ctl.register("B", pb)
        assert ctl.private_regions_disjoint()
        assert ctl.max_sharers() <= 2


class TestPairwiseLayout:
    def test_rejects_overcommitted_layout(self):
        with pytest.raises(ValueError, match="ways"):
            pairwise_layout(8, private_ways=3, shared_ways=4, timeouts=(1.0, 1.0))

    def test_shared_region_is_shared(self):
        pa, pb = pairwise_layout(10, 3, 2, timeouts=(0.5, 1.5))
        inter = pa.boost.intersection(pb.boost)
        assert inter is not None and inter.length == 2
        assert pa.timeout == 0.5 and pb.timeout == 1.5
