"""Tests for CMT/MBM-style cache monitoring."""

import numpy as np
import pytest

from repro.cache import (
    CacheGeometry,
    CacheMonitor,
    SetAssociativeCache,
    WayMask,
)


def cache_and_monitor(n_sets=8, n_ways=4):
    c = SetAssociativeCache(CacheGeometry(n_sets=n_sets, n_ways=n_ways))
    return c, CacheMonitor(c)


class TestOccupancy:
    def test_counts_resident_lines(self):
        c, m = cache_and_monitor()
        c.access(np.arange(6) * 64, cos_id=1)
        assert m.occupancy_bytes(1) == 6 * 64
        assert m.occupancy_bytes(2) == 0

    def test_split_between_cos(self):
        c, m = cache_and_monitor()
        c.access(np.arange(4) * 64, mask=WayMask(0, 2), cos_id=1)
        c.access((np.arange(4) + 100) * 64, mask=WayMask(2, 2), cos_id=2)
        r = m.read_all()
        assert r[1].occupancy_bytes > 0 and r[2].occupancy_bytes > 0
        total = r[1].occupancy_bytes + r[2].occupancy_bytes
        assert total == int(c.valid.sum()) * 64

    def test_occupancy_fraction(self):
        c, m = cache_and_monitor(n_sets=4, n_ways=2)
        c.access(np.arange(4) * 64, cos_id=0)
        reading = m.read(0)
        assert reading.occupancy_fraction == pytest.approx(
            4 / (4 * 2), rel=1e-9
        )


class TestBandwidth:
    def test_installs_count_misses(self):
        c, m = cache_and_monitor()
        c.access(np.arange(5) * 64, cos_id=3)
        r = m.read(3)
        assert r.installs == 5
        assert r.local_bandwidth_bytes == 5 * 64

    def test_delta_semantics(self):
        c, m = cache_and_monitor()
        c.access(np.arange(5) * 64, cos_id=0)
        m.read(0)
        c.access(np.arange(5) * 64, cos_id=0)  # all hits: no new installs
        assert m.read(0).installs == 0
        c.access((np.arange(3) + 50) * 64, cos_id=0)
        assert m.read(0).installs == 3

    def test_reset_restores_baseline(self):
        c, m = cache_and_monitor()
        c.access(np.arange(4) * 64, cos_id=0)
        m.read(0)
        m.reset()
        assert m.read(0).installs == 4  # full history again


class TestContentionSignal:
    def test_evictions_attributed_to_victim(self):
        c, m = cache_and_monitor(n_sets=1, n_ways=2)
        c.access(np.arange(2) * 64, cos_id=1)  # fills both ways
        c.access((np.arange(2) + 10) * 64, cos_id=2)  # evicts COS 1's lines
        r = m.read_all()
        assert r[1].evictions_suffered == 2
        assert r[2].evictions_suffered == 0

    def test_churn_ratio(self):
        c, m = cache_and_monitor(n_sets=1, n_ways=1)
        c.access([0 * 64], cos_id=0)
        c.access([1 * 64], cos_id=0)  # self-eviction
        r = m.read(0)
        assert r.churn_ratio == pytest.approx(1 / 2)

    def test_read_all_skips_invalid_owner(self):
        c, m = cache_and_monitor()
        c.access(np.arange(3) * 64, cos_id=5)
        assert set(m.read_all()) == {5}
