"""Tests for non-contiguous allocation (the Section 2 contrast)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import WayMask
from repro.cache.noncontiguous import (
    NonContiguousController,
    NonContiguousPolicy,
    WaySet,
    star_layout,
)


class TestWaySet:
    def test_bitmask_roundtrip(self):
        s = WaySet(frozenset({0, 3, 5}))
        assert WaySet.from_bitmask(s.bitmask()) == s
        assert s.bitmask() == 0b101001

    def test_from_contiguous_mask(self):
        s = WaySet.from_mask(WayMask(2, 3))
        assert s.ways == {2, 3, 4}
        assert s.is_contiguous

    def test_noncontiguous_detected(self):
        assert not WaySet(frozenset({0, 2})).is_contiguous

    def test_set_algebra(self):
        a, b = WaySet(frozenset({0, 1, 4})), WaySet(frozenset({1, 4, 5}))
        assert a.overlaps(b)
        assert a.intersection(b).ways == {1, 4}
        assert a.union(b).ways == {0, 1, 4, 5}
        assert a.difference(b).ways == {0}
        assert a.difference(a) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            WaySet(frozenset())
        with pytest.raises(ValueError):
            WaySet(frozenset({-1}))
        with pytest.raises(ValueError):
            WaySet.from_bitmask(0)

    @settings(max_examples=30)
    @given(st.sets(st.integers(0, 30), min_size=1, max_size=10))
    def test_bitmask_bijection(self, ways):
        s = WaySet(frozenset(ways))
        assert WaySet.from_bitmask(s.bitmask()).ways == s.ways


class TestPolicyAndController:
    def test_boost_must_cover_default(self):
        with pytest.raises(ValueError):
            NonContiguousPolicy(
                WaySet(frozenset({0, 1})), WaySet(frozenset({1, 2})), 1.0
            )

    def test_gross_increase(self):
        p = NonContiguousPolicy(
            WaySet(frozenset({5})), WaySet(frozenset({0, 1, 5})), 1.0
        )
        assert p.gross_increase == 3.0

    def test_register_bounds(self):
        ctl = NonContiguousController(n_ways=4)
        with pytest.raises(ValueError):
            ctl.register(
                "x",
                NonContiguousPolicy(
                    WaySet(frozenset({5})), WaySet(frozenset({5})), 1.0
                ),
            )

    def test_private_region_generalized(self):
        ctl = NonContiguousController(n_ways=8)
        pols = star_layout(2, private_ways_each=2, shared_ways=2)
        ctl.register("a", pols[0])
        ctl.register("b", pols[1])
        assert ctl.private_region("a").ways == {2, 3}
        assert ctl.private_region("b").ways == {4, 5}


class TestStarLayout:
    """The configuration contiguity forbids: N sharers of one pool."""

    def test_many_sharers_with_private_cache(self):
        n = 5
        ctl = NonContiguousController(n_ways=32)
        for i, pol in enumerate(star_layout(n, 2, 4)):
            ctl.register(f"w{i}", pol)
        # Everyone keeps private cache...
        assert ctl.all_have_private_cache()
        # ...yet the shared pool has n-1 > 2 sharers per setting — the
        # structure Section 2 proves impossible under contiguous masks.
        assert ctl.max_sharers() == n - 1 > 2

    def test_boost_masks_noncontiguous(self):
        pols = star_layout(3, 2, 2)
        # Workloads beyond the first need a non-contiguous boost set.
        assert not pols[1].boost.is_contiguous

    def test_validation(self):
        with pytest.raises(ValueError):
            star_layout(0, 1, 1)
        with pytest.raises(ValueError):
            star_layout(2, 0, 1)
