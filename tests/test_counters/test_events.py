"""Tests for counter synthesis."""

import numpy as np
import pytest

from repro.counters import COUNTER_NAMES, N_COUNTERS, synthesize_tick
from repro.workloads import get_workload
from repro.workloads.base import MB


def tick(spec=None, cap=4 * MB, busy=1.0, boost=0.0, dt=1.0, ways=2.0, noise=0.0, rng=0):
    spec = spec or get_workload("bfs")
    return synthesize_tick(
        spec,
        capacity_bytes=cap,
        busy_fraction=busy,
        boost_fraction=boost,
        dt=dt,
        ways_allocated=ways,
        rng=rng,
        noise=noise,
    )


class TestShape:
    def test_29_counters(self):
        assert N_COUNTERS == 29 == len(COUNTER_NAMES)
        assert tick().shape == (29,)

    def test_nonnegative(self):
        v = tick(noise=0.5, rng=3)
        assert np.all(v >= 0)


class TestCausalStructure:
    def _get(self, vec, name):
        return vec[COUNTER_NAMES.index(name)]

    def test_idle_service_emits_zero_traffic(self):
        v = tick(busy=0.0)
        assert self._get(v, "l1d_loads") == 0.0
        assert self._get(v, "llc_load_misses") == 0.0

    def test_more_capacity_fewer_llc_misses(self):
        lo = tick(cap=2 * MB)
        hi = tick(cap=16 * MB)
        assert self._get(hi, "llc_load_misses") < self._get(lo, "llc_load_misses")

    def test_l2_misses_feed_llc(self):
        v = tick()
        llc_refs = self._get(v, "llc_references")
        l2_miss = self._get(v, "l2_load_misses") + self._get(v, "l2_store_misses")
        assert llc_refs >= l2_miss

    def test_misses_bounded_by_accesses(self):
        v = tick()
        assert self._get(v, "l1d_load_misses") <= self._get(v, "l1d_loads")
        assert self._get(v, "llc_load_misses") <= self._get(v, "llc_loads") + 1e-9

    def test_boost_flag_passthrough(self):
        assert self._get(tick(boost=0.7), "boost_active") == pytest.approx(0.7)

    def test_streaming_kind_misses_more(self):
        stream = tick(spec=get_workload("spstream"))
        loop = tick(spec=get_workload("knn"))
        stream_mr = self._get(stream, "l1d_load_misses") / self._get(stream, "l1d_loads")
        loop_mr = self._get(loop, "l1d_load_misses") / self._get(loop, "l1d_loads")
        assert stream_mr > loop_mr

    def test_stall_cycles_track_capacity(self):
        lo = tick(cap=1 * MB)
        hi = tick(cap=16 * MB)
        assert self._get(lo, "stalled_cycles_mem") > self._get(hi, "stalled_cycles_mem")

    def test_scales_with_dt(self):
        v1 = tick(dt=1.0)
        v2 = tick(dt=2.0)
        assert self._get(v2, "instructions") == pytest.approx(
            2 * self._get(v1, "instructions")
        )


class TestNoise:
    def test_noise_zero_deterministic(self):
        assert np.array_equal(tick(noise=0.0, rng=1), tick(noise=0.0, rng=2))

    def test_noise_perturbs(self):
        assert not np.array_equal(tick(noise=0.1, rng=1), tick(noise=0.1, rng=2))


class TestValidation:
    def test_bad_dt(self):
        with pytest.raises(ValueError):
            tick(dt=0.0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            tick(busy=1.5)
        with pytest.raises(ValueError):
            tick(boost=-0.1)
