"""Tests for counter sampling over runtime segments and trace assembly."""

import numpy as np
import pytest

from repro.counters import (
    COUNTER_NAMES,
    CacheUsageTrace,
    CounterSampler,
    N_COUNTERS,
    order_counters,
    sample_service_counters,
)
from repro.counters.sampler import _segment_means
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def run_result():
    cfg = CollocationConfig(
        machine=default_machine(),
        services=[
            CollocatedService(get_workload("jacobi"), timeout=1.0, utilization=0.9),
            CollocatedService(get_workload("bfs"), timeout=1.0, utilization=0.9),
        ],
    )
    return CollocationRuntime(cfg, rng=0).run(n_queries=600)


class TestSegmentMeans:
    def test_single_segment(self):
        segs = [(0.0, 100.0, 1, 0, False)]
        cap, busy, boost, qlen = _segment_means(segs, 0.0, 2.0, n_servers=2)
        assert cap == 100.0 and busy == 0.5 and boost == 0.0 and qlen == 0.0

    def test_weighted_average(self):
        segs = [(0.0, 100.0, 0, 0, False), (1.0, 200.0, 2, 4, True)]
        cap, busy, boost, qlen = _segment_means(segs, 0.0, 2.0, n_servers=2)
        assert cap == pytest.approx(150.0)
        assert busy == pytest.approx(0.5)
        assert boost == pytest.approx(0.5)
        assert qlen == pytest.approx(2.0)

    def test_window_starting_mid_segment(self):
        segs = [(0.0, 100.0, 2, 0, False), (10.0, 300.0, 2, 0, True)]
        cap, _, boost, _ = _segment_means(segs, 5.0, 15.0, n_servers=2)
        assert cap == pytest.approx(200.0)
        assert boost == pytest.approx(0.5)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            _segment_means([(0.0, 1.0, 0, 0, False)], 1.0, 1.0, 1)


class TestSampler:
    def test_shape_follows_rate(self, run_result):
        svc = run_result.services[0]
        spec = get_workload("jacobi")
        m = default_machine()
        s1 = CounterSampler(sampling_hz=1.0).sample(svc, spec, m, 0.0, 50.0, rng=1)
        s5 = CounterSampler(sampling_hz=0.2).sample(svc, spec, m, 0.0, 50.0, rng=1)
        assert s1.shape == (50, N_COUNTERS)
        assert s5.shape == (10, N_COUNTERS)

    def test_counters_nonnegative(self, run_result):
        mat = sample_service_counters(
            run_result.services[0], get_workload("jacobi"), default_machine(), rng=2
        )
        assert np.all(mat >= 0)

    def test_boost_column_reflects_sta(self, run_result):
        mat = sample_service_counters(
            run_result.services[0], get_workload("jacobi"), default_machine(),
            noise=0.0, rng=3
        )
        boost_col = mat[:, COUNTER_NAMES.index("boost_active")]
        assert boost_col.max() > 0  # STA triggered at some point

    def test_validation(self, run_result):
        with pytest.raises(ValueError):
            CounterSampler(sampling_hz=0)
        with pytest.raises(ValueError):
            CounterSampler(noise=-1)
        svc = run_result.services[0]
        with pytest.raises(ValueError):
            CounterSampler().sample(
                svc, get_workload("jacobi"), default_machine(), 5.0, 5.0
            )


class TestTrace:
    def _trace(self, n_ticks=20):
        a = np.arange(15 * N_COUNTERS, dtype=float).reshape(15, N_COUNTERS)
        b = np.ones((25, N_COUNTERS))
        return CacheUsageTrace.from_counters([a, b], ["w1", "w2"], n_ticks=n_ticks)

    def test_padding_and_truncation(self):
        t = self._trace(n_ticks=20)
        assert t.data.shape == (2 * N_COUNTERS, 20)
        # w1 had 15 ticks: columns 15.. are zero padding.
        assert np.all(t.data[:N_COUNTERS, 15:] == 0)
        # w2 had 25 ticks: truncated to 20, all ones.
        assert np.all(t.data[N_COUNTERS:, :] == 1)

    def test_counter_row_lookup(self):
        t = self._trace()
        row = t.counter_row(0, "l1d_loads")
        assert row.shape == (20,)

    def test_flatten_length(self):
        t = self._trace()
        assert t.flatten().shape == (2 * N_COUNTERS * 20,)

    def test_shuffled_reorder_permutes_within_service(self):
        t = self._trace()
        shuf = t.reorder("shuffled", rng=0)
        # Same multiset of rows per service block, different order.
        orig = t.data[:N_COUNTERS]
        got = shuf.data[:N_COUNTERS]
        assert not np.array_equal(orig, got)
        assert np.array_equal(
            np.sort(orig.sum(axis=1)), np.sort(got.sum(axis=1))
        )

    def test_spatial_reorder_is_identity(self):
        t = self._trace()
        assert np.array_equal(t.reorder("spatial").data, t.data)

    def test_order_counters_validation(self):
        with pytest.raises(ValueError):
            order_counters(np.zeros((5, 4)), "spatial")
        with pytest.raises(ValueError):
            order_counters(np.zeros((N_COUNTERS, 4)), "sorted")

    def test_mismatched_names_rejected(self):
        with pytest.raises(ValueError):
            CacheUsageTrace.from_counters(
                [np.zeros((5, N_COUNTERS))], ["a", "b"], n_ticks=5
            )
