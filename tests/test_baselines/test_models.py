"""Tests for the baseline models: ridge, decision tree, MLP, CNN."""

import numpy as np
import pytest

from repro.baselines import (
    CNNRegressor,
    DecisionTreeBaseline,
    MLPRegressor,
    RidgeRegression,
    tune_cnn,
)
from repro.baselines.cnn import CNNHyperParams


class TestRidge:
    def test_recovers_linear_function(self):
        r = np.random.default_rng(0)
        X = r.normal(size=(300, 4))
        y = X @ np.array([1.0, -2.0, 0.5, 0.0]) + 3.0
        m = RidgeRegression(alpha=1e-6).fit(X, y)
        assert np.allclose(m.predict(X), y, atol=1e-6)

    def test_regularization_shrinks_coefficients(self):
        r = np.random.default_rng(1)
        X = r.normal(size=(50, 3))
        y = X[:, 0] * 5 + r.normal(0, 0.1, 50)
        small = RidgeRegression(alpha=0.01).fit(X, y)
        big = RidgeRegression(alpha=1000.0).fit(X, y)
        assert np.abs(big.coef_).sum() < np.abs(small.coef_).sum()

    def test_constant_feature_safe(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = np.arange(20.0)
        m = RidgeRegression(alpha=1e-6).fit(X, y)
        assert np.allclose(m.predict(X), y, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1)
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((3, 2)), np.zeros(4))


class TestDecisionTree:
    def test_fits_step_function(self):
        r = np.random.default_rng(2)
        X = r.uniform(size=(200, 3))
        y = np.where(X[:, 0] > 0.5, 1.0, 0.0)
        m = DecisionTreeBaseline(rng=0).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.01

    def test_depth_property(self):
        r = np.random.default_rng(3)
        X = r.uniform(size=(100, 2))
        y = X[:, 0] + X[:, 1]
        m = DecisionTreeBaseline(max_depth=4, rng=0).fit(X, y)
        assert 1 <= m.depth <= 4


class TestMLP:
    def test_learns_nonlinear(self):
        r = np.random.default_rng(4)
        X = r.uniform(-1, 1, size=(400, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        m = MLPRegressor(hidden=(32,), epochs=150, rng=0).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.1 * np.var(y)

    def test_loss_decreases(self):
        r = np.random.default_rng(5)
        X = r.normal(size=(200, 3))
        y = X[:, 0] * 2
        m = MLPRegressor(hidden=(16,), epochs=50, rng=0).fit(X, y)
        assert m.loss_history_[-1] < m.loss_history_[0]

    def test_seed_variation(self):
        """Back-prop models vary across seeds — the Figure 5 phenomenon."""
        r = np.random.default_rng(6)
        X = r.uniform(size=(150, 3))
        y = X[:, 0] + np.sin(5 * X[:, 1])
        p1 = MLPRegressor(hidden=(8,), epochs=20, rng=1).fit(X, y).predict(X)
        p2 = MLPRegressor(hidden=(8,), epochs=20, rng=2).fit(X, y).predict(X)
        assert not np.allclose(p1, p2)

    def test_dropout_path(self):
        r = np.random.default_rng(7)
        X = r.normal(size=(100, 4))
        y = X[:, 0]
        m = MLPRegressor(hidden=(16,), epochs=20, dropout=0.3, rng=0).fit(X, y)
        # Inference is deterministic (dropout disabled).
        assert np.array_equal(m.predict(X), m.predict(X))

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPRegressor(epochs=0)
        with pytest.raises(RuntimeError):
            MLPRegressor().predict(np.zeros((1, 2)))


class TestCNN:
    def _trace_data(self, n=80, rng=0):
        r = np.random.default_rng(rng)
        t = r.normal(0, 0.2, size=(n, 8, 8))
        y = r.uniform(size=n)
        for i in range(n):
            t[i, 2:5, 2:5] += y[i]
        return t, y

    def test_learns_spatial_signal(self):
        t, y = self._trace_data(n=150)
        params = CNNHyperParams(n_filters=4, kernel=(3, 3), hidden=16, epochs=60)
        m = CNNRegressor(params, rng=0).fit(None, t, y)
        pred = m.predict(None, t)
        assert np.corrcoef(pred, y)[0, 1] > 0.8

    def test_flat_features_accepted(self):
        t, y = self._trace_data(n=60)
        xf = np.random.default_rng(8).normal(size=(60, 3))
        m = CNNRegressor(CNNHyperParams(epochs=5), rng=0).fit(xf, t, y)
        assert m.predict(xf, t).shape == (60,)

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            CNNRegressor().fit(np.zeros((5, 2)), None, np.zeros(5))

    def test_kernel_too_large(self):
        t, y = self._trace_data(n=10)
        with pytest.raises(ValueError):
            CNNRegressor(CNNHyperParams(kernel=(9, 9), epochs=1), rng=0).fit(
                None, t, y
            )

    def test_seed_variance_exists(self):
        t, y = self._trace_data(n=60, rng=9)
        p = CNNHyperParams(epochs=10)
        m1 = CNNRegressor(p, rng=1).fit(None, t, y).predict(None, t)
        m2 = CNNRegressor(p, rng=2).fit(None, t, y).predict(None, t)
        assert not np.allclose(m1, m2)

    def test_tuner_returns_working_model(self):
        t, y = self._trace_data(n=60, rng=10)
        model, params = tune_cnn(None, t, y, n_trials=2, rng=0)
        assert model.predict(None, t).shape == (60,)
        assert isinstance(params, CNNHyperParams)

    def test_tuner_validation(self):
        t, y = self._trace_data(n=20)
        with pytest.raises(ValueError):
            tune_cnn(None, t, y, n_trials=0)
