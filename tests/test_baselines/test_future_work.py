"""Tests for the future-work architectures: LSTM and residual MLP."""

import numpy as np
import pytest

from repro.baselines import LSTMRegressor, ResidualMLPRegressor


def temporal_data(n=120, C=6, T=12, rng=0):
    """Target depends on the *trend* of one counter over time — signal an
    LSTM can read but a static summary misses."""
    r = np.random.default_rng(rng)
    traces = r.normal(0, 0.3, size=(n, C, T))
    slope = r.uniform(-1, 1, size=n)
    ramp = np.linspace(0, 1, T)
    traces[:, 2, :] += slope[:, None] * ramp[None, :]
    y = 0.5 + 0.4 * slope
    return traces, y


class TestLSTM:
    def test_learns_temporal_trend(self):
        traces, y = temporal_data(n=200, rng=1)
        m = LSTMRegressor(n_hidden=16, epochs=60, lr=5e-3, rng=0)
        m.fit(None, traces, y)
        pred = m.predict(None, traces)
        assert np.corrcoef(pred, y)[0, 1] > 0.8

    def test_generalizes(self):
        tr, ytr = temporal_data(n=250, rng=2)
        te, yte = temporal_data(n=80, rng=3)
        m = LSTMRegressor(n_hidden=16, epochs=60, lr=5e-3, rng=0)
        m.fit(None, tr, ytr)
        pred = m.predict(None, te)
        assert np.corrcoef(pred, yte)[0, 1] > 0.7

    def test_loss_decreases(self):
        traces, y = temporal_data(n=80, rng=4)
        m = LSTMRegressor(n_hidden=8, epochs=25, rng=0).fit(None, traces, y)
        assert m.loss_history_[-1] < m.loss_history_[0]

    def test_flat_features_path(self):
        traces, y = temporal_data(n=60, rng=5)
        flat = np.random.default_rng(6).normal(size=(60, 3))
        m = LSTMRegressor(n_hidden=8, epochs=5, rng=0).fit(flat, traces, y)
        assert m.predict(flat, traces).shape == (60,)
        with pytest.raises(ValueError):
            m.predict(None, traces)

    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMRegressor(n_hidden=0)
        with pytest.raises(ValueError):
            LSTMRegressor(lr=0)
        with pytest.raises(ValueError):
            LSTMRegressor().fit(None, None, np.zeros(3))
        with pytest.raises(RuntimeError):
            LSTMRegressor().predict(None, np.zeros((2, 3, 4)))

    def test_seed_variance(self):
        traces, y = temporal_data(n=80, rng=7)
        p1 = LSTMRegressor(n_hidden=8, epochs=10, rng=1).fit(None, traces, y)
        p2 = LSTMRegressor(n_hidden=8, epochs=10, rng=2).fit(None, traces, y)
        assert not np.allclose(
            p1.predict(None, traces), p2.predict(None, traces)
        )


class TestResidualMLP:
    def test_learns_nonlinear(self):
        r = np.random.default_rng(8)
        X = r.uniform(-1, 1, size=(400, 3))
        y = np.sin(3 * X[:, 0]) * X[:, 1] + X[:, 2] ** 2
        m = ResidualMLPRegressor(width=32, n_blocks=2, epochs=150, rng=0)
        m.fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.15 * np.var(y)

    def test_deep_stack_still_trains(self):
        """Skip connections keep a deep stack trainable."""
        r = np.random.default_rng(9)
        X = r.normal(size=(200, 4))
        y = X[:, 0] * 2 + 1
        m = ResidualMLPRegressor(width=16, n_blocks=6, epochs=100, lr=3e-3, rng=0)
        m.fit(X, y)
        assert m.loss_history_[-1] < 0.3

    def test_loss_decreases(self):
        r = np.random.default_rng(10)
        X = r.normal(size=(150, 3))
        y = X[:, 1]
        m = ResidualMLPRegressor(epochs=30, rng=0).fit(X, y)
        assert m.loss_history_[-1] < m.loss_history_[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ResidualMLPRegressor(n_blocks=0)
        with pytest.raises(ValueError):
            ResidualMLPRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(RuntimeError):
            ResidualMLPRegressor().predict(np.zeros((1, 2)))
