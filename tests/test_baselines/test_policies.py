"""Tests for competing allocation policies."""

import numpy as np
import pytest

from repro.baselines import (
    RuntimeEvaluator,
    dcat_policy,
    dynasprint_policy,
    no_sharing_policy,
    static_best_policy,
)
from repro.testbed import default_machine
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def evaluator():
    return RuntimeEvaluator(
        machine=default_machine(),
        specs=[get_workload("redis"), get_workload("social")],
        utilization=0.9,
        n_queries=800,
        rng=0,
    )


class TestEvaluator:
    def test_summary_per_service(self, evaluator):
        out = evaluator.evaluate((1.0, 1.0))
        assert len(out) == 2
        assert all(s.p95 > 0 for s in out)

    def test_caching(self, evaluator):
        a = evaluator.evaluate((1.0, 2.0))
        b = evaluator.evaluate((1.0, 2.0))
        assert a is b  # identical cached object

    def test_p95_vector(self, evaluator):
        p = evaluator.p95((np.inf, np.inf))
        assert p.shape == (2,)

    def test_utilization_override(self, evaluator):
        hi = evaluator.p95((np.inf, np.inf), utilization=0.9)
        lo = evaluator.p95((np.inf, np.inf), utilization=0.3)
        assert np.all(lo < hi)  # low load -> low response times


class TestNoSharing:
    def test_all_infinite(self):
        d = no_sharing_policy(3)
        assert d.timeouts == (np.inf, np.inf, np.inf)
        assert d.name == "no-sharing"

    def test_validation(self):
        with pytest.raises(ValueError):
            no_sharing_policy(0)


class TestStaticBest:
    def test_picks_share_when_it_helps(self, evaluator):
        d = static_best_policy(evaluator)
        assert d.name in ("static-share", "static-private")
        # With cache-sensitive redis+social, sharing should win.
        assert d.name == "static-share"

    def test_decision_is_actually_better(self, evaluator):
        d = static_best_policy(evaluator)
        other = (
            (np.inf, np.inf) if d.timeouts == (0.0, 0.0) else (0.0, 0.0)
        )
        assert evaluator.p95(d.timeouts).mean() <= evaluator.p95(other).mean()


class TestDCat:
    def test_winner_takes_shared_cache(self, evaluator):
        d = dcat_policy(evaluator)
        assert d.name == "dcat"
        finite = [t for t in d.timeouts if np.isfinite(t)]
        assert finite == [0.0]  # exactly one service gets the shared region

    def test_redis_wins_against_knn(self):
        """Redis has the steepest cache-speedup profile in the suite."""
        ev = RuntimeEvaluator(
            machine=default_machine(),
            specs=[get_workload("redis"), get_workload("knn")],
            n_queries=300,
            rng=1,
        )
        d = dcat_policy(ev)
        assert d.timeouts[0] == 0.0 and np.isinf(d.timeouts[1])


class TestDynaSprint:
    def test_returns_grid_values(self, evaluator):
        d = dynasprint_policy(evaluator, timeout_grid=(0.0, 1.0, 3.0))
        assert d.name == "dynasprint"
        assert all(t in (0.0, 1.0, 3.0, np.inf) for t in d.timeouts)

    def test_calibrated_settings_beat_baseline_at_low_rate(self, evaluator):
        d = dynasprint_policy(evaluator, timeout_grid=(0.0, 1.0))
        lo_policy = evaluator.p95(d.timeouts, utilization=0.25)
        lo_base = evaluator.p95((np.inf, np.inf), utilization=0.25)
        assert lo_policy.mean() <= lo_base.mean() + 1e-9

    def test_empty_grid_rejected(self, evaluator):
        with pytest.raises(ValueError):
            dynasprint_policy(evaluator, timeout_grid=())
