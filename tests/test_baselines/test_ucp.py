"""Tests for utility-based cache partitioning (UCP)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import marginal_utility_curve, ucp_partition, ucp_private_mb
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import all_workloads, get_workload

WAY = 2 * 1024 * 1024  # e5-2683 way size


class TestMarginalUtility:
    def test_decreasing_for_exponential_mrc(self):
        u = marginal_utility_curve(get_workload("redis"), 10, WAY)
        assert u.shape == (10,)
        assert np.all(np.diff(u) <= 1e-9)

    def test_streaming_low_utility(self):
        stream = marginal_utility_curve(get_workload("spstream"), 6, WAY)
        redis = marginal_utility_curve(get_workload("redis"), 6, WAY)
        # Redis's first extra ways eliminate far more misses per second.
        assert redis[1] > stream[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            marginal_utility_curve(get_workload("redis"), 0, WAY)


class TestPartition:
    def test_conserves_ways(self):
        specs = [get_workload(n) for n in ("redis", "knn", "spstream")]
        alloc = ucp_partition(specs, total_ways=10, way_bytes=WAY)
        assert sum(alloc) == 10
        assert all(a >= 1 for a in alloc)

    def test_cache_hungry_wins(self):
        specs = [get_workload("redis"), get_workload("spstream")]
        alloc = ucp_partition(specs, total_ways=8, way_bytes=WAY)
        assert alloc[0] > alloc[1]

    def test_min_ways_respected(self):
        specs = [get_workload("redis"), get_workload("knn")]
        alloc = ucp_partition(specs, 6, WAY, min_ways=2)
        assert min(alloc) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ucp_partition([], 4, WAY)
        with pytest.raises(ValueError):
            ucp_partition([get_workload("redis")] * 3, 2, WAY)
        with pytest.raises(ValueError):
            ucp_partition([get_workload("redis")], 2, WAY, min_ways=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 16), st.integers(2, 4))
    def test_conservation_property(self, total, n):
        specs = all_workloads()[:n]
        alloc = ucp_partition(specs, total, WAY)
        assert sum(alloc) == total


class TestUcpOnTestbed:
    def test_asymmetric_partition_runs(self):
        specs = [get_workload("redis"), get_workload("knn")]
        mbs = ucp_private_mb(specs, total_ways=6, way_bytes=WAY)
        assert len(mbs) == 2 and mbs[0] > mbs[1]
        cfg = CollocationConfig(
            machine=default_machine(),
            services=[
                CollocatedService(s, timeout=np.inf, utilization=0.9)
                for s in specs
            ],
            private_mb=mbs,
            shared_mb=0.0,
        )
        assert not cfg.is_uniform
        cfg.validate_conjectures()
        res = CollocationRuntime(cfg, rng=0).run(n_queries=300)
        # No shared region: nobody can boost.
        for s in res.services:
            assert s.boost_fraction == 0.0

    def test_ucp_beats_equal_split_on_misses_proxy(self):
        """Giving redis its UCP share speeds it up versus an equal split
        (the aggregate-utility objective UCP optimizes)."""
        specs = [get_workload("redis"), get_workload("knn")]
        mbs = ucp_private_mb(specs, total_ways=6, way_bytes=WAY)

        def mean_rt(private_mb):
            cfg = CollocationConfig(
                machine=default_machine(),
                services=[
                    CollocatedService(s, timeout=np.inf, utilization=0.9)
                    for s in specs
                ],
                private_mb=private_mb,
                shared_mb=0.0,
            )
            run = CollocationRuntime(cfg, rng=1).run(n_queries=800)
            return np.array(
                [s.response_times_norm.mean() for s in run.services]
            )

        ucp = mean_rt(mbs)
        equal = mean_rt([6.0, 6.0])
        assert ucp[0] < equal[0]  # redis strictly faster under UCP
