"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestInfoCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "redis" in out and "spkmeans" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "e5-2683" in out and "platinum-8275-s0" in out


class TestSimulate:
    def test_basic_run(self, capsys):
        rc = main(
            [
                "simulate",
                "--pair", "jacobi", "bfs",
                "--timeouts", "1.0", "1.5",
                "--queries", "200",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "jacobi" in out and "p95" in out and "EA" in out

    def test_inf_timeout(self, capsys):
        rc = main(
            [
                "simulate",
                "--pair", "jacobi", "bfs",
                "--timeouts", "inf", "never",
                "--queries", "150",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # Boost never fires.
        assert "0.000" in out

    def test_timeout_count_mismatch(self, capsys):
        rc = main(
            ["simulate", "--pair", "jacobi", "bfs", "--timeouts", "1.0",
             "--queries", "100"]
        )
        assert rc == 2
        assert "one timeout per workload" in capsys.readouterr().err

    def test_unknown_workload(self, capsys):
        rc = main(["simulate", "--pair", "mysql", "bfs", "--queries", "100"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_machine(self, capsys):
        rc = main(
            ["simulate", "--pair", "jacobi", "bfs", "--machine", "epyc",
             "--queries", "100"]
        )
        assert rc == 2


class TestProfile:
    def test_writes_loadable_dataset(self, tmp_path, capsys):
        from repro.core import load_dataset

        out = tmp_path / "prof.npz"
        rc = main(
            [
                "profile",
                "--pair", "redis", "knn",
                "--conditions", "2",
                "--queries", "200",
                "--out", str(out),
            ]
        )
        assert rc == 0
        ds = load_dataset(out)
        assert len(ds) > 0
        assert ds.traces.shape[1] == 58
        assert len(ds.conditions()) == 2


class TestPolicy:
    def test_recommends_timeouts(self, capsys):
        rc = main(
            [
                "policy",
                "--pair", "redis", "knn",
                "--conditions", "4",
                "--queries", "250",
                "--learner", "random_forest",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended timeouts" in out

    def test_verify_flag(self, capsys):
        rc = main(
            [
                "policy",
                "--pair", "redis", "knn",
                "--conditions", "4",
                "--queries", "250",
                "--learner", "linear",
                "--verify",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Verification on the testbed" in out
