"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestInfoCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "redis" in out and "spkmeans" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "e5-2683" in out and "platinum-8275-s0" in out


class TestSimulate:
    def test_basic_run(self, capsys):
        rc = main(
            [
                "simulate",
                "--pair", "jacobi", "bfs",
                "--timeouts", "1.0", "1.5",
                "--queries", "200",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "jacobi" in out and "p95" in out and "EA" in out

    def test_inf_timeout(self, capsys):
        rc = main(
            [
                "simulate",
                "--pair", "jacobi", "bfs",
                "--timeouts", "inf", "never",
                "--queries", "150",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # Boost never fires.
        assert "0.000" in out

    def test_timeout_count_mismatch(self, capsys):
        rc = main(
            ["simulate", "--pair", "jacobi", "bfs", "--timeouts", "1.0",
             "--queries", "100"]
        )
        assert rc == 2
        assert "one timeout per workload" in capsys.readouterr().err

    def test_unknown_workload(self, capsys):
        rc = main(["simulate", "--pair", "mysql", "bfs", "--queries", "100"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_machine(self, capsys):
        rc = main(
            ["simulate", "--pair", "jacobi", "bfs", "--machine", "epyc",
             "--queries", "100"]
        )
        assert rc == 2


class TestProfile:
    def test_writes_loadable_dataset(self, tmp_path, capsys):
        from repro.core import load_dataset

        out = tmp_path / "prof.npz"
        rc = main(
            [
                "profile",
                "--pair", "redis", "knn",
                "--conditions", "2",
                "--queries", "200",
                "--out", str(out),
            ]
        )
        assert rc == 0
        ds = load_dataset(out)
        assert len(ds) > 0
        assert ds.traces.shape[1] == 58
        assert len(ds.conditions()) == 2


class TestPolicy:
    def test_recommends_timeouts(self, capsys):
        rc = main(
            [
                "policy",
                "--pair", "redis", "knn",
                "--conditions", "4",
                "--queries", "250",
                "--learner", "random_forest",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended timeouts" in out

    def test_verify_flag(self, capsys):
        rc = main(
            [
                "policy",
                "--pair", "redis", "knn",
                "--conditions", "4",
                "--queries", "250",
                "--learner", "linear",
                "--verify",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Verification on the testbed" in out


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def _reset_telemetry(self):
        from repro import telemetry

        telemetry.disable()
        yield
        telemetry.disable()

    def _simulate(self, tmp_path, *extra):
        return main(
            [
                "simulate",
                "--pair", "jacobi", "bfs",
                "--queries", "120",
                "--trace-dir", str(tmp_path / "t"),
                *extra,
            ]
        )

    def test_flag_writes_valid_manifest(self, tmp_path, capsys):
        from repro.telemetry.exporters import load_manifest

        assert self._simulate(tmp_path, "--telemetry") == 0
        out = capsys.readouterr().out
        assert "telemetry: wrote" in out
        manifest = load_manifest(tmp_path / "t" / "manifest.json")
        assert manifest["command"][0] == "simulate"
        assert manifest["seeds"]["seed"] == 0
        assert [s["name"] for s in manifest["stages"]] == ["repro.simulate"]
        assert (tmp_path / "t" / "spans.jsonl").exists()
        assert "events_file" not in manifest

    def test_trace_queue_events_implies_telemetry(self, tmp_path, capsys):
        from repro.telemetry.exporters import load_manifest

        assert self._simulate(tmp_path, "--trace-queue-events") == 0
        manifest = load_manifest(tmp_path / "t" / "manifest.json")
        assert manifest["events_file"] == "events.jsonl"
        assert (tmp_path / "t" / "events.jsonl").exists()

    def test_global_state_restored_after_run(self, tmp_path, capsys):
        from repro import telemetry

        assert self._simulate(tmp_path, "--telemetry") == 0
        assert not telemetry.enabled()

    def test_output_identical_with_and_without(self, tmp_path, capsys):
        assert self._simulate(tmp_path) == 0
        plain = capsys.readouterr().out
        assert self._simulate(tmp_path, "--telemetry") == 0
        with_tel = capsys.readouterr().out
        assert with_tel.startswith(plain)
        assert "telemetry: wrote" in with_tel


class TestReport:
    def test_renders_manifest_and_events(self, tmp_path, capsys):
        rc = main(
            [
                "simulate",
                "--pair", "jacobi", "bfs",
                "--queries", "120",
                "--trace-queue-events",
                "--trace-dir", str(tmp_path / "t"),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(["report", str(tmp_path / "t" / "manifest.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Run manifest" in out
        assert "repro.simulate" in out
        assert "Queue event trace" in out

    def test_missing_manifest(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "no such manifest" in capsys.readouterr().err

    def test_invalid_manifest_rejected(self, tmp_path, capsys):
        bad = tmp_path / "manifest.json"
        bad.write_text('{"schema_version": 1}')
        rc = main(["report", str(bad)])
        assert rc == 2
        assert "invalid run manifest" in capsys.readouterr().err
