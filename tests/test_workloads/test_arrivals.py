"""Tests for arrival processes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    DeterministicArrivals,
    MarkovModulatedArrivals,
    PoissonArrivals,
    arrivals_for_utilization,
)


class TestPoisson:
    def test_mean_rate(self):
        arr = PoissonArrivals(rate=10.0).sample(20000, rng=0)
        # Mean gap should be ~1/10.
        assert np.diff(arr, prepend=0).mean() == pytest.approx(0.1, rel=0.05)

    def test_monotone_increasing(self):
        arr = PoissonArrivals(rate=3.0).sample(100, rng=1)
        assert np.all(np.diff(arr) > 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)

    def test_reproducible(self):
        a = PoissonArrivals(5.0).sample(50, rng=7)
        b = PoissonArrivals(5.0).sample(50, rng=7)
        assert np.array_equal(a, b)


class TestDeterministic:
    def test_even_spacing(self):
        arr = DeterministicArrivals(rate=4.0).sample(4)
        assert np.allclose(arr, [0.25, 0.5, 0.75, 1.0])


class TestMarkovModulated:
    def test_long_run_rate_preserved(self):
        m = MarkovModulatedArrivals(rate=3.0, burst_factor=4.0, burst_fraction=0.2)
        arr = m.sample(30000, rng=0)
        assert 30000 / arr[-1] == pytest.approx(3.0, rel=0.05)

    def test_burstier_than_poisson(self):
        m = MarkovModulatedArrivals(rate=2.0, burst_factor=5.0, burst_fraction=0.15)
        gaps = np.diff(m.sample(30000, rng=1))
        p_gaps = np.diff(PoissonArrivals(2.0).sample(30000, rng=1))
        cv = gaps.std() / gaps.mean()
        p_cv = p_gaps.std() / p_gaps.mean()
        assert cv > p_cv * 1.3

    def test_monotone(self):
        m = MarkovModulatedArrivals(rate=1.0)
        arr = m.sample(500, rng=2)
        assert np.all(np.diff(arr) > 0)

    def test_calm_factor_balances(self):
        m = MarkovModulatedArrivals(rate=1.0, burst_factor=4.0, burst_fraction=0.2)
        expect = m.burst_fraction * m.burst_factor + (1 - m.burst_fraction) * m.calm_factor
        assert expect == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(rate=0)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(rate=1.0, burst_factor=1.0)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(rate=1.0, burst_fraction=1.0)
        # burst_factor x burst_fraction >= 1 leaves no calm-rate mass.
        bad = MarkovModulatedArrivals(rate=1.0, burst_factor=6.0, burst_fraction=0.2)
        with pytest.raises(ValueError, match="calm rate"):
            bad.sample(10, rng=0)

    def test_reproducible(self):
        m = MarkovModulatedArrivals(rate=1.0)
        assert np.array_equal(m.sample(100, rng=9), m.sample(100, rng=9))


class TestUtilizationHelper:
    def test_rate_formula(self):
        proc = arrivals_for_utilization(0.9, mean_service_time=2.0, n_servers=2)
        assert proc.rate == pytest.approx(0.9)

    def test_deterministic_kind(self):
        proc = arrivals_for_utilization(0.5, 1.0, kind="deterministic")
        assert isinstance(proc, DeterministicArrivals)

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            arrivals_for_utilization(1.0, 1.0)
        with pytest.raises(ValueError):
            arrivals_for_utilization(0.0, 1.0)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            arrivals_for_utilization(0.5, 1.0, kind="bursty")

    @settings(max_examples=30)
    @given(st.floats(0.05, 0.95), st.floats(0.01, 100.0), st.integers(1, 8))
    def test_achieved_utilization(self, rho, s, k):
        proc = arrivals_for_utilization(rho, s, n_servers=k)
        assert proc.rate * s / k == pytest.approx(rho, rel=1e-9)
