"""Tests for the Table 1 suite registry and calibration properties."""

import pytest

from repro.workloads import (
    WORKLOADS,
    all_workloads,
    get_workload,
    table1_rows,
    workload_pairs,
)
from repro.workloads.base import MB


class TestRegistry:
    def test_eight_workloads(self):
        assert len(WORKLOADS) == 8
        assert set(WORKLOADS) == {
            "jacobi",
            "knn",
            "kmeans",
            "spkmeans",
            "spstream",
            "bfs",
            "social",
            "redis",
        }

    def test_get_workload_case_insensitive(self):
        assert get_workload("Redis").name == "redis"

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("mysql")

    def test_pairs_are_ordered_permutations(self):
        pairs = workload_pairs()
        assert len(pairs) == 8 * 7
        names = {(a.name, b.name) for a, b in pairs}
        assert ("jacobi", "bfs") in names and ("bfs", "jacobi") in names
        assert all(a.name != b.name for a, b in pairs)

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 8
        assert all(
            {"wrk_id", "description", "cache_access_pattern"} == set(r) for r in rows
        )


class TestCalibration:
    """The qualitative Table 1 patterns must hold quantitatively."""

    def test_baseline_service_times_from_paper(self):
        assert get_workload("social").baseline_service_time == pytest.approx(7.5e-3)
        assert get_workload("spkmeans").baseline_service_time == pytest.approx(81.0)
        assert get_workload("spstream").baseline_service_time == pytest.approx(1.0)
        assert get_workload("redis").baseline_service_time == pytest.approx(1.0e-3)

    def test_high_reuse_kernels_have_small_footprints(self):
        for name in ("knn", "kmeans"):
            w = get_workload(name)
            assert w.mrc.footprint_bytes <= 2 * MB
            assert w.mrc.m_inf < 0.05  # low cache misses

    def test_streaming_has_high_miss_floor(self):
        assert get_workload("spstream").mrc.m_inf > 0.4

    def test_redis_gains_most_from_extra_cache(self):
        """Section 5.2: 'Redis benefits greatly from additional cache lines'."""
        speedups = {w.name: w.speedup(8 * MB) for w in all_workloads()}
        assert speedups["redis"] == max(speedups.values())

    def test_high_reuse_kernels_have_lowest_baseline_misses(self):
        """Table 1: KNN/Kmeans run at 'low cache misses' — their working
        sets fit in the 2 MB baseline allocation."""
        mrs = {
            w.name: w.mrc.miss_ratio(w.baseline_capacity) for w in all_workloads()
        }
        ranked = sorted(mrs, key=mrs.get)
        assert set(ranked[:2]) == {"knn", "kmeans"}

    def test_streaming_gains_least_from_extra_cache(self):
        """Spstream's compulsory-miss floor means extra ways barely help."""
        speedups = {w.name: w.speedup(8 * MB) for w in all_workloads()}
        assert speedups["spstream"] == min(speedups.values())

    def test_social_has_heavy_tail(self):
        """DAG fanout should make Social's CV the largest in the suite."""
        cvs = {w.name: w.service_cv for w in all_workloads()}
        assert cvs["social"] == max(cvs.values())

    def test_social_process_count(self):
        assert get_workload("social").n_processes == 36

    def test_all_specs_well_formed(self):
        for w in all_workloads():
            assert 0 < w.memory_boundedness <= 1
            assert w.mrc.m_inf <= w.mrc.m0
            assert w.stream_kind in ("zipf", "sequential", "strided", "loop")
