"""Tests for MRC calibration against the set-associative substrate."""

import numpy as np
import pytest

from repro.cache import CacheGeometry
from repro.workloads import get_workload
from repro.workloads.calibrate import (
    calibrate_suite,
    calibrate_workload,
    recalibrated_spec,
)
from repro.workloads.base import MB


class TestCalibration:
    def test_report_fields(self):
        rep = calibrate_workload(get_workload("bfs"), rng=0)
        assert rep.workload == "bfs"
        assert rep.capacities.shape == rep.measured_miss_ratios.shape
        assert 0 <= rep.fitted.m_inf <= rep.fitted.m0 <= 1

    def test_fit_tracks_measurement(self):
        rep = calibrate_workload(get_workload("redis"), rng=1)
        assert rep.max_fit_residual() < 0.15

    def test_high_reuse_vs_streaming_shapes(self):
        """The stream kinds reproduce Table 1's ordering on real cache
        simulation, not just in the declared parameters."""
        loop = calibrate_workload(get_workload("knn"), rng=2)
        stream = calibrate_workload(get_workload("spstream"), rng=2)
        biggest = loop.capacities.max()
        assert loop.fitted.miss_ratio(biggest) < stream.fitted.miss_ratio(biggest)
        # Streaming barely benefits from capacity.
        drop_stream = stream.measured_miss_ratios[0] - stream.measured_miss_ratios[-1]
        drop_loop = loop.measured_miss_ratios[0] - loop.measured_miss_ratios[-1]
        assert drop_loop > drop_stream

    def test_suite_calibration(self):
        reps = calibrate_suite(
            [get_workload("knn"), get_workload("bfs")], rng=3
        )
        assert set(reps) == {"knn", "bfs"}

    def test_custom_geometry(self):
        g = CacheGeometry(n_sets=32, n_ways=8)
        rep = calibrate_workload(get_workload("bfs"), geometry=g, rng=4)
        assert rep.capacities.max() == g.size_bytes


class TestRecalibration:
    def test_footprint_rescaled(self):
        spec = get_workload("bfs")
        rep = calibrate_workload(spec, rng=5)
        new = recalibrated_spec(spec, rep, scale_to=10 * MB)
        factor = 10 * MB / rep.capacities.max()
        assert new.mrc.footprint_bytes == pytest.approx(
            rep.fitted.footprint_bytes * factor
        )
        assert new.mrc.m0 == rep.fitted.m0
        # Original spec untouched.
        assert spec.mrc is not new.mrc

    def test_recalibrated_spec_usable(self):
        spec = get_workload("knn")
        rep = calibrate_workload(spec, rng=6)
        new = recalibrated_spec(spec, rep, scale_to=4 * MB)
        assert new.service_time(8 * MB) <= new.service_time(0.5 * MB)

    def test_bad_scale(self):
        spec = get_workload("knn")
        rep = calibrate_workload(spec, rng=7)
        with pytest.raises(ValueError):
            recalibrated_spec(spec, rep, scale_to=0)
