"""Tests for WorkloadSpec service-time and demand models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import MissRatioCurve
from repro.workloads import WorkloadSpec
from repro.workloads.base import MB


def make_spec(**overrides):
    defaults = dict(
        name="w",
        description="test",
        cache_pattern="test",
        mrc=MissRatioCurve(m0=0.6, m_inf=0.1, footprint_bytes=4 * MB),
        baseline_service_time=1.0,
        memory_boundedness=0.5,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestServiceTime:
    def test_baseline_capacity_gives_baseline_time(self):
        s = make_spec()
        assert s.service_time(s.baseline_capacity) == pytest.approx(1.0)

    def test_more_cache_is_faster(self):
        s = make_spec()
        assert s.service_time(8 * MB) < s.service_time(2 * MB)

    def test_less_cache_is_slower(self):
        s = make_spec()
        assert s.service_time(0.5 * MB) > s.service_time(2 * MB)

    def test_compute_bound_insensitive(self):
        s = make_spec(memory_boundedness=0.0)
        assert s.service_time(16 * MB) == pytest.approx(1.0)

    def test_speedup_consistent(self):
        s = make_spec()
        assert s.speedup(8 * MB) == pytest.approx(
            1.0 / s.service_time(8 * MB), rel=1e-9
        )

    def test_vectorized_capacity(self):
        s = make_spec()
        caps = np.array([1, 2, 4, 8]) * MB
        times = s.service_time(caps)
        assert times.shape == (4,)
        assert np.all(np.diff(times) <= 0)

    @settings(max_examples=40)
    @given(st.floats(0.0, 1.0), st.floats(0.1 * MB, 40 * MB))
    def test_service_time_positive_and_bounded(self, beta, cap):
        s = make_spec(memory_boundedness=beta)
        t = s.service_time(cap)
        assert t > 0
        # With the miss floor > 0, slowdown/speedup are bounded by the
        # ratio of m0 (resp. m_inf) to baseline miss ratio.
        m_base = s.mrc.miss_ratio(s.baseline_capacity)
        bound_hi = (1 - beta) + beta * s.mrc.m0 / m_base
        bound_lo = (1 - beta) + beta * s.mrc.m_inf / m_base
        assert bound_lo - 1e-9 <= t <= bound_hi + 1e-9


class TestFillIntensity:
    def test_scales_with_miss_ratio(self):
        s = make_spec(access_intensity=1e6)
        assert s.fill_intensity(1 * MB) > s.fill_intensity(8 * MB)

    def test_magnitude(self):
        s = make_spec(access_intensity=1e6)
        m = s.mrc.miss_ratio(2 * MB)
        assert s.fill_intensity(2 * MB) == pytest.approx(1e6 * m)


class TestDemands:
    def test_mean_one(self):
        s = make_spec(service_cv=0.4)
        d = s.sample_demands(20000, rng=1)
        assert d.mean() == pytest.approx(1.0, rel=0.05)

    def test_cv_matches(self):
        s = make_spec(service_cv=0.5)
        d = s.sample_demands(40000, rng=2)
        assert d.std() / d.mean() == pytest.approx(0.5, rel=0.1)

    def test_zero_cv_deterministic(self):
        s = make_spec(service_cv=0.0)
        assert np.all(s.sample_demands(10, rng=3) == 1.0)

    def test_reproducible(self):
        s = make_spec()
        assert np.array_equal(s.sample_demands(50, rng=7), s.sample_demands(50, rng=7))


class TestValidation:
    def test_bad_service_time(self):
        with pytest.raises(ValueError):
            make_spec(baseline_service_time=0)

    def test_bad_boundedness(self):
        with pytest.raises(ValueError):
            make_spec(memory_boundedness=1.5)

    def test_bad_cv(self):
        with pytest.raises(ValueError):
            make_spec(service_cv=-0.1)

    def test_bad_intensity(self):
        with pytest.raises(ValueError):
            make_spec(access_intensity=0)
