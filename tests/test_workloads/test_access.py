"""Tests for synthetic access-stream generators."""

import numpy as np
import pytest

from repro.cache import CacheGeometry, SetAssociativeCache
from repro.workloads import (
    loop_stream,
    sequential_stream,
    strided_stream,
    workload_stream,
    zipf_stream,
)


class TestGenerators:
    def test_all_line_aligned_and_bounded(self):
        for kind in ("zipf", "sequential", "strided", "loop"):
            s = workload_stream(kind, 500, n_lines=128, rng=0)
            assert s.shape == (500,)
            assert np.all(s % 64 == 0)
            assert np.all((s >= 0) & (s < 128 * 64))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown stream kind"):
            workload_stream("random-walk", 10, 10)

    def test_sequential_no_immediate_reuse(self):
        s = sequential_stream(100, n_lines=128)
        assert len(np.unique(s)) == 100

    def test_sequential_wraps(self):
        s = sequential_stream(10, n_lines=4)
        assert list(s[:5] // 64) == [0, 1, 2, 3, 0]

    def test_loop_concentrates_on_hot_set(self):
        s = loop_stream(5000, n_lines=1000, hot_fraction=0.05, rng=1)
        hot = s < 50 * 64
        assert hot.mean() > 0.8

    def test_zipf_skew_increases_reuse(self):
        low = zipf_stream(5000, 1000, skew=1.1, rng=2)
        high = zipf_stream(5000, 1000, skew=2.5, rng=2)
        assert len(np.unique(high)) < len(np.unique(low))

    def test_strided_pattern(self):
        s = strided_stream(6, n_lines=16, stride=4)
        assert list(s // 64) == [0, 4, 8, 12, 0, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_stream(10, 0)
        with pytest.raises(ValueError):
            strided_stream(10, 16, stride=0)
        with pytest.raises(ValueError):
            loop_stream(10, 16, hot_fraction=0)

    def test_reproducible(self):
        a = zipf_stream(100, 64, rng=42)
        b = zipf_stream(100, 64, rng=42)
        assert np.array_equal(a, b)


class TestStreamCacheBehaviour:
    """The streams must induce their advertised cache behaviour."""

    def _miss_ratio(self, stream, n_ways=4):
        cache = SetAssociativeCache(CacheGeometry(n_sets=16, n_ways=n_ways))
        warm = len(stream) // 4
        cache.access(stream[:warm])
        return cache.access(stream[warm:]).miss_ratio

    def test_loop_hits_more_than_sequential(self):
        n, lines = 4000, 512
        loop_mr = self._miss_ratio(loop_stream(n, lines, rng=0))
        seq_mr = self._miss_ratio(sequential_stream(n, lines))
        assert loop_mr < seq_mr

    def test_sequential_thrashes(self):
        # 512 lines >> 64-line cache and no reuse within the window.
        mr = self._miss_ratio(sequential_stream(4000, 512))
        assert mr > 0.9
