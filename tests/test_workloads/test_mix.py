"""Tests for query mixes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    QueryClass,
    QueryMix,
    SPARK_TASK_MIX,
    YCSB_SESSION_MIX,
    get_workload,
)


def simple_mix(cv=0.0):
    return QueryMix(
        classes=(
            QueryClass("fast", weight=3.0, demand_scale=1.0, cv=cv),
            QueryClass("slow", weight=1.0, demand_scale=5.0, cv=cv),
        )
    )


class TestQueryMix:
    def test_weights_normalized(self):
        m = simple_mix()
        assert np.allclose(m.weights, [0.75, 0.25])

    def test_overall_mean_one(self):
        m = simple_mix(cv=0.3)
        d, _ = m.sample_demands(60000, rng=0)
        assert d.mean() == pytest.approx(1.0, rel=0.03)

    def test_class_separation(self):
        m = simple_mix(cv=0.0)
        d, labels = m.sample_demands(1000, rng=1)
        norm = m.mean_scale
        assert np.allclose(d[labels == 0], 1.0 / norm)
        assert np.allclose(d[labels == 1], 5.0 / norm)

    def test_effective_cv_matches_samples(self):
        m = simple_mix(cv=0.4)
        d, _ = m.sample_demands(120000, rng=2)
        assert d.std() / d.mean() == pytest.approx(m.effective_cv(), rel=0.05)

    def test_label_frequencies(self):
        m = simple_mix()
        _, labels = m.sample_demands(40000, rng=3)
        assert np.mean(labels == 0) == pytest.approx(0.75, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryMix(classes=())
        with pytest.raises(ValueError):
            QueryMix(
                classes=(
                    QueryClass("a", 1.0, 1.0),
                    QueryClass("a", 1.0, 2.0),
                )
            )
        with pytest.raises(ValueError):
            QueryClass("a", weight=0.0, demand_scale=1.0)
        with pytest.raises(ValueError):
            QueryClass("a", weight=1.0, demand_scale=1.0, cv=-1)

    @settings(max_examples=25)
    @given(st.floats(0.1, 5.0), st.floats(0.1, 5.0), st.floats(0.1, 0.9))
    def test_mean_one_property(self, s1, s2, w):
        m = QueryMix(
            classes=(
                QueryClass("a", weight=w, demand_scale=s1, cv=0.2),
                QueryClass("b", weight=1 - w, demand_scale=s2, cv=0.2),
            )
        )
        d, _ = m.sample_demands(30000, rng=5)
        assert d.mean() == pytest.approx(1.0, rel=0.1)


class TestBuiltinMixes:
    def test_ycsb_mostly_reads(self):
        _, labels = YCSB_SESSION_MIX.sample_demands(10000, rng=6)
        assert np.mean(labels == 0) > 0.9

    def test_spark_reduce_heavier(self):
        cls = SPARK_TASK_MIX.classes
        assert cls[1].demand_scale > cls[0].demand_scale


class TestWorkloadIntegration:
    def test_with_mix_updates_cv(self):
        redis = get_workload("redis")
        mixed = redis.with_mix(YCSB_SESSION_MIX)
        assert mixed.query_mix is YCSB_SESSION_MIX
        assert mixed.service_cv == pytest.approx(YCSB_SESSION_MIX.effective_cv())
        assert redis.query_mix is None  # original untouched

    def test_mixed_demands_mean_one(self):
        mixed = get_workload("redis").with_mix(YCSB_SESSION_MIX)
        d = mixed.sample_demands(50000, rng=7)
        assert d.mean() == pytest.approx(1.0, rel=0.03)

    def test_mixed_spec_runs_in_testbed(self):
        from repro.testbed import (
            CollocatedService,
            CollocationConfig,
            CollocationRuntime,
            default_machine,
        )

        mixed = get_workload("redis").with_mix(YCSB_SESSION_MIX)
        cfg = CollocationConfig(
            machine=default_machine(),
            services=[
                CollocatedService(mixed, timeout=1.0),
                CollocatedService(get_workload("knn"), timeout=1.0),
            ],
        )
        res = CollocationRuntime(cfg, rng=0).run(n_queries=300)
        assert res.service("redis").n_queries > 0
