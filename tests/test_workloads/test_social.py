"""Tests for the Social microservice DAG."""

import networkx as nx
import numpy as np
import pytest

from repro.workloads import SocialGraph, build_social_workload
from repro.workloads.social import N_CONTAINERS, N_MICROSERVICES


class TestGraphStructure:
    def test_service_and_container_counts(self):
        g = SocialGraph(rng=0)
        assert g.n_services == N_MICROSERVICES == 36
        assert g.n_containers <= N_CONTAINERS == 30

    def test_is_dag(self):
        g = SocialGraph(rng=1)
        assert nx.is_directed_acyclic_graph(g.graph)

    def test_every_non_frontend_service_reachable(self):
        g = SocialGraph(rng=2)
        non_entry = [n for n in g.graph.nodes if g.graph.in_degree(n) == 0]
        # Only frontend nodes may lack callers.
        assert all(n.startswith("frontend") for n in non_entry)

    def test_latency_shares_sum_to_one(self):
        g = SocialGraph(rng=3)
        total = sum(d["latency_share"] for _, d in g.graph.nodes(data=True))
        assert total == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        g1, g2 = SocialGraph(rng=9), SocialGraph(rng=9)
        assert set(g1.graph.edges) == set(g2.graph.edges)


class TestLatencySampling:
    def test_positive_and_shaped(self):
        g = SocialGraph(rng=0)
        lat = g.sample_latency(500, mean_total=7.5e-3, rng=1)
        assert lat.shape == (500,)
        assert np.all(lat > 0)

    def test_mean_scales_with_budget(self):
        g = SocialGraph(rng=0)
        l1 = g.sample_latency(3000, mean_total=1.0, rng=2).mean()
        l2 = g.sample_latency(3000, mean_total=2.0, rng=2).mean()
        assert l2 == pytest.approx(2 * l1, rel=0.05)

    def test_right_skewed(self):
        g = SocialGraph(rng=0)
        lat = g.sample_latency(5000, rng=3)
        assert np.mean(lat) > np.median(lat)  # heavy right tail

    def test_cv_nontrivial(self):
        g = SocialGraph(rng=0)
        assert g.empirical_cv(rng=4) > 0.15


class TestWorkloadFactory:
    def test_build_social_workload(self):
        w = build_social_workload(rng=5)
        assert w.name == "social"
        assert w.baseline_service_time == pytest.approx(7.5e-3)
        assert w.n_processes == 36
        assert w.service_cv > 0.15
