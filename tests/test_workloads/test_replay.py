"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import ArrivalTrace, get_workload, replay_through_queue


@pytest.fixture(scope="module")
def recorded():
    cfg = CollocationConfig(
        machine=default_machine(),
        services=[
            CollocatedService(get_workload("redis"), timeout=1.0, utilization=0.9),
            CollocatedService(get_workload("knn"), timeout=1.0, utilization=0.9),
        ],
    )
    res = CollocationRuntime(cfg, rng=0).run(n_queries=800)
    return ArrivalTrace.from_service_result(res.service("redis"))


class TestArrivalTrace:
    def test_recording(self, recorded):
        assert recorded.service_name == "redis"
        assert recorded.n_queries > 0
        assert recorded.mean_rate > 0
        assert np.all(np.diff(recorded.arrival_times) >= 0)

    def test_save_load_roundtrip(self, recorded, tmp_path):
        path = tmp_path / "trace.npz"
        recorded.save(path)
        loaded = ArrivalTrace.load(path)
        assert loaded.service_name == "redis"
        assert np.array_equal(loaded.arrival_times, recorded.arrival_times)
        assert np.array_equal(loaded.demands, recorded.demands)

    def test_scaling_changes_rate(self, recorded):
        fast = recorded.scaled(2.0)
        assert fast.mean_rate == pytest.approx(2 * recorded.mean_rate, rel=1e-6)
        assert np.array_equal(fast.demands, recorded.demands)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([2.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([1.0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([1.0]), np.array([1.0])).scaled(0)


class TestReplay:
    def test_policy_counterfactual(self, recorded):
        """Replaying the same traffic with a boost policy must help."""
        base = replay_through_queue(
            recorded, timeout=np.inf, boost_speedup=1.0
        )
        boosted = replay_through_queue(
            recorded, timeout=0.5, boost_speedup=1.8
        )
        assert boosted.response_times.mean() < base.response_times.mean()

    def test_replay_is_deterministic(self, recorded):
        a = replay_through_queue(recorded, timeout=1.0, boost_speedup=1.5)
        b = replay_through_queue(recorded, timeout=1.0, boost_speedup=1.5)
        assert np.array_equal(a.completion_times, b.completion_times)

    def test_scaled_replay_increases_load(self, recorded):
        calm = replay_through_queue(recorded, np.inf, 1.0)
        rushed = replay_through_queue(recorded.scaled(1.3), np.inf, 1.0)
        assert rushed.response_times.mean() > calm.response_times.mean()
