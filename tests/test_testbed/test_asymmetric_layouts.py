"""Tests for per-service private reservations (asymmetric layouts)."""

import numpy as np
import pytest

from repro.cache import WayMask
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import get_workload


def make_config(private_mb, shared_mb=2.0, timeouts=(1.0, 1.0)):
    return CollocationConfig(
        machine=default_machine(),
        services=[
            CollocatedService(get_workload(n), timeout=t, utilization=0.8)
            for n, t in zip(("redis", "knn"), timeouts)
        ],
        private_mb=private_mb,
        shared_mb=shared_mb,
    )


class TestAsymmetricConfig:
    def test_uniform_scalar_still_works(self):
        cfg = make_config(2.0)
        assert cfg.is_uniform
        assert cfg.private_ways == 1
        assert cfg.private_bytes == pytest.approx(2 * 1024 * 1024)

    def test_per_service_sizes(self):
        cfg = make_config([4.0, 2.0])
        assert not cfg.is_uniform
        assert cfg.private_ways_list == [2, 1]
        assert np.allclose(
            cfg.private_bytes_per_service, [4 * 1024 * 1024, 2 * 1024 * 1024]
        )

    def test_uniform_accessors_guarded(self):
        cfg = make_config([4.0, 2.0])
        with pytest.raises(ValueError, match="per-service"):
            _ = cfg.private_ways

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            make_config([2.0, 2.0, 2.0])

    def test_way_budget_checked(self):
        with pytest.raises(ValueError, match="ways"):
            make_config([30.0, 30.0])

    def test_zero_shared_pure_partition(self):
        cfg = make_config([4.0, 2.0], shared_mb=0.0, timeouts=(np.inf, np.inf))
        pols = cfg.policies()
        # Boost == default: no short-term region at all.
        assert pols[0].default == pols[0].boost == WayMask(0, 2)
        assert pols[1].default == pols[1].boost == WayMask(2, 1)
        assert pols[0].gross_increase == 1.0

    def test_asymmetric_masks_contiguous_chain(self):
        cfg = make_config([4.0, 2.0], shared_mb=2.0)
        pols = cfg.policies()
        assert pols[0].default == WayMask(0, 2)
        assert pols[0].boost == WayMask(0, 3)
        assert pols[1].default == WayMask(3, 1)
        assert pols[1].boost == WayMask(2, 2)
        cfg.validate_conjectures()


class TestAsymmetricRuntime:
    def test_bigger_private_faster_baseline(self):
        cfg = make_config([6.0, 2.0], shared_mb=0.0, timeouts=(np.inf, np.inf))
        run = CollocationRuntime(cfg, rng=0).run(n_queries=600)
        redis = run.service("redis")
        # With 6 MB private, redis executes faster than its 2 MB baseline.
        assert redis.service_durations_norm.mean() < redis.demands.mean()
        assert redis.base_rate > 1.0

    def test_base_rate_one_for_baseline_private(self):
        cfg = make_config(2.0, timeouts=(np.inf, np.inf))
        run = CollocationRuntime(cfg, rng=1).run(n_queries=300)
        for s in run.services:
            assert s.base_rate == pytest.approx(1.0)

    def test_ea_accounts_for_base_rate(self):
        """With private above baseline, EA still lands in [1/gross, 1]."""
        cfg = make_config([4.0, 4.0], shared_mb=4.0, timeouts=(0.3, 0.3))
        run = CollocationRuntime(cfg, rng=2).run(n_queries=800)
        for s in run.services:
            ea = s.effective_allocation()
            assert 1.0 / s.gross_increase - 1e-9 <= ea <= 1.0 + 1e-9
