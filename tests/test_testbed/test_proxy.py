"""Tests for the proxy service state machine."""

import pytest

from repro.testbed import ProxyService
from repro.testbed.proxy import QueryRecord


def q(qid=0, arrival=0.0, work=1.0):
    return QueryRecord(qid=qid, arrival=arrival, work=work)


class TestQueueing:
    def test_fcfs_dispatch(self):
        p = ProxyService("s", n_servers=1, warning_delay=5.0)
        a, b = q(0), q(1)
        p.enqueue(a)
        p.enqueue(b)
        assert p.next_dispatch() is a
        p.start_query(a, now=0.0)
        assert p.next_dispatch() is None  # server busy
        p.finish_query(a, now=1.0)
        assert p.next_dispatch() is b

    def test_multiple_servers(self):
        p = ProxyService("s", n_servers=2, warning_delay=5.0)
        for i in range(3):
            p.enqueue(q(i))
        p.start_query(p.next_dispatch(), 0.0)
        p.start_query(p.next_dispatch(), 0.0)
        assert p.servers_free == 0
        assert p.next_dispatch() is None
        assert p.queue_length == 1

    def test_completed_recorded(self):
        p = ProxyService("s", n_servers=1, warning_delay=1.0)
        a = q()
        p.enqueue(a)
        p.start_query(p.next_dispatch(), 0.0)
        p.finish_query(a, 2.0)
        assert a.completed and a.completion == 2.0
        assert p.completed == [a]


class TestBoostStateMachine:
    def test_not_boosted_initially(self):
        assert not ProxyService("s", 1, 1.0).boosted

    def test_mark_overdue_flips_once(self):
        p = ProxyService("s", 2, 1.0)
        a, b = q(0), q(1)
        p.enqueue(a)
        p.enqueue(b)
        assert p.mark_overdue(a) is True  # flipped on
        assert p.boosted
        assert p.mark_overdue(b) is False  # already boosted
        assert p.mark_overdue(a) is False  # idempotent per query

    def test_boost_clears_when_all_overdue_complete(self):
        p = ProxyService("s", 2, 1.0)
        a, b = q(0), q(1)
        for x in (a, b):
            p.enqueue(x)
            p.start_query(p.next_dispatch(), 0.0)
        p.mark_overdue(a)
        p.mark_overdue(b)
        p.finish_query(a, 1.0)
        assert p.boosted  # b still overdue
        p.finish_query(b, 2.0)
        assert not p.boosted

    def test_overdue_on_completed_query_ignored(self):
        p = ProxyService("s", 1, 1.0)
        a = q()
        p.enqueue(a)
        p.start_query(p.next_dispatch(), 0.0)
        p.finish_query(a, 0.5)
        assert p.mark_overdue(a) is False
        assert not p.boosted

    def test_warning_time(self):
        p = ProxyService("s", 1, warning_delay=1.5)
        assert p.warning_time(q(arrival=2.0)) == 3.5


class TestValidation:
    def test_bad_servers(self):
        with pytest.raises(ValueError):
            ProxyService("s", 0, 1.0)

    def test_bad_warning(self):
        with pytest.raises(ValueError):
            ProxyService("s", 1, -1.0)
