"""Tests for the chain collocation layout."""

import numpy as np
import pytest

from repro.cache import WayMask
from repro.testbed import CollocatedService, CollocationConfig, default_machine, get_machine
from repro.workloads import get_workload


def make_config(names=("jacobi", "bfs"), timeouts=None, machine=None, **kw):
    timeouts = timeouts or [1.5] * len(names)
    return CollocationConfig(
        machine=machine or default_machine(),
        services=[
            CollocatedService(get_workload(n), timeout=t)
            for n, t in zip(names, timeouts)
        ],
        **kw,
    )


class TestCollocatedService:
    def test_validation(self):
        with pytest.raises(ValueError):
            CollocatedService(get_workload("bfs"), timeout=-1)
        with pytest.raises(ValueError):
            CollocatedService(get_workload("bfs"), timeout=1.0, utilization=1.5)

    def test_infinite_timeout_allowed(self):
        svc = CollocatedService(get_workload("bfs"), timeout=np.inf)
        assert np.isinf(svc.timeout)


class TestLayout:
    def test_paper_example_way_indices(self):
        """Section 5's example: pairwise private + 2 shared ways between."""
        cfg = make_config(("jacobi", "bfs"))
        pols = cfg.policies()
        # 2 MB = 1 way on the E5-2683; jacobi gets way 0, shared way 1,
        # bfs way 2.
        assert pols[0].default == WayMask(0, 1)
        assert pols[0].boost == WayMask(0, 2)
        assert pols[1].default == WayMask(2, 1)
        assert pols[1].boost == WayMask(1, 2)

    def test_three_service_chain(self):
        cfg = make_config(("jacobi", "bfs", "redis"), timeouts=[1.0, 1.0, 1.0])
        pols = cfg.policies()
        # Middle service may share on both sides; masks stay contiguous.
        assert pols[1].boost.covers(pols[1].default)
        cfg.validate_conjectures()

    def test_conjectures_validated(self):
        make_config().validate_conjectures()

    def test_gross_increase(self):
        cfg = make_config()
        assert cfg.gross_increase(0) == pytest.approx(2.0)

    def test_shared_regions(self):
        cfg = make_config(("jacobi", "bfs", "redis"))
        assert cfg.shared_regions() == [(0, 1), (1, 2)]

    def test_private_and_shared_bytes(self):
        cfg = make_config(private_mb=2.0, shared_mb=2.0)
        assert cfg.private_bytes == pytest.approx(2 * 1024 * 1024)
        assert cfg.shared_bytes == pytest.approx(2 * 1024 * 1024)

    def test_too_many_services_for_cores(self):
        names = ["jacobi"] * 9  # e5-2683 hosts at most 8 two-core services
        with pytest.raises(ValueError, match="cores"):
            make_config(tuple(names))

    def test_too_many_ways_needed(self):
        with pytest.raises(ValueError, match="ways"):
            make_config(("jacobi", "bfs"), machine=get_machine("e5-2620"),
                        private_mb=8.0, shared_mb=8.0)

    def test_controller_registration(self):
        ctl = make_config().controller()
        assert set(ctl.workloads) == {"jacobi", "bfs"}

    def test_single_service_no_sharing(self):
        cfg = make_config(("redis",), timeouts=[1.0])
        assert cfg.shared_regions() == []
        assert cfg.gross_increase(0) == 1.0
