"""Tests for the collocated runtime — the ground-truth simulator."""

import math

import numpy as np
import pytest

from repro.cache import SharedWayContention
from repro.queueing import mmk_mean_response
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import get_workload


def run_pair(
    names=("jacobi", "bfs"),
    timeouts=(1.5, 1.5),
    utils=(0.9, 0.9),
    n_queries=800,
    rng=0,
    **cfg_kw,
):
    cfg = CollocationConfig(
        machine=default_machine(),
        services=[
            CollocatedService(get_workload(n), timeout=t, utilization=u)
            for n, t, u in zip(names, timeouts, utils)
        ],
        **cfg_kw,
    )
    return CollocationRuntime(cfg, rng=rng).run(n_queries=n_queries)


class TestBasicInvariants:
    def test_all_queries_complete(self):
        res = run_pair(n_queries=300)
        for s in res.services:
            assert s.n_queries == 270  # 10% warmup dropped

    def test_causality(self):
        res = run_pair(n_queries=400)
        for s in res.services:
            assert np.all(s.start_times >= s.arrival_times - 1e-9)
            assert np.all(s.completion_times >= s.start_times)

    def test_server_limit_respected(self):
        res = run_pair(n_queries=400)
        k = default_machine().cores_per_service
        for s in res.services:
            probe_times = s.start_times[::25]
            for t in probe_times:
                busy = np.sum((s.start_times <= t) & (s.completion_times > t))
                assert busy <= k

    def test_reproducible(self):
        r1 = run_pair(n_queries=200, rng=5)
        r2 = run_pair(n_queries=200, rng=5)
        for a, b in zip(r1.services, r2.services):
            assert np.array_equal(a.completion_times, b.completion_times)

    def test_different_seeds_differ(self):
        r1 = run_pair(n_queries=200, rng=1)
        r2 = run_pair(n_queries=200, rng=2)
        assert not np.array_equal(
            r1.services[0].completion_times, r2.services[0].completion_times
        )

    def test_service_lookup(self):
        res = run_pair(n_queries=100)
        assert res.service("jacobi").name == "jacobi"
        with pytest.raises(KeyError):
            res.service("nope")


class TestNoStapBaseline:
    def test_matches_mmk_when_timeout_infinite(self):
        """With STA disabled and CV~service the run is close to M/G/2; for
        a deterministic-ish demand workload check against M/M/2 bounds."""
        res = run_pair(
            names=("jacobi", "bfs"),
            timeouts=(math.inf, math.inf),
            utils=(0.7, 0.7),
            n_queries=6000,
            rng=3,
        )
        jac = res.service("jacobi")
        # Arrival rate = util * k / 1.0 on the normalized clock.
        approx = mmk_mean_response(0.7 * 2, 1.0, 2)
        # M/G/2 with CV<1 is a bit faster than M/M/2; allow a band.
        assert 0.6 * approx < jac.response_times_norm.mean() < 1.15 * approx

    def test_no_boost_when_disabled(self):
        res = run_pair(timeouts=(math.inf, math.inf), n_queries=300)
        for s in res.services:
            assert s.boost_fraction == 0.0
            assert np.all(s.boosted_time == 0.0)

    def test_ea_is_inverse_gross_when_never_triggered(self):
        res = run_pair(timeouts=(math.inf, math.inf), n_queries=500)
        for s in res.services:
            assert s.effective_allocation() == pytest.approx(
                1.0 / s.gross_increase, rel=0.05
            )


class TestStapEffects:
    def test_sta_speeds_up_p95(self):
        base = run_pair(timeouts=(math.inf, math.inf), n_queries=2500, rng=7)
        sta = run_pair(timeouts=(1.5, 1.5), n_queries=2500, rng=7)
        for name in ("jacobi", "bfs"):
            p95_base = np.percentile(base.service(name).response_times_norm, 95)
            p95_sta = np.percentile(sta.service(name).response_times_norm, 95)
            assert p95_sta < p95_base

    def test_tighter_timeout_boosts_more(self):
        tight = run_pair(timeouts=(0.5, 0.5), n_queries=1200, rng=8)
        loose = run_pair(timeouts=(4.0, 4.0), n_queries=1200, rng=8)
        for name in ("jacobi", "bfs"):
            assert (
                tight.service(name).boost_fraction
                > loose.service(name).boost_fraction
            )

    def test_ea_below_one_under_contention(self):
        """Both services boosting concurrently must split shared ways, so
        EA sits below the no-contention ideal of 1."""
        res = run_pair(
            names=("redis", "spstream"), timeouts=(0.2, 0.2), utils=(0.93, 0.93),
            n_queries=2000, rng=9
        )
        for s in res.services:
            assert s.effective_allocation() < 1.0

    def test_contention_lowers_partner_ea(self):
        """A cache-hungry neighbor boosting aggressively should reduce the
        partner's effective allocation vs a quiet neighbor."""
        quiet = run_pair(
            names=("redis", "knn"), timeouts=(1.0, math.inf), n_queries=2000, rng=10
        )
        noisy = run_pair(
            names=("redis", "spstream"), timeouts=(1.0, 0.1),
            utils=(0.9, 0.95), n_queries=2000, rng=10
        )
        assert (
            noisy.service("redis").effective_allocation()
            < quiet.service("redis").effective_allocation()
        )

    def test_overdue_implies_boosted_time(self):
        res = run_pair(timeouts=(1.0, 1.0), n_queries=800, rng=11)
        s = res.services[0]
        started_overdue = s.overdue & (s.boosted_time > 0)
        # Queries marked overdue while in service must have boosted time;
        # those marked while queued may complete quickly after.
        assert started_overdue.sum() > 0


class TestSegments:
    def test_segments_time_ordered(self):
        res = run_pair(n_queries=300)
        for s in res.services:
            times = [seg[0] for seg in s.segments]
            assert all(t1 <= t2 for t1, t2 in zip(times, times[1:]))

    def test_capacity_bounds(self):
        res = run_pair(n_queries=300)
        cfg = res.config
        lo = cfg.private_bytes
        hi = cfg.private_bytes + 2 * cfg.shared_bytes
        for s in res.services:
            for _, cap, _, _, _ in s.segments:
                assert lo - 1e-6 <= cap <= hi + 1e-6

    def test_boost_segments_present_when_sta_active(self):
        res = run_pair(timeouts=(0.5, 0.5), n_queries=500, rng=12)
        s = res.services[0]
        assert any(seg[4] for seg in s.segments)

    def test_queue_length_recorded(self):
        res = run_pair(utils=(0.93, 0.93), n_queries=500, rng=13)
        s = res.services[0]
        assert max(seg[3] for seg in s.segments) > 0  # queue built up


class TestWindows:
    def test_window_slices_partition(self):
        res = run_pair(n_queries=400)
        s = res.services[0]
        slices = s.window_slices(5)
        total = sum(sl.stop - sl.start for sl in slices)
        assert total == s.n_queries

    def test_window_view_consistency(self):
        res = run_pair(n_queries=400)
        s = res.services[0]
        w = s.window_view(s.window_slices(4)[1])
        assert w.n_queries == pytest.approx(s.n_queries / 4, abs=1)
        assert w.name == s.name

    def test_bad_window_count(self):
        res = run_pair(n_queries=100)
        with pytest.raises(ValueError):
            res.services[0].window_slices(0)


class TestContentionModes:
    def test_equal_split_changes_outcome(self):
        cfg = CollocationConfig(
            machine=default_machine(),
            services=[
                CollocatedService(get_workload("redis"), timeout=0.3, utilization=0.92),
                CollocatedService(get_workload("knn"), timeout=0.3, utilization=0.92),
            ],
        )
        occ = CollocationRuntime(
            cfg, contention=SharedWayContention("occupancy"), rng=4
        ).run(1500)
        eq = CollocationRuntime(
            cfg, contention=SharedWayContention("equal"), rng=4
        ).run(1500)
        # Redis has much higher fill intensity than KNN, so occupancy mode
        # gives it more shared capacity than the equal split does.
        assert (
            occ.service("redis").effective_allocation()
            > eq.service("redis").effective_allocation()
        )
