"""Tests for the Xeon machine catalogue."""

import pytest

from repro.testbed import MACHINES, XeonSpec, default_machine, get_machine
from repro.testbed.machine import MB


class TestCatalogue:
    def test_five_machines(self):
        assert len(MACHINES) == 5

    def test_default_is_e5_2683(self):
        m = default_machine()
        assert m.name == "e5-2683"
        assert m.n_cores == 16
        assert m.llc_mb == pytest.approx(40.0)

    def test_paper_llc_sizes_present(self):
        sizes = sorted(m.llc_mb for m in MACHINES.values())
        assert sizes == [20.0, 30.0, 40.0, 59.0, 72.0]

    def test_get_machine_case_insensitive(self):
        assert get_machine("E5-2650").llc_mb == 30.0

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_machine("epyc")


class TestSpecMath:
    def test_way_bytes_e5_2683(self):
        # 40 MB over 20 ways = 2 MB per way: the paper's baseline quantum.
        assert default_machine().way_bytes == pytest.approx(2 * MB)

    def test_max_collocated(self):
        assert default_machine().max_collocated == 8
        assert get_machine("e5-2620").max_collocated == 4

    def test_mb_to_ways_rounds_up(self):
        m = default_machine()
        assert m.mb_to_ways(2.0) == 1
        assert m.mb_to_ways(2.1) == 2
        assert m.mb_to_ways(0.5) == 1

    def test_mb_to_ways_clamped_to_llc(self):
        m = default_machine()
        assert m.mb_to_ways(1000.0) == m.llc_ways

    def test_degenerate_spec_rejected(self):
        with pytest.raises(ValueError):
            XeonSpec(name="x", n_cores=1, llc_bytes=MB, llc_ways=4)
        with pytest.raises(ValueError):
            XeonSpec(name="x", n_cores=4, llc_bytes=MB, llc_ways=1)
