"""Property-based invariants of the collocated runtime."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import get_workload

NAMES = ("jacobi", "bfs", "redis", "knn", "social", "spstream")


def run_random_pair(rng_seed, names, timeouts, utils, n_queries=250):
    cfg = CollocationConfig(
        machine=default_machine(),
        services=[
            CollocatedService(get_workload(n), timeout=t, utilization=u)
            for n, t, u in zip(names, timeouts, utils)
        ],
    )
    return CollocationRuntime(cfg, rng=rng_seed).run(
        n_queries=n_queries, warmup_fraction=0.0
    )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 10**6),
    st.sampled_from(NAMES),
    st.sampled_from(NAMES),
    st.floats(0.0, 5.0),
    st.floats(0.0, 5.0),
    st.floats(0.3, 0.93),
)
def test_runtime_invariants(seed, a, b, t1, t2, util):
    if a == b:
        return
    res = run_random_pair(seed, (a, b), (t1, t2), (util, util))
    for s in res.services:
        # Everything completes and in causal order.
        assert s.n_queries == 250
        assert np.all(s.start_times >= s.arrival_times - 1e-9)
        assert np.all(s.completion_times >= s.start_times - 1e-9)
        # Work conservation: the runtime can only *speed up* execution
        # relative to the baseline rate, never slow it below baseline
        # (private ways guarantee baseline performance).
        durations = s.service_durations_norm
        assert np.all(durations <= s.demands + 1e-6)
        # Boosted time is bounded by the service duration.
        assert np.all(s.boosted_time <= durations + 1e-9)
        # EA bounded by its physical range.
        ea = s.effective_allocation()
        assert 1.0 / s.gross_increase - 1e-6 <= ea <= 1.0 + 1e-6


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6), st.floats(0.3, 0.9))
def test_baseline_unaffected_by_partner_boosting(seed, util):
    """Private ways protect baseline performance: a never-boosting
    service's service *durations* are the same whether or not its
    partner boosts aggressively (only queueing could differ, and the
    queue is private per service too)."""
    quiet = run_random_pair(
        seed, ("knn", "redis"), (math.inf, math.inf), (util, util)
    )
    noisy = run_random_pair(
        seed, ("knn", "redis"), (math.inf, 0.1), (util, util)
    )
    d_quiet = quiet.service("knn").service_durations_norm
    d_noisy = noisy.service("knn").service_durations_norm
    assert np.allclose(d_quiet, d_noisy)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10**6))
def test_mmpp_arrivals_supported(seed):
    cfg = CollocationConfig(
        machine=default_machine(),
        services=[
            CollocatedService(
                get_workload("redis"),
                timeout=1.0,
                utilization=0.7,
                arrival_process="mmpp",
                burst_factor=3.0,
                burst_fraction=0.2,
            ),
            CollocatedService(get_workload("knn"), timeout=1.0, utilization=0.7),
        ],
    )
    res = CollocationRuntime(cfg, rng=seed).run(n_queries=200)
    assert res.service("redis").n_queries > 0


def test_bad_arrival_process_rejected():
    with pytest.raises(ValueError, match="arrival_process"):
        CollocatedService(
            get_workload("redis"), timeout=1.0, arrival_process="pareto"
        )
