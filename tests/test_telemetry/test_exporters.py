"""Tests for the run manifest, its validator and the ASCII renderers."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import exporters
from repro.telemetry.exporters import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    events_table,
    load_manifest,
    manifest_tables,
    validate_manifest,
    write_manifest,
    write_spans_jsonl,
)


def _instrumented_manifest(**kwargs):
    telemetry.configure()
    with telemetry.span("stage.alpha", n=3):
        with telemetry.span("stage.alpha.inner"):
            pass
    telemetry.counter_inc("rows", 10)
    telemetry.gauge_set("mse", 0.25)
    telemetry.histogram_observe("fit.seconds", 0.02)
    return build_manifest(
        command=["policy", "--pair", "a", "b"],
        config={"seed": 0, "timeout": float("inf")},
        seeds={"seed": 0},
        registry=telemetry.get_registry(),
        span_log=telemetry.get_span_log(),
        **kwargs,
    )


class TestBuildManifest:
    def test_structure(self):
        m = _instrumented_manifest()
        validate_manifest(m)  # no raise
        assert m["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert m["versions"]["numpy"] == np.__version__
        # One root -> its direct children are promoted to stages.
        assert [s["name"] for s in m["stages"]] == [
            "stage.alpha",
            "stage.alpha.inner",
        ]
        assert [s["parent"] for s in m["stages"]] == [None, "stage.alpha"]
        assert len(m["spans"]) == 2
        assert m["metrics"]["counters"]["rows"] == 10.0

    def test_json_safe_config_and_attrs(self):
        telemetry.configure()
        with telemetry.span("s", timeout=float("inf"), arr=np.float64(2.0)):
            pass
        m = build_manifest(
            command=[],
            config={"t": float("nan"), "xs": (1, np.int64(2))},
            seeds={},
            span_log=telemetry.get_span_log(),
        )
        text = json.dumps(m)  # strict JSON: would raise on inf/nan
        assert "Infinity" not in text and "NaN" not in text
        assert m["config"]["t"] == "nan"
        assert m["config"]["xs"] == [1, 2]
        assert m["spans"][0]["attrs"]["timeout"] == "inf"

    def test_worker_roots_excluded_from_stages(self):
        telemetry.configure()
        with telemetry.span("parent.stage"):
            pass
        worker_log = telemetry.SpanLog()
        with worker_log.start("worker.root", {}):
            pass
        telemetry.get_span_log().merge(worker_log.snapshot(), worker="w0")
        m = build_manifest(
            command=[], config={}, seeds={},
            span_log=telemetry.get_span_log(),
        )
        assert [s["name"] for s in m["stages"]] == ["parent.stage"]
        assert len(m["spans"]) == 2

    def test_events_pointer_fields(self):
        m = _instrumented_manifest(events_file="events.jsonl", n_events=12)
        assert m["events_file"] == "events.jsonl"
        assert m["n_events"] == 12


class TestValidateManifest:
    def test_missing_field(self):
        m = _instrumented_manifest()
        del m["stages"]
        with pytest.raises(ValueError, match="stages"):
            validate_manifest(m)

    def test_wrong_schema_version(self):
        m = _instrumented_manifest()
        m["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_manifest(m)

    def test_bad_stage_and_span_rows(self):
        m = _instrumented_manifest()
        n_stages, n_spans = len(m["stages"]), len(m["spans"])
        m["stages"].append({"name": 3})
        m["spans"].append({"id": "x"})
        with pytest.raises(ValueError) as exc:
            validate_manifest(m)
        msg = str(exc.value)
        assert f"stages[{n_stages}].name" in msg
        assert f"spans[{n_spans}].id" in msg

    def test_histogram_shape_checked(self):
        m = _instrumented_manifest()
        m["metrics"]["histograms"]["fit.seconds"]["counts"] = [1]
        with pytest.raises(ValueError, match="counts"):
            validate_manifest(m)

    def test_collects_all_problems(self):
        with pytest.raises(ValueError) as exc:
            validate_manifest({"schema_version": 99})
        # One message naming every violation, not just the first.
        assert str(exc.value).count("\n") >= 5


class TestFileRoundTrips:
    def test_manifest_write_load(self, tmp_path):
        m = _instrumented_manifest()
        path = tmp_path / "manifest.json"
        write_manifest(path, m)
        assert load_manifest(path) == m

    def test_write_rejects_invalid(self, tmp_path):
        m = _instrumented_manifest()
        del m["command"]
        with pytest.raises(ValueError):
            write_manifest(tmp_path / "manifest.json", m)
        assert not (tmp_path / "manifest.json").exists()

    def test_spans_jsonl(self, tmp_path):
        telemetry.configure()
        with telemetry.span("a"):
            pass
        path = tmp_path / "spans.jsonl"
        n = write_spans_jsonl(path, telemetry.get_span_log())
        assert n == 1
        lines = [json.loads(s) for s in path.read_text().splitlines()]
        assert lines[0]["name"] == "a"


class TestRendering:
    def test_manifest_tables_sections(self):
        text = manifest_tables(_instrumented_manifest())
        assert "Run manifest" in text
        assert "Stage timings" in text
        assert "Counters and gauges" in text
        assert "Histograms / timers" in text
        assert "stage.alpha" in text
        assert "version.numpy" in text

    def test_empty_metrics_skip_sections(self):
        telemetry.configure()
        m = build_manifest(command=[], config={}, seeds={})
        text = manifest_tables(m)
        assert "Counters and gauges" not in text
        assert "Stage timings" not in text

    def test_events_table(self):
        events = [
            {"run": 0, "query": 0, "type": "arrival", "t": 0.0},
            {"run": 0, "query": 0, "type": "stap_boost_trigger", "t": 0.5},
            {"run": 0, "query": 0, "type": "departure", "t": 1.0},
            {"run": 1, "query": 0, "type": "arrival", "t": 0.0},
            {"run": 1, "query": 0, "type": "departure", "t": 2.0},
        ]
        text = events_table(events)
        assert "5 events, 2 runs" in text
        assert "boost frac" in text

    def test_import_does_not_require_enabled_telemetry(self):
        # exporters is importable and usable with telemetry disabled.
        assert not telemetry.enabled()
        m = exporters.build_manifest(command=[], config={}, seeds={})
        validate_manifest(m)
