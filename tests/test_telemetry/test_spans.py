"""Tests for span tracing: nesting, ordering, merging, the no-op path."""

import threading

from repro import telemetry
from repro.telemetry.spans import NOOP_SPAN, SpanLog, SpanRecord


class TestSpanLog:
    def test_nesting_sets_parent(self):
        log = SpanLog()
        with log.start("outer", {}) as outer:
            with log.start("inner", {}) as inner:
                assert inner.parent_id == outer.id
        records = {r.name: r for r in log.records}
        assert records["outer"].parent_id is None
        assert records["inner"].parent_id == records["outer"].id

    def test_ids_are_monotonic_in_start_order(self):
        log = SpanLog()
        with log.start("a", {}):
            pass
        with log.start("b", {}):
            pass
        a, b = log.by_name("a")[0], log.by_name("b")[0]
        assert a.id < b.id

    def test_completion_order_vs_start_order(self):
        # Inner spans complete first but keep their later start ids.
        log = SpanLog()
        with log.start("outer", {}):
            with log.start("inner", {}):
                pass
        assert [r.name for r in log.records] == ["inner", "outer"]
        assert log.records[0].id > log.records[1].id

    def test_attrs_settable_during_span(self):
        log = SpanLog()
        with log.start("s", {"fixed": 1}) as s:
            s.set_attr("late", "value")
        (rec,) = log.records
        assert rec.attrs == {"fixed": 1, "late": "value"}

    def test_durations_non_negative_and_start_offsets_relative(self):
        log = SpanLog()
        with log.start("s", {}):
            pass
        (rec,) = log.records
        assert rec.duration >= 0.0
        assert rec.start >= 0.0

    def test_current_tracks_innermost(self):
        log = SpanLog()
        assert log.current() is None
        with log.start("outer", {}) as outer:
            assert log.current() is outer
            with log.start("inner", {}) as inner:
                assert log.current() is inner
            assert log.current() is outer
        assert log.current() is None

    def test_roots_in_start_order(self):
        log = SpanLog()
        with log.start("first", {}):
            with log.start("child", {}):
                pass
        with log.start("second", {}):
            pass
        assert [r.name for r in log.roots()] == ["first", "second"]

    def test_threads_nest_independently(self):
        log = SpanLog()
        seen = {}

        def work(tag):
            with log.start(f"root-{tag}", {}) as root:
                with log.start(f"leaf-{tag}", {}) as leaf:
                    seen[tag] = (root.id, leaf.parent_id)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for root_id, leaf_parent in seen.values():
            assert leaf_parent == root_id
        assert len(log.records) == 8

    def test_record_dict_round_trip(self):
        rec = SpanRecord(
            id=3, parent_id=1, name="s", start=0.5, duration=0.1,
            attrs={"k": 1}, worker="w0",
        )
        assert SpanRecord.from_dict(rec.to_dict()) == rec

    def test_merge_rekeys_and_tags(self):
        parent, worker = SpanLog(), SpanLog()
        with parent.start("parent", {}):
            pass
        with worker.start("w-outer", {}):
            with worker.start("w-inner", {}):
                pass
        parent.merge(worker.snapshot(), worker="w0")
        merged = {r.name: r for r in parent.records}
        assert merged["w-outer"].worker == "w0"
        assert merged["w-inner"].parent_id == merged["w-outer"].id
        ids = [r.id for r in parent.records]
        assert len(set(ids)) == len(ids)  # no collisions
        # Spans started after a merge keep ids unique too.
        with parent.start("later", {}):
            pass
        ids = [r.id for r in parent.records]
        assert len(set(ids)) == len(ids)


class TestNoopPath:
    def test_disabled_span_is_the_shared_noop(self):
        assert telemetry.span("anything", k=1) is NOOP_SPAN
        assert telemetry.timer("anything") is NOOP_SPAN

    def test_noop_span_supports_full_protocol(self):
        with telemetry.span("x") as s:
            s.set_attr("ignored", 1)
        assert telemetry.current_span() is None

    def test_enabled_span_records(self):
        telemetry.configure()
        with telemetry.span("x", k=2) as s:
            s.set_attr("extra", 3)
        (rec,) = telemetry.get_span_log().records
        assert rec.name == "x"
        assert rec.attrs == {"k": 2, "extra": 3}
