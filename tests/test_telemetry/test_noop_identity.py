"""The telemetry design contract: bit-identical outputs on or off.

Telemetry never touches an RNG and never feeds back into any
computation, so every instrumented path — the queueing kernels, the
Stage 2 fit / Stage 3 predict pipeline, the parallel timeout search —
must produce *bit-identical* results (``np.array_equal``, no tolerance)
whether telemetry is disabled (the default) or fully enabled with queue
event tracing.  And while disabled, the subsystem must allocate no
state at all.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.core import RuntimeCondition, StacModel
from repro.core.policy_search import explore_timeouts
from repro.queueing import (
    StapQueueConfig,
    simulate_stap_queue,
    simulate_stap_queue_batch,
)

PAIR = ("redis", "social")
UTILS = (0.9, 0.85)
GRID = (0.0, 1.0)
FAST = dict(learner="tree", sim_queries=500)

_RESULT_FIELDS = (
    "arrival_times",
    "start_times",
    "completion_times",
    "boosted",
    "boosted_time",
)


def _queue_inputs(C=4, n=300, seed=0):
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(0.6, size=(C, n)), axis=1)
    demands = rng.lognormal(0.0, 0.5, size=(C, n))
    configs = [
        StapQueueConfig(n_servers=2, timeout=t, boost_speedup=1.6)
        for t in (0.0, 0.5, 1.5, np.inf)
    ]
    return arrivals, demands, configs


def _assert_same_result(a, b):
    for fld in _RESULT_FIELDS:
        assert np.array_equal(getattr(a, fld), getattr(b, fld)), fld


@pytest.fixture(scope="module")
def fitted(small_dataset):
    telemetry.disable()
    return StacModel(rng=0, **FAST).fit(small_dataset)


class TestDisabledAllocatesNothing:
    def test_default_state_is_empty(self):
        assert not telemetry.enabled()
        assert telemetry.get_registry() is None
        assert telemetry.get_span_log() is None
        assert telemetry.queue_sink() is None

    def test_instrumented_run_allocates_nothing_while_disabled(self):
        arrivals, demands, configs = _queue_inputs()
        simulate_stap_queue(arrivals[0], demands[0], configs[0])
        simulate_stap_queue_batch(arrivals, demands, configs)
        assert telemetry.get_registry() is None
        assert telemetry.get_span_log() is None
        assert telemetry.queue_sink() is None

    def test_disable_drops_collected_state(self):
        telemetry.configure(trace_queue_events=True)
        telemetry.counter_inc("x")
        telemetry.disable()
        assert telemetry.get_registry() is None
        assert telemetry.worker_snapshot() is None


class TestQueueKernelIdentity:
    def test_serial_kernel(self):
        arrivals, demands, configs = _queue_inputs()
        off = simulate_stap_queue(arrivals[1], demands[1], configs[1])
        telemetry.configure(trace_queue_events=True)
        on = simulate_stap_queue(arrivals[1], demands[1], configs[1])
        _assert_same_result(off, on)

    def test_batch_kernel(self):
        arrivals, demands, configs = _queue_inputs()
        off = simulate_stap_queue_batch(arrivals, demands, configs)
        telemetry.configure(trace_queue_events=True)
        on = simulate_stap_queue_batch(arrivals, demands, configs)
        _assert_same_result(off, on)
        assert telemetry.queue_sink().n_runs == len(configs)


class TestPipelineIdentity:
    def test_fit_and_predict_bit_identical(self, small_dataset):
        conditions = [
            RuntimeCondition(workloads=PAIR, utilizations=UTILS, timeouts=t)
            for t in ((0.0, 1.0), (0.5, 0.5), (np.inf, np.inf))
        ]
        assert not telemetry.enabled()
        m_off = StacModel(rng=0, **FAST).fit(small_dataset)
        p_off = m_off.predict_conditions(conditions)
        telemetry.configure(trace_queue_events=True)
        m_on = StacModel(rng=0, **FAST).fit(small_dataset)
        p_on = m_on.predict_conditions(conditions)
        for off, on in zip(p_off, p_on):
            assert off.summaries == on.summaries
            assert np.array_equal(
                off.effective_allocations, on.effective_allocations
            )
        # The run actually recorded something (the contract is "pure
        # observation", not "observes nothing").
        reg = telemetry.get_registry()
        assert reg.counter("stage3.conditions_predicted") == len(conditions)
        assert telemetry.get_span_log().by_name("stage2.fit")


class TestExploreTimeoutsIdentity:
    def test_parallel_search_identical_and_merged(self, fitted):
        assert not telemetry.enabled()
        combos_off, rt_off = explore_timeouts(
            fitted, PAIR, UTILS, GRID, n_jobs=1
        )
        telemetry.configure(trace_queue_events=True)
        combos_on, rt_on = explore_timeouts(
            fitted, PAIR, UTILS, GRID, n_jobs=2
        )
        assert combos_off == combos_on
        assert np.array_equal(rt_off, rt_on)
        # Worker telemetry merged into the parent without touching the
        # result channel semantics:
        reg = telemetry.get_registry()
        assert reg.counter("policy.combos_evaluated") == len(combos_on)
        chunk_spans = telemetry.get_span_log().by_name("policy.chunk")
        assert len(chunk_spans) == 2
        assert {s.worker for s in chunk_spans} == {"explore-0", "explore-1"}
        assert telemetry.queue_sink().n_runs > 0

    def test_serial_search_identical(self, fitted):
        assert not telemetry.enabled()
        _, rt_off = explore_timeouts(fitted, PAIR, UTILS, GRID, n_jobs=1)
        telemetry.configure()
        _, rt_on = explore_timeouts(fitted, PAIR, UTILS, GRID, n_jobs=1)
        assert np.array_equal(rt_off, rt_on)
        # In-process path records straight into the parent state.
        spans = telemetry.get_span_log().by_name("policy.chunk")
        assert len(spans) == 1 and spans[0].worker is None
