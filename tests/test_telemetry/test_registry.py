"""Tests for the metrics registry: counters, gauges, histograms, timers."""

import math
import pickle
import threading

import pytest

from repro.telemetry.registry import (
    DEFAULT_TIME_EDGES,
    Histogram,
    MetricsRegistry,
)


class TestHistogram:
    def test_bucketing_against_edges(self):
        h = Histogram(edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {3.0}; overflow: {100.0}
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(106.0)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(106.0 / 5)

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram().mean)

    def test_edge_validation(self):
        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))

    def test_dict_round_trip(self):
        h = Histogram(edges=(1.0, 10.0))
        for v in (0.1, 5.0, 50.0):
            h.observe(v)
        clone = Histogram.from_dict(h.to_dict())
        assert clone.to_dict() == h.to_dict()

    def test_merge_requires_matching_edges(self):
        h = Histogram(edges=(1.0, 2.0))
        other = Histogram(edges=(1.0, 3.0))
        with pytest.raises(ValueError, match="different edges"):
            h.merge_dict(other.to_dict())

    def test_merge_accumulates(self):
        a, b = Histogram(edges=(1.0,)), Histogram(edges=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        b.observe(0.25)
        a.merge_dict(b.to_dict())
        assert a.counts == [2, 1]
        assert a.count == 3
        assert a.min == 0.25 and a.max == 2.0

    def test_merge_empty_keeps_minmax(self):
        a = Histogram(edges=(1.0,))
        a.observe(0.5)
        a.merge_dict(Histogram(edges=(1.0,)).to_dict())
        assert a.min == 0.5 and a.max == 0.5 and a.count == 1


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.counter_inc("x")
        reg.counter_inc("x", 4.0)
        assert reg.counter("x") == 5.0
        assert reg.counter("missing") == 0.0

    def test_gauges_keep_last(self):
        reg = MetricsRegistry()
        reg.gauge_set("g", 1.0)
        reg.gauge_set("g", 2.5)
        assert reg.gauge("g") == 2.5
        assert reg.gauge("missing") is None

    def test_histogram_defaults_to_time_edges(self):
        reg = MetricsRegistry()
        reg.histogram_observe("h", 0.02)
        assert reg.histogram("h").edges == DEFAULT_TIME_EDGES

    def test_histogram_custom_edges_fixed_at_creation(self):
        reg = MetricsRegistry()
        reg.histogram_observe("h", 1.5, edges=(1.0, 2.0))
        reg.histogram_observe("h", 0.5)  # edges ignored after creation
        assert reg.histogram("h").counts == [1, 1, 0]

    def test_timer_records_a_duration(self):
        reg = MetricsRegistry()
        with reg.timer("t.seconds"):
            pass
        h = reg.histogram("t.seconds")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_snapshot_is_picklable_and_detached(self):
        reg = MetricsRegistry()
        reg.counter_inc("c", 2.0)
        reg.gauge_set("g", 1.0)
        reg.histogram_observe("h", 0.5, edges=(1.0,))
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        reg.counter_inc("c")
        assert snap["counters"]["c"] == 2.0
        assert snap["gauges"]["g"] == 1.0
        assert snap["histograms"]["h"]["counts"] == [1, 0]

    def test_merge_folds_worker_snapshot(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter_inc("c", 1.0)
        worker.counter_inc("c", 2.0)
        worker.counter_inc("only_worker", 3.0)
        worker.gauge_set("g", 9.0)
        parent.histogram_observe("h", 0.5, edges=(1.0,))
        worker.histogram_observe("h", 2.0, edges=(1.0,))
        worker.histogram_observe("h2", 1.0, edges=(4.0,))
        parent.merge(worker.snapshot())
        assert parent.counter("c") == 3.0
        assert parent.counter("only_worker") == 3.0
        assert parent.gauge("g") == 9.0
        assert parent.histogram("h").counts == [1, 1]
        assert parent.histogram("h2").counts == [1, 0]

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter_inc("n")
                reg.histogram_observe("h", 0.5, edges=(1.0,))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 4000.0
        assert reg.histogram("h").count == 4000
