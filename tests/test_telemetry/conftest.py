"""Telemetry tests toggle the process-wide state; always reset it."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()
