"""Tests for the simulator event-trace sink."""

import numpy as np
import pytest

from repro import telemetry
from repro.queueing import (
    StapQueueConfig,
    simulate_stap_queue,
    simulate_stap_queue_batch,
)
from repro.telemetry.events import (
    EVENT_TYPES,
    QueueEventSink,
    read_events_jsonl,
)


def _small_run(seed=0, n=50, timeout=0.5, boost=1.8):
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(0.8, size=n))
    demands = rng.exponential(1.0, size=n)
    cfg = StapQueueConfig(
        n_servers=2, mean_service_time=1.0, timeout=timeout, boost_speedup=boost
    )
    return arrivals, demands, cfg


class TestRecordRun:
    def test_event_counts_and_types(self):
        arrivals, demands, cfg = _small_run()
        res = simulate_stap_queue(arrivals, demands, cfg)
        sink = QueueEventSink()
        run = sink.record_run(res, cfg)
        assert run == 0
        n_boosted = int(res.boosted.sum())
        assert sink.n_events == 3 * len(arrivals) + n_boosted
        assert {e["type"] for e in sink.events()} <= set(EVENT_TYPES)

    def test_event_times_match_result_arrays(self):
        arrivals, demands, cfg = _small_run(seed=3)
        res = simulate_stap_queue(arrivals, demands, cfg)
        sink = QueueEventSink()
        sink.record_run(res, cfg)
        by_type = {t: {} for t in EVENT_TYPES}
        for e in sink.events():
            by_type[e["type"]][e["query"]] = e["t"]
        for q in range(len(arrivals)):
            assert by_type["arrival"][q] == res.arrival_times[q]
            assert by_type["service_start"][q] == res.start_times[q]
            assert by_type["departure"][q] == res.completion_times[q]

    def test_boost_trigger_placement(self):
        arrivals, demands, cfg = _small_run(seed=5)
        res = simulate_stap_queue(arrivals, demands, cfg)
        assert res.boosted.any() and not res.boosted.all()
        sink = QueueEventSink()
        sink.record_run(res, cfg)
        triggers = {
            e["query"]: e["t"]
            for e in sink.events()
            if e["type"] == "stap_boost_trigger"
        }
        assert set(triggers) == set(np.nonzero(res.boosted)[0])
        for q, t in triggers.items():
            expect = max(
                res.start_times[q], res.arrival_times[q] + cfg.warning_delay
            )
            assert t == pytest.approx(expect)
            # The trigger falls inside the query's service interval.
            assert res.start_times[q] <= t <= res.completion_times[q]

    def test_timeline_is_ordered(self):
        arrivals, demands, cfg = _small_run(seed=7)
        res = simulate_stap_queue(arrivals, demands, cfg)
        sink = QueueEventSink()
        sink.record_run(res, cfg)
        q = int(np.nonzero(res.boosted)[0][0])
        timeline = sink.timeline(0, q)
        names = [t[0] for t in timeline]
        times = [t[1] for t in timeline]
        assert names[0] == "arrival" and names[-1] == "departure"
        assert "stap_boost_trigger" in names
        assert times == sorted(times)

    def test_labels_ride_along(self):
        arrivals, demands, cfg = _small_run()
        res = simulate_stap_queue(arrivals, demands, cfg)
        sink = QueueEventSink()
        sink.record_run(res, cfg, label="combo-3")
        assert all(e["label"] == "combo-3" for e in sink.events())
        assert sink.run_summary()[0]["label"] == "combo-3"


class TestRecordBatch:
    def test_batch_rows_match_serial_runs(self):
        rng = np.random.default_rng(11)
        C, n = 3, 40
        arrivals = np.cumsum(rng.exponential(0.6, size=(C, n)), axis=1)
        demands = rng.exponential(1.0, size=(C, n))
        configs = [
            StapQueueConfig(n_servers=2, timeout=t, boost_speedup=1.5)
            for t in (0.0, 0.75, np.inf)
        ]
        batch = simulate_stap_queue_batch(arrivals, demands, configs)
        batch_sink, serial_sink = QueueEventSink(), QueueEventSink()
        runs = batch_sink.record_batch(batch, configs)
        assert runs == [0, 1, 2]
        for c, cfg in enumerate(configs):
            serial_sink.record_run(
                simulate_stap_queue(arrivals[c], demands[c], cfg), cfg
            )
        assert batch_sink.events() == serial_sink.events()


class TestAggregation:
    def test_merge_rekeys_runs(self):
        arrivals, demands, cfg = _small_run(n=10)
        res = simulate_stap_queue(arrivals, demands, cfg)
        parent, worker = QueueEventSink(), QueueEventSink()
        parent.record_run(res, cfg)
        worker.record_run(res, cfg)
        worker.record_run(res, cfg)
        parent.merge(worker.snapshot())
        assert parent.n_runs == 3
        assert sorted({e["run"] for e in parent.events()}) == [0, 1, 2]

    def test_jsonl_round_trip(self, tmp_path):
        arrivals, demands, cfg = _small_run(n=12)
        res = simulate_stap_queue(arrivals, demands, cfg)
        sink = QueueEventSink()
        sink.record_run(res, cfg)
        path = tmp_path / "events.jsonl"
        n = sink.write_jsonl(path)
        assert n == sink.n_events
        assert read_events_jsonl(path) == sink.events()


class TestSimulatorIntegration:
    def test_active_sink_fed_automatically(self):
        telemetry.configure(trace_queue_events=True)
        arrivals, demands, cfg = _small_run(n=20)
        simulate_stap_queue(arrivals, demands, cfg)
        sink = telemetry.queue_sink()
        assert sink.n_runs == 1
        assert sink.n_events >= 3 * 20

    def test_explicit_sink_overrides_global(self):
        telemetry.configure(trace_queue_events=True)
        mine = QueueEventSink()
        arrivals, demands, cfg = _small_run(n=15)
        simulate_stap_queue(arrivals, demands, cfg, event_sink=mine)
        assert mine.n_runs == 1
        assert telemetry.queue_sink().n_runs == 0

    def test_no_sink_without_trace_flag(self):
        telemetry.configure(trace_queue_events=False)
        arrivals, demands, cfg = _small_run(n=15)
        simulate_stap_queue(arrivals, demands, cfg)
        assert telemetry.queue_sink() is None
        # but the metrics still land
        reg = telemetry.get_registry()
        assert reg.counter("queue.runs") == 1.0
        assert reg.counter("queue.queries_simulated") == 15.0
