"""Shared profiling fixtures (profiling runs are the slow part)."""

import pytest

from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import uniform_conditions


@pytest.fixture(scope="session")
def small_dataset():
    """A small but real profile dataset over redis+social conditions."""
    conditions = uniform_conditions(("redis", "social"), n=8, rng=0)
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=500, n_windows=4, trace_ticks=16),
        rng=0,
    )
    return profiler.profile(conditions)


@pytest.fixture(scope="session")
def mixed_pair_dataset():
    """Profiles over two different collocation pairs (for split tests)."""
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=400, n_windows=3, trace_ticks=16),
        rng=1,
    )
    conds = uniform_conditions(("jacobi", "bfs"), n=4, rng=1) + uniform_conditions(
        ("redis", "knn"), n=4, rng=2
    )
    return profiler.profile(conds)
