"""Batch-vs-serial equivalence of the vectorized STAP queueing kernel.

Every batched condition must be *bit-identical* (``np.array_equal``, no
tolerance) to a standalone :func:`simulate_stap_queue` run under the
same config — the core contract that lets every consumer switch kernels
freely.
"""

import numpy as np
import pytest

from repro.queueing import (
    BatchQueueResult,
    StapQueueConfig,
    simulate_stap_queue,
    simulate_stap_queue_batch,
)


def _sample(C, n, seed=0):
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(0.6, size=(C, n)), axis=1)
    demands = rng.lognormal(0.0, 0.5, size=(C, n))
    return arrivals, demands


def _assert_rows_match(batch, arrivals, demands, configs):
    for c, cfg in enumerate(configs):
        serial = simulate_stap_queue(arrivals[c], demands[c], cfg)
        for fld in (
            "arrival_times",
            "start_times",
            "completion_times",
            "boosted",
            "boosted_time",
        ):
            assert np.array_equal(
                getattr(serial, fld), getattr(batch, fld)[c]
            ), f"condition {c}: {fld} diverges"


class TestBitIdentity:
    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("timeout", [0.0, 0.75, np.inf])
    @pytest.mark.parametrize("boost", [1.0, 1.6])
    def test_sweep(self, k, timeout, boost):
        C, n = 5, 400
        arrivals, demands = _sample(C, n, seed=k * 100 + int(boost * 10))
        configs = [
            StapQueueConfig(
                n_servers=k,
                mean_service_time=0.8 + 0.1 * c,
                timeout=timeout,
                boost_speedup=boost,
            )
            for c in range(C)
        ]
        batch = simulate_stap_queue_batch(arrivals, demands, configs)
        _assert_rows_match(batch, arrivals, demands, configs)

    def test_single_condition(self):
        arrivals, demands = _sample(1, 300)
        configs = [StapQueueConfig(n_servers=2, timeout=0.5, boost_speedup=1.4)]
        batch = simulate_stap_queue_batch(arrivals, demands, configs)
        assert batch.n_conditions == 1
        _assert_rows_match(batch, arrivals, demands, configs)

    def test_broadcast_arrivals_and_demands(self):
        C, n = 6, 350
        arrivals, demands = _sample(1, n, seed=3)
        arrivals_1d, demands_1d = arrivals[0], demands[0]
        configs = [
            StapQueueConfig(
                n_servers=2, timeout=t, boost_speedup=b, mean_service_time=m
            )
            for t, b, m in zip(
                (0.0, 0.5, 1.0, 2.0, np.inf, 0.5),
                (1.5, 1.0, 2.0, 1.2, 1.7, 3.0),
                (1.0, 0.9, 1.1, 1.0, 0.8, 1.3),
            )
        ]
        batch = simulate_stap_queue_batch(arrivals_1d, demands_1d, configs)
        full = np.broadcast_to(arrivals_1d, (C, n))
        _assert_rows_match(batch, full, np.broadcast_to(demands_1d, (C, n)), configs)

    def test_mixed_server_counts(self):
        # Ragged k exercises the general argmin path with inf padding.
        C, n = 4, 300
        arrivals, demands = _sample(C, n, seed=9)
        configs = [
            StapQueueConfig(n_servers=k, timeout=0.5, boost_speedup=1.5)
            for k in (1, 3, 2, 4)
        ]
        batch = simulate_stap_queue_batch(arrivals, demands, configs)
        _assert_rows_match(batch, arrivals, demands, configs)

    def test_boost_one_with_finite_timeout(self):
        # boost == 1 must land in the serial kernel's no-boost branch
        # even when the warning fires mid-query.
        C, n = 3, 250
        arrivals, demands = _sample(C, n, seed=4)
        configs = [
            StapQueueConfig(n_servers=2, timeout=0.2, boost_speedup=1.0)
            for _ in range(C)
        ]
        batch = simulate_stap_queue_batch(arrivals, demands, configs)
        assert not batch.boosted.any()
        _assert_rows_match(batch, arrivals, demands, configs)

    def test_derived_quantities_match(self):
        C, n = 4, 300
        arrivals, demands = _sample(C, n, seed=11)
        configs = [
            StapQueueConfig(n_servers=2, timeout=0.5, boost_speedup=1.5)
            for _ in range(C)
        ]
        batch = simulate_stap_queue_batch(arrivals, demands, configs)
        dropped = batch.drop_warmup(0.1)
        for c, cfg in enumerate(configs):
            serial = simulate_stap_queue(arrivals[c], demands[c], cfg)
            assert np.array_equal(serial.response_times, batch.response_times[c])
            assert np.array_equal(serial.wait_times, batch.wait_times[c])
            assert serial.boost_fraction == batch.boost_fractions[c]
            sd = serial.drop_warmup(0.1)
            assert np.array_equal(
                sd.completion_times, dropped.completion_times[c]
            )
            # condition() reconstructs the serial result wholesale.
            cond = batch.condition(c)
            assert np.array_equal(cond.start_times, serial.start_times)
            assert cond.start_times.flags["C_CONTIGUOUS"]


class TestEdgeCases:
    def test_empty_queries(self):
        batch = simulate_stap_queue_batch(
            np.empty((3, 0)), np.empty((3, 0)), [StapQueueConfig()] * 3
        )
        assert isinstance(batch, BatchQueueResult)
        assert batch.completion_times.shape == (3, 0)
        assert batch.boost_fractions.tolist() == [0.0, 0.0, 0.0]
        assert batch.response_times.shape == (3, 0)

    def test_no_conditions_raises(self):
        with pytest.raises(ValueError, match="configs"):
            simulate_stap_queue_batch(np.zeros(4), np.ones(4), [])

    def test_non_config_raises(self):
        with pytest.raises(TypeError, match="StapQueueConfig"):
            simulate_stap_queue_batch(np.zeros(4), np.ones(4), [{"n_servers": 2}])

    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_non_finite_arrivals_raise(self, bad):
        arrivals = np.array([[0.0, 1.0, bad, 3.0]])
        with pytest.raises(ValueError, match="finite"):
            simulate_stap_queue_batch(arrivals, np.ones((1, 4)), [StapQueueConfig()])

    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_non_finite_demands_raise(self, bad):
        demands = np.array([[1.0, bad, 1.0]])
        with pytest.raises(ValueError, match="finite"):
            simulate_stap_queue_batch(
                np.arange(3.0)[None, :], demands, [StapQueueConfig()]
            )

    def test_unsorted_row_raises(self):
        arrivals = np.array([[0.0, 1.0, 2.0], [0.0, 2.0, 1.0]])
        with pytest.raises(ValueError, match="sorted"):
            simulate_stap_queue_batch(
                arrivals, np.ones((2, 3)), [StapQueueConfig()] * 2
            )

    def test_condition_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="condition rows"):
            simulate_stap_queue_batch(
                np.zeros((2, 3)), np.ones((2, 3)), [StapQueueConfig()] * 3
            )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="matching shapes"):
            simulate_stap_queue_batch(
                np.zeros((2, 3)), np.ones((2, 4)), [StapQueueConfig()] * 2
            )

    def test_3d_input_raises(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            simulate_stap_queue_batch(
                np.zeros((2, 3, 4)), np.ones((2, 3, 4)), [StapQueueConfig()] * 2
            )
