"""Tests for service/arrival distributions."""

import numpy as np
import pytest

from repro.queueing import (
    Deterministic,
    Empirical,
    Exponential,
    Hyperexponential,
    LogNormal,
)

ALL_DISTS = [
    Deterministic(2.0),
    Exponential(2.0),
    LogNormal(2.0, 0.7),
    Hyperexponential(0.9, 1.0, 11.0),
    Empirical((1.0, 2.0, 3.0)),
]


class TestMoments:
    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
    def test_sample_mean_matches_declared(self, dist):
        x = dist.sample(60000, rng=0)
        assert x.mean() == pytest.approx(dist.mean(), rel=0.05)

    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
    def test_sample_cv_matches_declared(self, dist):
        x = dist.sample(120000, rng=1)
        if dist.cv() == 0:
            assert x.std() == 0
        else:
            assert x.std() / x.mean() == pytest.approx(dist.cv(), rel=0.12)

    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
    def test_samples_positive(self, dist):
        assert np.all(dist.sample(1000, rng=2) > 0)


class TestSpecifics:
    def test_exponential_cv_is_one(self):
        assert Exponential(5.0).cv() == 1.0

    def test_hyperexponential_cv_above_one(self):
        assert Hyperexponential(0.9, 1.0, 11.0).cv() > 1.0

    def test_empirical_resamples_only_observed(self):
        e = Empirical((1.0, 5.0))
        assert set(np.unique(e.sample(200, rng=3))) <= {1.0, 5.0}

    def test_empirical_from_array(self):
        e = Empirical.from_array(np.array([2.0, 4.0]))
        assert e.mean() == 3.0


class TestValidation:
    def test_deterministic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deterministic(0.0)

    def test_lognormal_rejects_zero_cv(self):
        with pytest.raises(ValueError):
            LogNormal(1.0, 0.0)

    def test_hyperexp_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Hyperexponential(1.0, 1.0, 2.0)

    def test_empirical_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical(())

    def test_empirical_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Empirical((1.0, -2.0))
