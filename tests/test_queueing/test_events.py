"""Tests for the discrete-event kernel."""

import pytest

from repro.queueing import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3.0, lambda: seen.append("c"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.run()
        assert seen == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        loop = EventLoop()
        seen = []
        for i in range(5):
            loop.schedule(1.0, lambda i=i: seen.append(i))
        loop.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        loop = EventLoop()
        times = []
        loop.schedule(2.5, lambda: times.append(loop.now))
        loop.run()
        assert times == [2.5] and loop.now == 2.5

    def test_callbacks_can_schedule(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule_in(1.0, lambda: seen.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert seen == ["first", "second"] and loop.now == 2.0

    def test_run_until(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(5.0, lambda: seen.append(5))
        loop.run(until=3.0)
        assert seen == [1] and loop.now == 3.0 and loop.pending == 1

    def test_run_max_events(self):
        loop = EventLoop()
        seen = []
        for t in (1.0, 2.0, 3.0):
            loop.schedule(t, lambda t=t: seen.append(t))
        loop.run(max_events=2)
        assert seen == [1.0, 2.0]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: loop.schedule(1.0, lambda: None))
        with pytest.raises(ValueError, match="past"):
            loop.run()

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError, match="delay"):
            loop.schedule_in(-1.0, lambda: None)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for t in range(4):
            loop.schedule(float(t), lambda: None)
        loop.run()
        assert loop.events_processed == 4
