"""Tests for the STAP-aware G/G/k simulator (Stage 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing import (
    QueueResult,
    StapQueueConfig,
    mmk_mean_response,
    simulate_stap_queue,
)
from repro.queueing.ggk import _service_duration
from repro.workloads import PoissonArrivals


def run_mm1(rho, n=40000, timeout=np.inf, boost=1.0, seed=0, servers=1):
    rng = np.random.default_rng(seed)
    rate = rho * servers
    arrivals = PoissonArrivals(rate).sample(n, rng=rng)
    demands = rng.exponential(1.0, size=n)
    cfg = StapQueueConfig(
        n_servers=servers, mean_service_time=1.0, timeout=timeout, boost_speedup=boost
    )
    return simulate_stap_queue(arrivals, demands, cfg).drop_warmup(0.1)


class TestServiceDuration:
    def test_never_triggers(self):
        dur, b = _service_duration(start=0.0, warn_at=10.0, work=2.0, boost_speedup=3.0)
        assert dur == 2.0 and b == 0.0

    def test_triggers_before_start(self):
        dur, b = _service_duration(start=5.0, warn_at=2.0, work=2.0, boost_speedup=2.0)
        assert dur == 1.0 and b == 1.0

    def test_triggers_mid_execution(self):
        dur, b = _service_duration(start=0.0, warn_at=1.0, work=3.0, boost_speedup=2.0)
        # 1s at rate 1, remaining 2s of work at rate 2 -> 1s.
        assert dur == pytest.approx(2.0) and b == pytest.approx(1.0)

    def test_boost_one_is_noop(self):
        dur, b = _service_duration(start=0.0, warn_at=0.0, work=3.0, boost_speedup=1.0)
        assert dur == 3.0 and b == 0.0

    def test_trigger_exactly_at_completion(self):
        dur, b = _service_duration(start=0.0, warn_at=3.0, work=3.0, boost_speedup=5.0)
        assert dur == 3.0 and b == 0.0


class TestAgainstClosedForm:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.85])
    def test_mm1_mean_response(self, rho):
        res = run_mm1(rho, n=60000, seed=1)
        expect = mmk_mean_response(arrival_rate=rho, service_rate=1.0, n_servers=1)
        assert res.response_times.mean() == pytest.approx(expect, rel=0.08)

    def test_mmk_mean_response(self):
        res = run_mm1(0.7, n=60000, servers=3, seed=2)
        expect = mmk_mean_response(arrival_rate=2.1, service_rate=1.0, n_servers=3)
        assert res.response_times.mean() == pytest.approx(expect, rel=0.08)


class TestStapBehaviour:
    def test_boost_reduces_response_time(self):
        slow = run_mm1(0.85, timeout=np.inf, seed=3)
        fast = run_mm1(0.85, timeout=1.0, boost=2.0, seed=3)
        assert fast.response_times.mean() < slow.response_times.mean()
        assert np.percentile(fast.response_times, 95) < np.percentile(
            slow.response_times, 95
        )

    def test_lower_timeout_boosts_more_often(self):
        tight = run_mm1(0.8, timeout=0.5, boost=2.0, seed=4)
        loose = run_mm1(0.8, timeout=3.0, boost=2.0, seed=4)
        assert tight.boost_fraction > loose.boost_fraction

    def test_zero_timeout_boosts_everything(self):
        res = run_mm1(0.5, timeout=0.0, boost=2.0, seed=5)
        assert res.boost_fraction == pytest.approx(1.0)

    def test_infinite_timeout_never_boosts(self):
        res = run_mm1(0.8, timeout=np.inf, boost=2.0, seed=6)
        assert res.boost_fraction == 0.0

    def test_boost_busy_time_positive_only_when_triggered(self):
        res = run_mm1(0.8, timeout=1.0, boost=2.0, seed=7)
        assert res.boost_busy_time > 0
        assert np.all((res.boosted_time > 0) == res.boosted)

    def test_zero_timeout_full_boost_scales_service(self):
        """With timeout 0 every query runs entirely at the boosted rate."""
        arrivals = np.arange(1, 101, dtype=float) * 100.0  # no queueing
        demands = np.ones(100)
        cfg = StapQueueConfig(
            n_servers=1, mean_service_time=2.0, timeout=0.0, boost_speedup=4.0
        )
        res = simulate_stap_queue(arrivals, demands, cfg)
        assert np.allclose(res.response_times, 0.5)


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(0.1, 0.9),
        st.floats(0.1, 5.0),
        st.floats(1.0, 4.0),
        st.integers(1, 4),
    )
    def test_causality_and_ordering(self, rho, timeout, boost, servers):
        rng = np.random.default_rng(11)
        arrivals = PoissonArrivals(rho * servers).sample(300, rng=rng)
        demands = rng.exponential(1.0, size=300)
        cfg = StapQueueConfig(
            n_servers=servers, mean_service_time=1.0, timeout=timeout, boost_speedup=boost
        )
        res = simulate_stap_queue(arrivals, demands, cfg)
        assert np.all(res.start_times >= res.arrival_times - 1e-12)
        assert np.all(res.completion_times >= res.start_times)
        # Never more than n_servers queries in service simultaneously.
        for t in res.start_times[:: max(1, len(arrivals) // 20)]:
            in_service = np.sum((res.start_times <= t) & (res.completion_times > t))
            assert in_service <= servers

    @settings(max_examples=20, deadline=None)
    @given(st.floats(1.01, 5.0))
    def test_boosting_never_hurts(self, boost):
        base = run_mm1(0.7, n=3000, timeout=np.inf, seed=13)
        boosted = run_mm1(0.7, n=3000, timeout=1.0, boost=boost, seed=13)
        assert boosted.response_times.mean() <= base.response_times.mean() + 1e-9


class TestLittlesLaw:
    def _time_average_in_system(self, res):
        """Integrate the number-in-system process from event times."""
        events = np.concatenate(
            [
                np.stack([res.arrival_times, np.ones_like(res.arrival_times)], 1),
                np.stack(
                    [res.completion_times, -np.ones_like(res.completion_times)], 1
                ),
            ]
        )
        events = events[np.argsort(events[:, 0], kind="stable")]
        t0, t1 = events[0, 0], events[-1, 0]
        times = events[:, 0]
        counts = np.cumsum(events[:, 1])
        dt = np.diff(np.append(times, t1))
        return float((counts * dt).sum() / (t1 - t0))

    @pytest.mark.parametrize("rho", [0.5, 0.8])
    def test_l_equals_lambda_w(self, rho):
        res = run_mm1(rho, n=30000, seed=21)
        lam = len(res.arrival_times) / (
            res.arrival_times[-1] - res.arrival_times[0]
        )
        L = self._time_average_in_system(res)
        W = res.response_times.mean()
        assert L == pytest.approx(lam * W, rel=0.05)

    def test_littles_law_holds_under_stap(self):
        """The law is distribution-free: it must survive the timeout-
        coupled service rates that break Markov closed forms."""
        res = run_mm1(0.85, n=30000, timeout=0.8, boost=2.0, seed=22)
        lam = len(res.arrival_times) / (
            res.arrival_times[-1] - res.arrival_times[0]
        )
        L = self._time_average_in_system(res)
        W = res.response_times.mean()
        assert L == pytest.approx(lam * W, rel=0.05)


class TestValidation:
    def test_unsorted_arrivals_rejected(self):
        cfg = StapQueueConfig()
        with pytest.raises(ValueError, match="sorted"):
            simulate_stap_queue([2.0, 1.0], [1.0, 1.0], cfg)

    def test_shape_mismatch_rejected(self):
        cfg = StapQueueConfig()
        with pytest.raises(ValueError, match="matching"):
            simulate_stap_queue([1.0, 2.0], [1.0], cfg)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StapQueueConfig(n_servers=0)
        with pytest.raises(ValueError):
            StapQueueConfig(mean_service_time=0)
        with pytest.raises(ValueError):
            StapQueueConfig(timeout=-1)
        with pytest.raises(ValueError):
            StapQueueConfig(boost_speedup=0)

    def test_drop_warmup_validation(self):
        res = run_mm1(0.5, n=100)
        with pytest.raises(ValueError):
            res.drop_warmup(1.0)


class TestInputValidation:
    """Non-finite inputs must be rejected, not silently simulated.

    Regression: ``np.any(np.diff(arrivals) < 0)`` is False for NaN
    (comparisons with NaN are False), so a NaN arrival used to pass the
    sortedness check and quietly corrupt start/completion times.
    """

    CFG = StapQueueConfig(n_servers=1)

    def test_nan_arrival_rejected(self):
        arrivals = np.array([1.0, np.nan, 3.0])
        with pytest.raises(ValueError, match="finite"):
            simulate_stap_queue(arrivals, np.ones(3), self.CFG)

    def test_inf_arrival_rejected(self):
        arrivals = np.array([1.0, 2.0, np.inf])
        with pytest.raises(ValueError, match="finite"):
            simulate_stap_queue(arrivals, np.ones(3), self.CFG)

    def test_nan_demand_rejected(self):
        demands = np.array([1.0, np.nan, 1.0])
        with pytest.raises(ValueError, match="finite"):
            simulate_stap_queue(np.arange(3.0), demands, self.CFG)

    def test_inf_demand_rejected(self):
        demands = np.array([1.0, np.inf, 1.0])
        with pytest.raises(ValueError, match="finite"):
            simulate_stap_queue(np.arange(3.0), demands, self.CFG)

    def test_unsorted_still_rejected(self):
        arrivals = np.array([3.0, 1.0, 2.0])
        with pytest.raises(ValueError, match="sorted"):
            simulate_stap_queue(arrivals, np.ones(3), self.CFG)

    def test_finite_sorted_accepted(self):
        res = simulate_stap_queue(np.arange(1.0, 4.0), np.ones(3), self.CFG)
        assert np.all(np.isfinite(res.completion_times))
