"""Tests for response-time metrics and the M/M/k closed forms."""

import math

import numpy as np
import pytest

from repro.queueing import (
    ResponseTimeSummary,
    absolute_percentage_error,
    erlang_c,
    mmk_mean_response,
    mmk_mean_wait,
    summarize_response_times,
)


class TestSummary:
    def test_basic_statistics(self):
        s = summarize_response_times(np.arange(1, 101, dtype=float))
        assert s.mean == pytest.approx(50.5)
        assert s.p50 == pytest.approx(50.5)
        assert s.p95 == pytest.approx(95.05)
        assert s.n == 100

    def test_speedup_over(self):
        fast = summarize_response_times([1.0, 1.0, 1.0, 1.0])
        slow = summarize_response_times([2.0, 2.0, 2.0, 2.0])
        sp = fast.speedup_over(slow)
        assert sp["mean"] == pytest.approx(2.0)
        assert sp["p95"] == pytest.approx(2.0)

    def test_fused_percentiles_exactly_match_separate_calls(self):
        # The summary computes all three quantiles from one
        # np.percentile call (one sort); this must be exact-equal to
        # the three-call formulation it replaced.
        rng = np.random.default_rng(17)
        for rt in (
            rng.lognormal(0.0, 0.8, size=999),
            np.arange(1.0, 42.0),
            np.array([3.0]),
        ):
            s = summarize_response_times(rt)
            assert s.p50 == float(np.percentile(rt, 50))
            assert s.p95 == float(np.percentile(rt, 95))
            assert s.p99 == float(np.percentile(rt, 99))

    def test_speedup_over_zero_quantile_is_inf(self):
        # Regression: response times are only required non-negative, so
        # zero-valued quantiles are legal; the old code divided by
        # self.p50/self.p99 unguarded and raised ZeroDivisionError.
        fast = ResponseTimeSummary(mean=0.5, p50=0.0, p95=1.0, p99=0.0, n=10)
        slow = summarize_response_times([2.0, 2.0, 2.0, 2.0])
        sp = fast.speedup_over(slow)
        assert sp["p50"] == float("inf")
        assert sp["p99"] == float("inf")
        assert sp["mean"] == pytest.approx(4.0)
        assert sp["p95"] == pytest.approx(2.0)

    def test_speedup_over_all_zero_summary(self):
        # Fully-instant service: every statistic reports inf, nothing
        # raises and nothing returns nan.
        zero = summarize_response_times([0.0, 0.0, 0.0])
        slow = summarize_response_times([1.0, 2.0, 3.0])
        sp = zero.speedup_over(slow)
        assert all(v == float("inf") for v in sp.values())
        # The reverse direction divides by the *non-zero* side: finite
        # numerator 0 over positive denominators -> all zeros.
        assert all(v == 0.0 for v in slow.speedup_over(zero).values())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_response_times([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            summarize_response_times([-1.0])


class TestApe:
    def test_values(self):
        ape = absolute_percentage_error([1.1, 0.9], [1.0, 1.0])
        assert np.allclose(ape, [0.1, 0.1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            absolute_percentage_error([1.0], [1.0, 2.0])

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            absolute_percentage_error([1.0], [0.0])


class TestErlangC:
    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_probability_bounds(self):
        for k in (1, 2, 5):
            for a in (0.1 * k, 0.5 * k, 0.9 * k):
                assert 0 <= erlang_c(k, a) <= 1

    def test_mm1_wait_formula(self):
        # E[W] for M/M/1 = rho / (mu - lambda).
        lam, mu = 0.7, 1.0
        assert mmk_mean_wait(lam, mu, 1) == pytest.approx(lam / (mu * (mu - lam)))

    def test_response_is_wait_plus_service(self):
        assert mmk_mean_response(0.5, 1.0, 2) == pytest.approx(
            mmk_mean_wait(0.5, 1.0, 2) + 1.0
        )

    def test_overload_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)

    def test_bad_servers_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(0, 0.5)


class TestAllenCunneen:
    def test_reduces_to_mmk(self):
        from repro.queueing import ggk_mean_wait_approx

        assert ggk_mean_wait_approx(0.7, 1.0, 1, ca2=1.0, cs2=1.0) == pytest.approx(
            mmk_mean_wait(0.7, 1.0, 1)
        )

    def test_deterministic_service_halves_wait(self):
        from repro.queueing import ggk_mean_wait_approx

        md1 = ggk_mean_wait_approx(0.7, 1.0, 1, ca2=1.0, cs2=0.0)
        mm1 = ggk_mean_wait_approx(0.7, 1.0, 1, ca2=1.0, cs2=1.0)
        assert md1 == pytest.approx(mm1 / 2)  # the classic M/D/1 result

    def test_matches_simulation_for_lognormal_service(self):
        from repro.queueing import StapQueueConfig, ggk_mean_response_approx
        from repro.queueing.ggk import simulate_stap_queue
        from repro.workloads import PoissonArrivals

        rng = np.random.default_rng(5)
        cv = 0.5
        n = 40000
        arrivals = PoissonArrivals(1.6).sample(n, rng=rng)
        sigma2 = np.log1p(cv**2)
        demands = rng.lognormal(-0.5 * sigma2, np.sqrt(sigma2), n)
        res = simulate_stap_queue(
            arrivals, demands, StapQueueConfig(n_servers=2)
        ).drop_warmup(0.1)
        approx = ggk_mean_response_approx(1.6, 1.0, 2, ca2=1.0, cs2=cv**2)
        assert res.response_times.mean() == pytest.approx(approx, rel=0.1)

    def test_validation(self):
        from repro.queueing import ggk_mean_wait_approx

        with pytest.raises(ValueError):
            ggk_mean_wait_approx(0.5, 1.0, 1, ca2=-1.0)
