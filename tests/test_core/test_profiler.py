"""Tests for the Stage 1 profiler."""

import numpy as np
import pytest

from repro.core import RuntimeCondition
from repro.core.profiler import Profiler, ProfilerSettings


class TestProfileCampaign:
    def test_rows_per_condition(self, small_dataset):
        """Each condition contributes up to n_windows rows per service."""
        conds = {id(r.condition) for r in small_dataset.rows}
        assert len(conds) == 8
        # 8 conditions x 2 services x 4 windows = 64 max (sparse windows skipped)
        assert 32 <= len(small_dataset) <= 64

    def test_ea_values_physical(self, small_dataset):
        ea = small_dataset.y_ea
        assert np.all(ea > 0)
        assert np.all(ea < 2.0)

    def test_both_services_represented(self, small_dataset):
        names = {r.service_name for r in small_dataset.rows}
        assert names == {"redis", "social"}

    def test_traces_padded_to_ticks(self, small_dataset):
        assert small_dataset.traces.shape[2] == 16

    def test_window_indices_assigned(self, small_dataset):
        idx = {r.window_idx for r in small_dataset.rows}
        assert idx <= {0, 1, 2, 3}
        assert len(idx) > 1


class TestProfilerApi:
    def test_empty_conditions_rejected(self):
        with pytest.raises(ValueError):
            Profiler(rng=0).profile([])

    def test_bad_n_jobs(self):
        with pytest.raises(ValueError):
            Profiler(n_jobs=0)

    def test_quick_ea_returns_per_service(self):
        p = Profiler(rng=3)
        cond = RuntimeCondition(("redis", "knn"), (0.8, 0.8), (0.5, 0.5))
        eas = p.quick_ea(cond, n_queries=150)
        assert eas.shape == (2,)
        assert np.all(np.isfinite(eas))

    def test_parallel_profiling_matches_row_count(self):
        settings = ProfilerSettings(n_queries=200, n_windows=2, trace_ticks=8)
        conds = [
            RuntimeCondition(("jacobi", "bfs"), (0.7, 0.7), (1.0, 1.0)),
            RuntimeCondition(("jacobi", "bfs"), (0.5, 0.5), (2.0, 2.0)),
        ]
        serial = Profiler(settings=settings, n_jobs=1, rng=9).profile(conds)
        parallel = Profiler(settings=settings, n_jobs=2, rng=9).profile(conds)
        assert len(serial) == len(parallel)
        assert np.allclose(serial.y_ea, parallel.y_ea)

    def test_deterministic_given_seed(self):
        settings = ProfilerSettings(n_queries=150, n_windows=2, trace_ticks=8)
        cond = [RuntimeCondition(("redis", "knn"), (0.8, 0.8), (0.5, 0.5))]
        a = Profiler(settings=settings, rng=5).profile(cond)
        b = Profiler(settings=settings, rng=5).profile(cond)
        assert np.allclose(a.y_ea, b.y_ea)
        assert np.allclose(a.traces, b.traces)


class TestSignalPresence:
    def test_timeout_affects_ea(self):
        """Tight timeouts should produce different EA than no STA at all —
        the signal Stage 2 must learn."""
        p = Profiler(rng=11)
        tight = p.quick_ea(
            RuntimeCondition(("redis", "social"), (0.9, 0.9), (0.2, 0.2)),
            n_queries=400,
        )
        never = p.quick_ea(
            RuntimeCondition(("redis", "social"), (0.9, 0.9), (6.0, 6.0)),
            n_queries=400,
        )
        assert tight[0] > never[0]  # redis boosts often -> higher measured EA
