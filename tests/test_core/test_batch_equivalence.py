"""Bit-identity of the batched simulation paths against their serial
counterparts, at every consumer level: ``simulate_many`` vs
``simulate``, ``predict_conditions`` vs ``predict_condition``, and the
batched vs serial timeout exploration (including the acceptance
guarantee that ``model_driven_policy`` picks the identical vector)."""

import numpy as np
import pytest

from repro.core import ResponseTimeModel, RuntimeCondition, StacModel
from repro.core.policy_search import (
    explore_timeouts,
    model_driven_policy,
    slo_matching,
)
from repro.core.rt_model import MIN_BATCH_CONDITIONS

FAST_DF = dict(
    windows=[(5, 5)],
    mgs_estimators=5,
    mgs_max_instances=2000,
    n_levels=1,
    forests_per_level=2,
    n_estimators=10,
)

PAIR = ("redis", "social")
UTILS = (0.9, 0.85)
GRID = (0.0, 0.5, 2.0)


@pytest.fixture(scope="module")
def fitted_fast(small_dataset):
    model = StacModel(rng=0, sim_queries=600, **FAST_DF)
    return model.fit(small_dataset)


def _sample_conditions(n):
    rng = np.random.default_rng(42)
    return [
        dict(
            utilization=float(rng.uniform(0.4, 0.95)),
            timeout=float(rng.choice([0.0, 0.5, 1.5, np.inf])),
            gross_increase=float(rng.uniform(1.0, 3.0)),
            effective_allocation=float(rng.uniform(0.3, 1.5)),
            service_cv=float(rng.choice([0.0, 0.35])),
            mean_service_time=float(rng.uniform(0.7, 1.2)),
        )
        for _ in range(n)
    ]


class TestSimulateMany:
    def test_bit_identical_to_serial(self):
        model = ResponseTimeModel(n_queries=500, rng=7)
        conds = _sample_conditions(MIN_BATCH_CONDITIONS + 3)
        serial = [model.simulate(**c) for c in conds]
        for use_batch in (True, False, None):
            assert model.simulate_many(conds, use_batch=use_batch) == serial

    def test_empty(self):
        assert ResponseTimeModel(rng=0).simulate_many([]) == []

    def test_auto_dispatch_thresholds(self):
        model = ResponseTimeModel(n_queries=200, rng=1)
        few = _sample_conditions(MIN_BATCH_CONDITIONS - 1)
        many = _sample_conditions(MIN_BATCH_CONDITIONS)
        # Either side of the crossover must agree with forced paths.
        assert model.simulate_many(few) == model.simulate_many(
            few, use_batch=True
        )
        assert model.simulate_many(many) == model.simulate_many(
            many, use_batch=False
        )

    @pytest.mark.parametrize(
        "field,bad",
        [
            ("utilization", 1.5),
            ("effective_allocation", 0.0),
            ("mean_service_time", -1.0),
        ],
    )
    def test_validation_matches_simulate(self, field, bad):
        model = ResponseTimeModel(n_queries=200, rng=2)
        conds = _sample_conditions(MIN_BATCH_CONDITIONS + 1)
        conds[3][field] = bad
        with pytest.raises(ValueError):
            model.simulate_many(conds, use_batch=True)
        with pytest.raises(ValueError):
            model.simulate(**conds[3])


class TestPredictConditions:
    def _conditions(self):
        return [
            RuntimeCondition(
                workloads=PAIR, utilizations=UTILS, timeouts=timeouts
            )
            for timeouts in ((0.0, 1.0), (0.5, 0.5), (np.inf, 0.0), (2.0, np.inf))
        ]

    def _assert_same(self, a, b):
        assert a.summaries == b.summaries
        assert np.array_equal(a.effective_allocations, b.effective_allocations)
        assert np.array_equal(a.boost_fractions, b.boost_fractions)
        assert np.array_equal(a.X_flat, b.X_flat)
        assert np.array_equal(a.traces, b.traces)

    def test_lockstep_matches_per_condition(self, fitted_fast):
        conds = self._conditions()
        singles = [fitted_fast.predict_condition(c) for c in conds]
        for use_batch in (True, False):
            batched = fitted_fast.predict_conditions(conds, use_batch=use_batch)
            for a, b in zip(singles, batched):
                self._assert_same(a, b)

    def test_lockstep_matches_with_tolerance(self, fitted_fast):
        # With ea_tol > 0 conditions leave the lockstep as they
        # converge — each must still match its standalone run.
        conds = self._conditions()
        singles = [
            fitted_fast.predict_condition(c, ea_tol=0.05) for c in conds
        ]
        batched = fitted_fast.predict_conditions(
            conds, ea_tol=0.05, use_batch=True
        )
        for a, b in zip(singles, batched):
            self._assert_same(a, b)

    def test_ea_inits_length_mismatch(self, fitted_fast):
        with pytest.raises(ValueError, match="ea_inits"):
            fitted_fast.predict_conditions(
                self._conditions()[:2], ea_inits=[None]
            )


class TestExploreBatched:
    def test_batch_matches_serial_and_policy_vector(self, fitted_fast):
        combos_b, rt_b = explore_timeouts(
            fitted_fast, PAIR, UTILS, GRID, batch=True
        )
        combos_s, rt_s = explore_timeouts(
            fitted_fast, PAIR, UTILS, GRID, batch=False
        )
        assert combos_b == combos_s
        assert np.array_equal(rt_b, rt_s)
        assert slo_matching(rt_b) == slo_matching(rt_s)
        # The headline acceptance guarantee: the recommended timeout
        # vector is identical with and without the batched kernel.
        db = model_driven_policy(fitted_fast, PAIR, UTILS, GRID, batch=True)
        ds = model_driven_policy(fitted_fast, PAIR, UTILS, GRID, batch=False)
        assert db.timeouts == ds.timeouts

    def test_chunked_workers_bit_identical(self, fitted_fast):
        # Chunked distribution (model pickled once per chunk) must not
        # change a single bit of the response-time matrix.
        _, rt1 = explore_timeouts(fitted_fast, PAIR, UTILS, GRID, n_jobs=1)
        _, rt2 = explore_timeouts(fitted_fast, PAIR, UTILS, GRID, n_jobs=2)
        assert np.array_equal(rt1, rt2)
