"""Tests for dataset/forest persistence."""

import numpy as np
import pytest

from repro.core import ProfileDataset
from repro.core.io import (
    load_dataset,
    load_packed_forest,
    save_dataset,
    save_packed_forest,
)
from repro.forest import PackedForest, RandomForestRegressor


class TestDatasetRoundtrip:
    def test_arrays_preserved(self, small_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset(path, small_dataset)
        loaded = load_dataset(path)
        assert len(loaded) == len(small_dataset)
        assert np.allclose(loaded.X_flat, small_dataset.X_flat)
        assert np.allclose(loaded.traces, small_dataset.traces)
        assert np.allclose(loaded.y_ea, small_dataset.y_ea)
        assert np.allclose(loaded.y_rt_p95, small_dataset.y_rt_p95)

    def test_conditions_shared_after_load(self, small_dataset, tmp_path):
        """Rows of one run must share a condition object so that
        condition-level splits still work."""
        path = tmp_path / "ds.npz"
        save_dataset(path, small_dataset)
        loaded = load_dataset(path)
        assert len(loaded.conditions()) == len(small_dataset.conditions())
        tr, te = loaded.split_conditions(0.5, rng=0)
        assert len(tr) + len(te) == len(loaded)

    def test_infinite_timeouts_survive(self, tmp_path, small_dataset):
        import dataclasses

        row = small_dataset.rows[0]
        from repro.core import RuntimeCondition

        inf_cond = RuntimeCondition(("redis", "social"), (0.5, 0.5), (np.inf, 1.0))
        ds = ProfileDataset(rows=[dataclasses.replace(row, condition=inf_cond)])
        path = tmp_path / "inf.npz"
        save_dataset(path, ds)
        loaded = load_dataset(path)
        assert np.isinf(loaded.rows[0].condition.timeouts[0])
        assert loaded.rows[0].condition.timeouts[1] == 1.0

    def test_trained_model_matches_after_roundtrip(self, small_dataset, tmp_path):
        from repro.core import EAModel

        path = tmp_path / "ds.npz"
        save_dataset(path, small_dataset)
        loaded = load_dataset(path)
        m1 = EAModel(learner="linear").fit(small_dataset)
        m2 = EAModel(learner="linear").fit(loaded)
        assert np.allclose(
            m1.predict_dataset(small_dataset), m2.predict_dataset(loaded)
        )

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_dataset(tmp_path / "x.npz", ProfileDataset())


class TestPackedForestRoundtrip:
    def test_predictions_identical(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(150, 4))
        y = X[:, 0] * 2 + np.sin(4 * X[:, 1])
        forest = RandomForestRegressor(n_estimators=8, rng=0).fit(X, y)
        packed = PackedForest.from_forest(forest)
        path = tmp_path / "forest.npz"
        save_packed_forest(path, packed)
        loaded = load_packed_forest(path)
        Xt = rng.uniform(size=(40, 4))
        assert np.allclose(loaded.predict(Xt), packed.predict(Xt))
        assert loaded.n_trees == packed.n_trees
        assert loaded.max_depth == packed.max_depth
