"""Tests for the EA model, RT model, pipeline and policy search."""

import numpy as np
import pytest

from repro.analysis import median_ape
from repro.core import EAModel, ResponseTimeModel, RuntimeCondition, StacModel
from repro.core.ea import ideal_effective_allocation
from repro.core.policy_search import (
    DEFAULT_TIMEOUT_GRID,
    explore_timeouts,
    model_driven_policy,
    slo_matching,
)
from repro.workloads import get_workload
from repro.workloads.base import MB

FAST_DF = dict(
    windows=[(5, 5)],
    mgs_estimators=5,
    mgs_max_instances=2000,
    n_levels=1,
    forests_per_level=2,
    n_estimators=10,
)


@pytest.fixture(scope="module")
def fitted(small_dataset):
    train, test = small_dataset.split(0.5, rng=0)
    model = StacModel(rng=0, **FAST_DF).fit(train)
    return model, train, test


class TestIdealEA:
    def test_range(self):
        spec = get_workload("redis")
        ea = ideal_effective_allocation(spec, 2 * MB, 2 * MB, 2.0)
        assert 0.5 < ea <= 1.0  # boosted speedup in (1, gross]

    def test_matches_mrc_speedup(self):
        spec = get_workload("redis")
        ea = ideal_effective_allocation(spec, 2 * MB, 2 * MB, 2.0)
        assert ea == pytest.approx(spec.speedup(4 * MB) / 2.0)

    def test_compute_bound_floor(self):
        """A capacity-insensitive workload gains nothing: EA = 1/gross."""
        from dataclasses import replace

        spec = replace(get_workload("redis"), memory_boundedness=0.0)
        ea = ideal_effective_allocation(spec, 2 * MB, 2 * MB, 2.0)
        assert ea == pytest.approx(0.5)


class TestEAModel:
    @pytest.mark.parametrize("learner", ["random_forest", "tree", "linear"])
    def test_flat_learners_fit_and_predict(self, small_dataset, learner):
        train, test = small_dataset.split(0.5, rng=1)
        m = EAModel(learner=learner, rng=0).fit(train)
        pred = m.predict_dataset(test)
        assert pred.shape == (len(test),)
        assert np.all((pred >= 0.05) & (pred <= 2.0))

    def test_deep_forest_ea_accuracy(self, small_dataset):
        train, test = small_dataset.split(0.5, rng=2)
        df = EAModel(learner="deep_forest", rng=0, **FAST_DF).fit(train)
        err_df = median_ape(df.predict_dataset(test), test.y_ea)
        # Even the fast test configuration should track EA closely; the
        # full model-vs-baseline comparison lives in the Fig. 6 bench.
        assert err_df < 0.10

    def test_concept_features_available(self, small_dataset):
        train, _ = small_dataset.split(0.5, rng=3)
        m = EAModel(learner="cascade", rng=0, n_levels=2, forests_per_level=2,
                    n_estimators=8).fit(train)
        feats = m.concept_features(train.X_flat, train.traces)
        assert feats.shape == (len(train), 4)

    def test_concept_features_unsupported_learner(self, small_dataset):
        train, _ = small_dataset.split(0.5, rng=3)
        m = EAModel(learner="linear", rng=0).fit(train)
        with pytest.raises(ValueError):
            m.concept_features(train.X_flat, train.traces)

    def test_unknown_learner(self):
        with pytest.raises(ValueError):
            EAModel(learner="svm")

    def test_unfitted_raises(self, small_dataset):
        with pytest.raises(RuntimeError):
            EAModel(learner="linear").predict_dataset(small_dataset)

    def test_empty_dataset_rejected(self):
        from repro.core import ProfileDataset

        with pytest.raises(ValueError):
            EAModel(learner="linear").fit(ProfileDataset())


class TestResponseTimeModel:
    def test_deterministic(self):
        m = ResponseTimeModel(rng=0)
        a = m.predict_response_time(0.9, 1.0, 2.0, 0.8)
        b = m.predict_response_time(0.9, 1.0, 2.0, 0.8)
        assert a == b

    def test_higher_ea_lower_response_time(self):
        m = ResponseTimeModel(rng=0)
        lo = m.predict_response_time(0.9, 0.5, 2.0, 0.55)
        hi = m.predict_response_time(0.9, 0.5, 2.0, 0.95)
        assert hi.mean < lo.mean

    def test_feedback_fields(self):
        m = ResponseTimeModel(rng=0)
        fb = m.simulate(0.9, 1.0, 2.0, 0.9)
        assert fb.mean_wait >= 0
        assert 0 <= fb.boost_fraction <= 1

    def test_validation(self):
        m = ResponseTimeModel(rng=0)
        with pytest.raises(ValueError):
            m.simulate(1.2, 1.0, 2.0, 0.9)
        with pytest.raises(ValueError):
            m.simulate(0.5, 1.0, 2.0, 0.0)
        with pytest.raises(ValueError):
            m.simulate(0.5, 1.0, 2.0, 0.9, mean_service_time=0.0)
        with pytest.raises(ValueError):
            ResponseTimeModel(n_servers=0)

    def test_faster_default_service_lowers_response_time(self):
        """A default allocation above baseline (mean service < 1) gives
        lower normalized response times at the same utilization."""
        m = ResponseTimeModel(rng=0)
        slow = m.predict_response_time(0.8, np.inf, 2.0, 0.5)
        fast = m.predict_response_time(
            0.8, np.inf, 2.0, 0.5, mean_service_time=0.8
        )
        assert fast.mean < slow.mean

    def test_timeout_reference_is_baseline_clock(self):
        """Eq. 4's warning is relative to the baseline service time, so
        the same timeout triggers *more* often when the default service
        is faster (queries finish sooner relative to the warning)."""
        m = ResponseTimeModel(rng=0)
        base = m.simulate(0.9, 1.0, 2.0, 0.9)
        fast = m.simulate(0.9, 1.0, 2.0, 0.9, mean_service_time=0.8)
        assert fast.boost_fraction < base.boost_fraction


class TestStacModel:
    def test_predict_rows_accuracy(self, fitted):
        model, _, test = fitted
        pred = model.predict_rows(test)
        # Even the fast configuration should be well under 50% median APE.
        assert median_ape(pred["rt_mean"], test.y_rt_mean) < 0.5
        assert pred["ea"].shape == (len(test),)

    def test_predict_condition_structure(self, fitted):
        model, _, _ = fitted
        cond = RuntimeCondition(("redis", "social"), (0.9, 0.9), (1.0, 1.0))
        out = model.predict_condition(cond)
        assert len(out.summaries) == 2
        assert out.effective_allocations.shape == (2,)
        assert all(s.mean > 0 for s in out.summaries)

    def test_predict_condition_sees_timeout_effect(self, fitted):
        model, _, _ = fitted
        tight = model.predict_condition(
            RuntimeCondition(("redis", "social"), (0.9, 0.9), (0.2, 0.2))
        )
        never = model.predict_condition(
            RuntimeCondition(("redis", "social"), (0.9, 0.9), (6.0, 6.0))
        )
        # STA with a tight timeout should predict lower response time.
        assert tight.summaries[0].p95 < never.summaries[0].p95

    def test_empty_rows_rejected(self, fitted):
        from repro.core import ProfileDataset

        model, _, _ = fitted
        with pytest.raises(ValueError):
            model.predict_rows(ProfileDataset())

    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            StacModel(n_iterations=0)


class TestSloMatching:
    def test_picks_joint_optimum(self):
        rt = np.array([[1.0, 5.0], [5.0, 1.0], [1.04, 1.04]])
        assert slo_matching(rt, tolerance=0.05) == 2

    def test_relaxes_when_no_intersection(self):
        rt = np.array([[1.0, 2.0], [2.0, 1.0]])
        idx = slo_matching(rt, tolerance=0.01)
        assert idx in (0, 1)

    def test_single_service(self):
        rt = np.array([[3.0], [1.0], [2.0]])
        assert slo_matching(rt) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            slo_matching(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            slo_matching(np.array([[1.0, -1.0]]))


class TestPolicySearch:
    def test_explore_shapes(self, fitted):
        model, _, _ = fitted
        combos, rt = explore_timeouts(
            model, ("redis", "social"), (0.9, 0.9), timeout_grid=(0.5, 2.0)
        )
        assert len(combos) == 4
        assert rt.shape == (4, 2)

    def test_model_driven_policy_from_grid(self, fitted):
        model, _, _ = fitted
        pol = model_driven_policy(
            model, ("redis", "social"), (0.9, 0.9), timeout_grid=(0.5, 2.0)
        )
        assert pol.name == "model-driven"
        assert all(t in (0.5, 2.0) for t in pol.timeouts)

    def test_bad_statistic(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError):
            explore_timeouts(
                model, ("redis", "social"), (0.9, 0.9), statistic="max"
            )

    def test_default_grid_is_paperlike(self):
        assert len(DEFAULT_TIMEOUT_GRID) == 5


class TestSloMatchingEdgeCases:
    def test_single_service_relaxation(self):
        """One service: the per-service optimum always wins, even when
        the initial tolerance band holds only that combination."""
        rt = np.array([[2.0], [1.0], [1.9]])
        assert slo_matching(rt, tolerance=0.001) == 1

    def test_empty_intersection_relaxes_to_compromise(self):
        """No combination satisfies every service at the base tolerance;
        geometric relaxation must find the balanced compromise rather
        than either service's lopsided optimum."""
        rt = np.array([[1.0, 3.0], [3.0, 1.0], [1.5, 1.5]])
        assert slo_matching(rt, tolerance=0.01) == 2

    def test_tie_break_by_minimax_regret(self):
        """All combinations fall inside the tolerance band; the one with
        the smallest worst-case relative regret wins."""
        rt = np.array([[1.0, 1.04], [1.04, 1.0], [1.02, 1.02]])
        assert slo_matching(rt, tolerance=0.05) == 2

    def test_identical_rows_pick_first(self):
        rt = np.ones((4, 3))
        assert slo_matching(rt) == 0

    def test_wide_matrix_many_services(self):
        rng = np.random.default_rng(0)
        rt = rng.uniform(1.0, 2.0, size=(25, 6))
        idx = slo_matching(rt, tolerance=0.05)
        assert 0 <= idx < 25
        # The pick never has worse minimax regret than the global one.
        regret = (rt / rt.min(axis=0)).max(axis=1)
        assert regret[idx] <= regret.min() * (1 + 1e-12)


class TestParallelPolicySearch:
    def test_parallel_matches_serial_bitwise(self, fitted):
        model, _, _ = fitted
        combos1, rt1 = explore_timeouts(
            model, ("redis", "social"), (0.9, 0.9), timeout_grid=(0.5, 2.0)
        )
        combos2, rt2 = explore_timeouts(
            model,
            ("redis", "social"),
            (0.9, 0.9),
            timeout_grid=(0.5, 2.0),
            n_jobs=2,
        )
        assert combos1 == combos2
        assert np.array_equal(rt1, rt2)

    def test_policy_identical_across_njobs(self, fitted):
        model, _, _ = fitted
        serial = model_driven_policy(
            model, ("redis", "social"), (0.9, 0.9), timeout_grid=(0.5, 2.0)
        )
        parallel = model_driven_policy(
            model,
            ("redis", "social"),
            (0.9, 0.9),
            timeout_grid=(0.5, 2.0),
            n_jobs=2,
        )
        assert serial.timeouts == parallel.timeouts

    def test_warm_start_parallel_matches_serial(self, fitted):
        """Warm-starting changes predictions slightly but must stay
        bit-identical between serial and parallel execution."""
        model, _, _ = fitted
        _, cold = explore_timeouts(
            model, ("redis", "social"), (0.9, 0.9), timeout_grid=(0.5, 2.0)
        )
        _, warm1 = explore_timeouts(
            model,
            ("redis", "social"),
            (0.9, 0.9),
            timeout_grid=(0.5, 2.0),
            warm_start=True,
        )
        _, warm2 = explore_timeouts(
            model,
            ("redis", "social"),
            (0.9, 0.9),
            timeout_grid=(0.5, 2.0),
            warm_start=True,
            n_jobs=2,
        )
        assert np.array_equal(warm1, warm2)
        # Warm-started predictions track the cold fixed point closely.
        assert np.allclose(warm1, cold, rtol=0.2)

    def test_bad_njobs(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError):
            explore_timeouts(model, ("redis",), (0.9,), n_jobs=0)

    def test_empty_grid(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError):
            explore_timeouts(model, ("redis",), (0.9,), timeout_grid=())


class TestConditionWarmStart:
    def test_ea_init_shape_validation(self, fitted):
        model, _, _ = fitted
        cond = RuntimeCondition(("redis", "social"), (0.9, 0.9), (1.0, 1.0))
        with pytest.raises(ValueError):
            model.predict_condition(cond, ea_init=np.array([0.8]))
        with pytest.raises(ValueError):
            model.predict_condition(cond, ea_init=np.array([0.8, -0.1]))

    def test_converged_init_exits_early(self, fitted):
        """Re-seeding with the converged EAs and a tolerance reproduces
        the fixed point without re-running every iteration."""
        model, _, _ = fitted
        cond = RuntimeCondition(("redis", "social"), (0.9, 0.9), (1.0, 1.0))
        cold = model.predict_condition(cond)
        warm = model.predict_condition(
            cond, ea_init=cold.effective_allocations, ea_tol=0.05
        )
        assert np.allclose(
            warm.effective_allocations, cold.effective_allocations, atol=0.1
        )
        assert all(s.p95 > 0 for s in warm.summaries)

    def test_default_path_unchanged_by_new_params(self, fitted):
        model, _, _ = fitted
        cond = RuntimeCondition(("redis", "social"), (0.9, 0.9), (1.0, 1.0))
        a = model.predict_condition(cond)
        b = model.predict_condition(cond, ea_init=None, ea_tol=0.0)
        assert np.array_equal(a.effective_allocations, b.effective_allocations)
        assert a.summaries[0].p95 == b.summaries[0].p95
