"""Tests for the EA model, RT model, pipeline and policy search."""

import numpy as np
import pytest

from repro.analysis import median_ape
from repro.core import EAModel, ResponseTimeModel, RuntimeCondition, StacModel
from repro.core.ea import ideal_effective_allocation
from repro.core.policy_search import (
    DEFAULT_TIMEOUT_GRID,
    explore_timeouts,
    model_driven_policy,
    slo_matching,
)
from repro.workloads import get_workload
from repro.workloads.base import MB

FAST_DF = dict(
    windows=[(5, 5)],
    mgs_estimators=5,
    mgs_max_instances=2000,
    n_levels=1,
    forests_per_level=2,
    n_estimators=10,
)


@pytest.fixture(scope="module")
def fitted(small_dataset):
    train, test = small_dataset.split(0.5, rng=0)
    model = StacModel(rng=0, **FAST_DF).fit(train)
    return model, train, test


class TestIdealEA:
    def test_range(self):
        spec = get_workload("redis")
        ea = ideal_effective_allocation(spec, 2 * MB, 2 * MB, 2.0)
        assert 0.5 < ea <= 1.0  # boosted speedup in (1, gross]

    def test_matches_mrc_speedup(self):
        spec = get_workload("redis")
        ea = ideal_effective_allocation(spec, 2 * MB, 2 * MB, 2.0)
        assert ea == pytest.approx(spec.speedup(4 * MB) / 2.0)

    def test_compute_bound_floor(self):
        """A capacity-insensitive workload gains nothing: EA = 1/gross."""
        from dataclasses import replace

        spec = replace(get_workload("redis"), memory_boundedness=0.0)
        ea = ideal_effective_allocation(spec, 2 * MB, 2 * MB, 2.0)
        assert ea == pytest.approx(0.5)


class TestEAModel:
    @pytest.mark.parametrize("learner", ["random_forest", "tree", "linear"])
    def test_flat_learners_fit_and_predict(self, small_dataset, learner):
        train, test = small_dataset.split(0.5, rng=1)
        m = EAModel(learner=learner, rng=0).fit(train)
        pred = m.predict_dataset(test)
        assert pred.shape == (len(test),)
        assert np.all((pred >= 0.05) & (pred <= 2.0))

    def test_deep_forest_ea_accuracy(self, small_dataset):
        train, test = small_dataset.split(0.5, rng=2)
        df = EAModel(learner="deep_forest", rng=0, **FAST_DF).fit(train)
        err_df = median_ape(df.predict_dataset(test), test.y_ea)
        # Even the fast test configuration should track EA closely; the
        # full model-vs-baseline comparison lives in the Fig. 6 bench.
        assert err_df < 0.10

    def test_concept_features_available(self, small_dataset):
        train, _ = small_dataset.split(0.5, rng=3)
        m = EAModel(learner="cascade", rng=0, n_levels=2, forests_per_level=2,
                    n_estimators=8).fit(train)
        feats = m.concept_features(train.X_flat, train.traces)
        assert feats.shape == (len(train), 4)

    def test_concept_features_unsupported_learner(self, small_dataset):
        train, _ = small_dataset.split(0.5, rng=3)
        m = EAModel(learner="linear", rng=0).fit(train)
        with pytest.raises(ValueError):
            m.concept_features(train.X_flat, train.traces)

    def test_unknown_learner(self):
        with pytest.raises(ValueError):
            EAModel(learner="svm")

    def test_unfitted_raises(self, small_dataset):
        with pytest.raises(RuntimeError):
            EAModel(learner="linear").predict_dataset(small_dataset)

    def test_empty_dataset_rejected(self):
        from repro.core import ProfileDataset

        with pytest.raises(ValueError):
            EAModel(learner="linear").fit(ProfileDataset())


class TestResponseTimeModel:
    def test_deterministic(self):
        m = ResponseTimeModel(rng=0)
        a = m.predict_response_time(0.9, 1.0, 2.0, 0.8)
        b = m.predict_response_time(0.9, 1.0, 2.0, 0.8)
        assert a == b

    def test_higher_ea_lower_response_time(self):
        m = ResponseTimeModel(rng=0)
        lo = m.predict_response_time(0.9, 0.5, 2.0, 0.55)
        hi = m.predict_response_time(0.9, 0.5, 2.0, 0.95)
        assert hi.mean < lo.mean

    def test_feedback_fields(self):
        m = ResponseTimeModel(rng=0)
        fb = m.simulate(0.9, 1.0, 2.0, 0.9)
        assert fb.mean_wait >= 0
        assert 0 <= fb.boost_fraction <= 1

    def test_validation(self):
        m = ResponseTimeModel(rng=0)
        with pytest.raises(ValueError):
            m.simulate(1.2, 1.0, 2.0, 0.9)
        with pytest.raises(ValueError):
            m.simulate(0.5, 1.0, 2.0, 0.0)
        with pytest.raises(ValueError):
            m.simulate(0.5, 1.0, 2.0, 0.9, mean_service_time=0.0)
        with pytest.raises(ValueError):
            ResponseTimeModel(n_servers=0)

    def test_faster_default_service_lowers_response_time(self):
        """A default allocation above baseline (mean service < 1) gives
        lower normalized response times at the same utilization."""
        m = ResponseTimeModel(rng=0)
        slow = m.predict_response_time(0.8, np.inf, 2.0, 0.5)
        fast = m.predict_response_time(
            0.8, np.inf, 2.0, 0.5, mean_service_time=0.8
        )
        assert fast.mean < slow.mean

    def test_timeout_reference_is_baseline_clock(self):
        """Eq. 4's warning is relative to the baseline service time, so
        the same timeout triggers *more* often when the default service
        is faster (queries finish sooner relative to the warning)."""
        m = ResponseTimeModel(rng=0)
        base = m.simulate(0.9, 1.0, 2.0, 0.9)
        fast = m.simulate(0.9, 1.0, 2.0, 0.9, mean_service_time=0.8)
        assert fast.boost_fraction < base.boost_fraction


class TestStacModel:
    def test_predict_rows_accuracy(self, fitted):
        model, _, test = fitted
        pred = model.predict_rows(test)
        # Even the fast configuration should be well under 50% median APE.
        assert median_ape(pred["rt_mean"], test.y_rt_mean) < 0.5
        assert pred["ea"].shape == (len(test),)

    def test_predict_condition_structure(self, fitted):
        model, _, _ = fitted
        cond = RuntimeCondition(("redis", "social"), (0.9, 0.9), (1.0, 1.0))
        out = model.predict_condition(cond)
        assert len(out.summaries) == 2
        assert out.effective_allocations.shape == (2,)
        assert all(s.mean > 0 for s in out.summaries)

    def test_predict_condition_sees_timeout_effect(self, fitted):
        model, _, _ = fitted
        tight = model.predict_condition(
            RuntimeCondition(("redis", "social"), (0.9, 0.9), (0.2, 0.2))
        )
        never = model.predict_condition(
            RuntimeCondition(("redis", "social"), (0.9, 0.9), (6.0, 6.0))
        )
        # STA with a tight timeout should predict lower response time.
        assert tight.summaries[0].p95 < never.summaries[0].p95

    def test_empty_rows_rejected(self, fitted):
        from repro.core import ProfileDataset

        model, _, _ = fitted
        with pytest.raises(ValueError):
            model.predict_rows(ProfileDataset())

    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            StacModel(n_iterations=0)


class TestSloMatching:
    def test_picks_joint_optimum(self):
        rt = np.array([[1.0, 5.0], [5.0, 1.0], [1.04, 1.04]])
        assert slo_matching(rt, tolerance=0.05) == 2

    def test_relaxes_when_no_intersection(self):
        rt = np.array([[1.0, 2.0], [2.0, 1.0]])
        idx = slo_matching(rt, tolerance=0.01)
        assert idx in (0, 1)

    def test_single_service(self):
        rt = np.array([[3.0], [1.0], [2.0]])
        assert slo_matching(rt) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            slo_matching(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            slo_matching(np.array([[1.0, -1.0]]))


class TestPolicySearch:
    def test_explore_shapes(self, fitted):
        model, _, _ = fitted
        combos, rt = explore_timeouts(
            model, ("redis", "social"), (0.9, 0.9), timeout_grid=(0.5, 2.0)
        )
        assert len(combos) == 4
        assert rt.shape == (4, 2)

    def test_model_driven_policy_from_grid(self, fitted):
        model, _, _ = fitted
        pol = model_driven_policy(
            model, ("redis", "social"), (0.9, 0.9), timeout_grid=(0.5, 2.0)
        )
        assert pol.name == "model-driven"
        assert all(t in (0.5, 2.0) for t in pol.timeouts)

    def test_bad_statistic(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError):
            explore_timeouts(
                model, ("redis", "social"), (0.9, 0.9), statistic="max"
            )

    def test_default_grid_is_paperlike(self):
        assert len(DEFAULT_TIMEOUT_GRID) == 5
