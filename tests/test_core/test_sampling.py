"""Tests for uniform and stratified condition sampling."""

import numpy as np
import pytest

from repro.core import stratified_conditions, uniform_conditions
from repro.core.sampling import TIMEOUT_RANGE, UTIL_RANGE


def fake_measure(condition):
    """Deterministic stand-in for a seed EA measurement: EA falls with
    both services' timeouts (the rough true trend)."""
    t = np.asarray(condition.timeouts)
    return 1.0 / (1.0 + t)


class TestUniform:
    def test_count_and_ranges(self):
        conds = uniform_conditions(("a", "b"), n=30, rng=0)
        assert len(conds) == 30
        for c in conds:
            assert all(UTIL_RANGE[0] <= u <= UTIL_RANGE[1] for u in c.utilizations)
            assert all(TIMEOUT_RANGE[0] <= t <= TIMEOUT_RANGE[1] for t in c.timeouts)
            assert c.workloads == ("a", "b")

    def test_reproducible(self):
        a = uniform_conditions(("a", "b"), 5, rng=1)
        b = uniform_conditions(("a", "b"), 5, rng=1)
        assert [c.timeouts for c in a] == [c.timeouts for c in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_conditions(("a",), 0)


class TestStratified:
    def test_count(self):
        conds = stratified_conditions(
            ("a", "b"), n=20, measure_ea=fake_measure, n_seeds=6, rng=0
        )
        assert len(conds) == 20

    def test_all_seeds_case(self):
        conds = stratified_conditions(
            ("a", "b"), n=4, measure_ea=fake_measure, n_seeds=4, rng=0
        )
        assert len(conds) == 4

    def test_generated_conditions_in_range(self):
        conds = stratified_conditions(
            ("a", "b"), n=25, measure_ea=fake_measure, n_seeds=8, rng=1
        )
        for c in conds:
            assert all(UTIL_RANGE[0] <= u <= UTIL_RANGE[1] for u in c.utilizations)
            assert all(TIMEOUT_RANGE[0] <= t <= TIMEOUT_RANGE[1] for t in c.timeouts)

    def test_balances_budget_across_ea_clusters(self):
        """A rare EA regime (small corner of condition space) must get a
        fair share of the budget, unlike under uniform sampling."""

        def corner_measure(condition):
            # Distinct EA only when both timeouts are tight — a regime
            # covering ~14% of the sampled space.
            rare = all(t < 1.0 for t in condition.timeouts)
            return np.array([0.9, 0.9]) if rare else np.array([0.5, 0.5])

        n_seeds = 10
        conds = stratified_conditions(
            ("a", "b"), n=50, measure_ea=corner_measure, n_seeds=n_seeds,
            n_clusters=2, rng=3,
        )
        generated = conds[n_seeds:]
        rare_frac = np.mean(
            [all(t < 1.0 for t in c.timeouts) for c in generated]
        )
        assert rare_frac > 0.3  # uniform draws would give ~0.14

    def test_validation(self):
        with pytest.raises(ValueError):
            stratified_conditions(("a",), 0, measure_ea=fake_measure)
