"""Tests for policy-aware anchor conditions."""

import numpy as np
import pytest

from repro.core.sampling import grid_anchor_conditions


class TestGridAnchors:
    def test_covers_corners(self):
        conds = grid_anchor_conditions(("a", "b"), 0.9, timeout_grid=(0.0, 1.0, 4.0))
        vectors = {c.timeouts for c in conds}
        assert (0.0, 0.0) in vectors
        assert (4.0, 4.0) in vectors
        assert (0.0, 4.0) in vectors and (4.0, 0.0) in vectors
        assert (1.0, 1.0) in vectors  # mid diagonal

    def test_all_at_target_utilization(self):
        conds = grid_anchor_conditions(("a", "b"), 0.85)
        assert all(c.utilizations == (0.85, 0.85) for c in conds)

    def test_no_duplicates(self):
        conds = grid_anchor_conditions(("a", "b"), 0.9)
        vectors = [c.timeouts for c in conds]
        assert len(vectors) == len(set(vectors))

    def test_three_service_chain(self):
        conds = grid_anchor_conditions(("a", "b", "c"), 0.9, timeout_grid=(0.0, 2.0))
        vectors = {c.timeouts for c in conds}
        assert (0.0, 0.0, 0.0) in vectors
        assert (2.0, 2.0, 2.0) in vectors
        # Each service alone at either extreme.
        assert (0.0, 2.0, 2.0) in vectors
        assert (2.0, 0.0, 2.0) in vectors

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_anchor_conditions(("a",), 1.2)
        with pytest.raises(ValueError):
            grid_anchor_conditions(("a",), 0.5, timeout_grid=())

    def test_anchors_cover_the_hole_uniform_leaves(self):
        """The motivating property: anchors include high-concurrency
        settings (both timeouts 0 at high load) that uniform sampling
        essentially never draws."""
        conds = grid_anchor_conditions(("a", "b"), 0.9)
        assert any(
            c.timeouts == (0.0, 0.0) and min(c.utilizations) >= 0.9
            for c in conds
        )
