"""Tests for profile vectors, conditions and the dataset container."""

import numpy as np
import pytest

from repro.core import (
    DYNAMIC_FEATURE_NAMES,
    ProfileDataset,
    RuntimeCondition,
    STATIC_FEATURE_NAMES,
)
from repro.core.profile_vec import dynamic_features, static_features
from repro.workloads import get_workload


class TestRuntimeCondition:
    def test_valid(self):
        c = RuntimeCondition(
            workloads=("redis", "social"),
            utilizations=(0.9, 0.5),
            timeouts=(1.0, 2.0),
        )
        assert c.sampling_hz == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            RuntimeCondition(("a", "b"), (0.9,), (1.0, 2.0))

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            RuntimeCondition(("a",), (1.5,), (1.0,))

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            RuntimeCondition(("a",), (0.5,), (-1.0,))

    def test_bad_sampling(self):
        with pytest.raises(ValueError):
            RuntimeCondition(("a",), (0.5,), (1.0,), sampling_hz=0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RuntimeCondition((), (), ())


class TestFeatureVectors:
    def test_static_shape_matches_names(self):
        x = static_features(
            get_workload("redis"), 1.0, 0.9, 2.0, partner=get_workload("bfs"),
            partner_timeout=2.0, partner_util=0.5, partner_gross=2.0,
        )
        assert x.shape == (len(STATIC_FEATURE_NAMES),)

    def test_solo_partner_block_zero(self):
        x = static_features(get_workload("redis"), 1.0, 0.9, 1.0)
        half = len(STATIC_FEATURE_NAMES) // 2
        assert np.all(x[half:] == 0.0)

    def test_infinite_timeout_capped(self):
        x = static_features(get_workload("redis"), np.inf, 0.9, 2.0)
        assert np.isfinite(x).all()

    def test_dynamic_shape(self):
        x = dynamic_features(1.5, 0.2, 0.3, 0.1)
        assert x.shape == (len(DYNAMIC_FEATURE_NAMES),)
        assert list(x) == [1.5, 0.2, 0.3, 0.1]

    def test_concurrent_boost_defaults_to_zero(self):
        assert dynamic_features(1.0, 0.5, 0.0)[3] == 0.0


class TestDatasetContainer:
    def test_columns(self, small_dataset):
        ds = small_dataset
        n = len(ds)
        assert n > 0
        d = len(STATIC_FEATURE_NAMES) + len(DYNAMIC_FEATURE_NAMES)
        assert ds.X_flat.shape == (n, d)
        assert ds.traces.shape[0] == n
        assert ds.traces.shape[1] == 2 * 29
        assert ds.y_ea.shape == (n,)
        assert ds.y_rt_mean.shape == (n,)
        assert np.all(ds.y_rt_mean > 0)

    def test_split_partitions(self, small_dataset):
        tr, te = small_dataset.split(0.4, rng=0)
        assert len(tr) + len(te) == len(small_dataset)
        assert len(tr) == int(0.4 * len(small_dataset))

    def test_split_validation(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.split(1.0)

    def test_split_by_condition(self, mixed_pair_dataset):
        jac, rest = mixed_pair_dataset.split_by_condition(
            lambda c: "jacobi" in c.workloads
        )
        assert len(jac) > 0 and len(rest) > 0
        assert all("jacobi" in r.condition.workloads for r in jac.rows)
        assert all("jacobi" not in r.condition.workloads for r in rest.rows)

    def test_subset(self, small_dataset):
        sub = small_dataset.subset([0, 1])
        assert len(sub) == 2
        assert sub.rows[0] is small_dataset.rows[0]
