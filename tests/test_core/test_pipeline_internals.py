"""Unit tests for StacModel internals: gross increase, nominal traces,
chain-neighbour conventions."""

import numpy as np
import pytest

from repro.core import StacModel
from repro.counters.events import COUNTER_NAMES, N_COUNTERS
from repro.workloads import get_workload


@pytest.fixture
def model():
    return StacModel(rng=0, trace_ticks=10, sampling_hz=1.0)


class TestGrossIncrease:
    def test_solo_service(self, model):
        assert model._gross_increase(1, 0) == 1.0

    def test_pair_edges(self, model):
        # 2 MB private = 1 way, 2 MB shared = 1 way on the e5-2683.
        assert model._gross_increase(2, 0) == pytest.approx(2.0)
        assert model._gross_increase(2, 1) == pytest.approx(2.0)

    def test_chain_middle_has_two_regions(self, model):
        assert model._gross_increase(3, 1) == pytest.approx(3.0)
        assert model._gross_increase(3, 0) == pytest.approx(2.0)
        assert model._gross_increase(3, 2) == pytest.approx(2.0)


class TestChainNeighbor:
    def test_conventions(self, model):
        assert model._chain_neighbor(1, 0) is None
        assert model._chain_neighbor(2, 0) == 1
        assert model._chain_neighbor(2, 1) == 0
        assert model._chain_neighbor(3, 0) == 1
        assert model._chain_neighbor(3, 1) == 2
        assert model._chain_neighbor(3, 2) == 1


class TestNominalTrace:
    def test_shape_matches_profiler_convention(self, model):
        specs = [get_workload("redis"), get_workload("knn")]
        trace = model._nominal_trace(
            specs, 0, (0.9, 0.9), np.array([0.5, 0.2])
        )
        # Own block + chain-neighbour block, trace_ticks columns.
        assert trace.shape == (2 * N_COUNTERS, 10)

    def test_solo_trace_single_block(self, model):
        trace = model._nominal_trace(
            [get_workload("redis")], 0, (0.9,), np.array([0.5])
        )
        assert trace.shape == (N_COUNTERS, 10)

    def test_boost_fraction_reflected_in_ticks(self, model):
        specs = [get_workload("redis"), get_workload("knn")]
        boost_row = COUNTER_NAMES.index("boost_active")
        full = model._nominal_trace(specs, 0, (0.9, 0.9), np.array([1.0, 0.0]))
        none = model._nominal_trace(specs, 0, (0.9, 0.9), np.array([0.0, 0.0]))
        assert full[boost_row].mean() == pytest.approx(1.0)
        assert none[boost_row].mean() == 0.0

    def test_partial_boost_fraction(self, model):
        specs = [get_workload("redis"), get_workload("knn")]
        boost_row = COUNTER_NAMES.index("boost_active")
        half = model._nominal_trace(specs, 0, (0.9, 0.9), np.array([0.5, 0.0]))
        frac = (half[boost_row] > 0).mean()
        assert 0.3 <= frac <= 0.7

    def test_partner_boost_lowers_boosted_capacity(self, model):
        """When the partner also boosts, the target's boosted-tick LLC
        misses increase (less effective shared capacity)."""
        specs = [get_workload("redis"), get_workload("spstream")]
        miss_row = COUNTER_NAMES.index("llc_load_misses")
        boost_row = COUNTER_NAMES.index("boost_active")
        alone = model._nominal_trace(specs, 0, (0.9, 0.9), np.array([1.0, 0.0]))
        contended = model._nominal_trace(
            specs, 0, (0.9, 0.9), np.array([1.0, 1.0])
        )
        assert np.all(alone[boost_row] > 0)
        assert contended[miss_row].mean() > alone[miss_row].mean()

    def test_default_service_time_scaling(self):
        """Larger private reservations shorten the default service time."""
        m2 = StacModel(rng=0, private_mb=2.0)
        m6 = StacModel(rng=0, private_mb=6.0)
        spec = get_workload("redis")
        assert m2._default_service_time(spec) == pytest.approx(1.0)
        assert m6._default_service_time(spec) < 1.0

    def test_boosted_capacity_chain_middle(self, model):
        specs = [get_workload("redis"), get_workload("social"), get_workload("knn")]
        mid = model._boosted_capacity(specs, 1, np.array([0.0, 1.0, 0.0]))
        edge = model._boosted_capacity(specs, 0, np.array([1.0, 0.0, 0.0]))
        # The middle service borrows two idle shared regions.
        assert mid > edge
