"""Design-choice ablations beyond the paper's own (DESIGN.md section 5).

1. EA as intermediate target vs direct response-time regression — the
   paper's central low-overhead claim ("EA can be learned using small n
   and integrates with first principles models").
2. Cascade depth (1 vs 3 levels).
3. Contention model: occupancy-proportional vs equal split of shared ways.
4. Timeout search: SLO matching vs greedy per-service descent.
"""

import itertools

import numpy as np

from benchmarks.conftest import print_block, profile_pairs
from repro.analysis import format_table, median_ape
from repro.baselines import RuntimeEvaluator
from repro.cache import SharedWayContention
from repro.core import EAModel, StacModel
from repro.core.policy_search import (
    DEFAULT_TIMEOUT_GRID,
    explore_timeouts,
    slo_matching,
)
from repro.forest.ensemble import RandomForestRegressor
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import get_workload

PAIRS = (("redis", "social"), ("jacobi", "bfs"))

DF_SMALL = dict(
    windows=[(5, 5)],
    mgs_estimators=8,
    mgs_max_instances=4000,
    forests_per_level=4,
    n_estimators=20,
)


def _agg(test, row_preds):
    groups = test.condition_groups()
    p = [float(np.mean(row_preds[idxs])) for idxs in groups.values()]
    a = [float(np.mean(test.y_rt_mean[idxs])) for idxs in groups.values()]
    return np.maximum(np.asarray(p), 1e-3), np.asarray(a)


def _ablate_ea_vs_direct(dataset):
    """EA-intermediate + queueing vs regressing response time directly,
    with the same deep forest and a deliberately small training set."""
    train, test = dataset.split_conditions(0.25, rng=0)

    via_ea = StacModel(rng=0, n_levels=1, **DF_SMALL).fit(train)
    pred = via_ea.predict_rows(test)
    err_ea = median_ape(*_agg(test, pred["rt_mean"]))

    # Same learner and data, but the target is response time itself.
    from repro.forest.deep_forest import DeepForestRegressor

    df = DeepForestRegressor(rng=0, n_levels=1, **DF_SMALL)
    df.fit(train.X_flat, train.traces, train.y_rt_mean)
    raw = df.predict(test.X_flat, test.traces)
    err_direct = median_ape(*_agg(test, raw))
    return err_ea, err_direct


def _ablate_cascade_depth(dataset):
    train, test = dataset.split_conditions(0.5, rng=1)
    errs = {}
    for depth in (1, 3):
        m = EAModel(
            learner="deep_forest", rng=0, n_levels=depth, **DF_SMALL
        ).fit(train)
        errs[depth] = median_ape(m.predict_dataset(test), test.y_ea)
    return errs


def _ablate_contention_mode():
    cfg_kw = dict(
        machine=default_machine(),
        services=[
            CollocatedService(get_workload("redis"), timeout=0.3, utilization=0.92),
            CollocatedService(get_workload("knn"), timeout=0.3, utilization=0.92),
        ],
    )
    out = {}
    for mode in ("occupancy", "equal"):
        run = CollocationRuntime(
            CollocationConfig(**cfg_kw),
            contention=SharedWayContention(mode=mode),
            rng=5,
        ).run(n_queries=1500)
        out[mode] = {
            s.name: s.effective_allocation() for s in run.services
        }
    return out


def _ablate_policy_search(dataset):
    """SLO matching vs greedy per-service descent on the true testbed."""
    pair = ("redis", "social")
    model = StacModel(rng=0, n_levels=1, **DF_SMALL).fit(dataset)
    combos, rt = explore_timeouts(
        model, pair, (0.9, 0.9), timeout_grid=DEFAULT_TIMEOUT_GRID
    )
    slo_idx = slo_matching(rt)

    # Greedy: each service independently picks its own best timeout.
    greedy = []
    grid = DEFAULT_TIMEOUT_GRID
    for svc in range(2):
        per_t = {}
        for c_idx, combo in enumerate(combos):
            per_t.setdefault(combo[svc], []).append(rt[c_idx, svc])
        greedy.append(min(grid, key=lambda t: float(np.mean(per_t[t]))))

    evaluator = RuntimeEvaluator(
        machine=default_machine(),
        specs=[get_workload(n) for n in pair],
        utilization=0.9,
        n_queries=2000,
        rng=31,
    )
    return {
        "slo-matching": evaluator.p95(combos[slo_idx]),
        "greedy per-service": evaluator.p95(tuple(greedy)),
    }


def test_ablation_ea_intermediate(benchmark):
    dataset = profile_pairs(PAIRS, n_per_pair=10, rng=3)
    err_ea, err_direct = benchmark.pedantic(
        _ablate_ea_vs_direct, args=(dataset,), rounds=1, iterations=1
    )
    print_block(
        format_table(
            ["target", "RT median APE (small training set)"],
            [["EA + queueing (paper)", err_ea], ["direct RT regression", err_direct]],
            title="Ablation: EA intermediate vs direct regression",
        )
    )
    # The paper's claim: the EA intermediate needs less data.
    assert err_ea < err_direct


def test_ablation_cascade_depth(benchmark):
    dataset = profile_pairs(PAIRS, n_per_pair=10, rng=3)
    errs = benchmark.pedantic(
        _ablate_cascade_depth, args=(dataset,), rounds=1, iterations=1
    )
    print_block(
        format_table(
            ["cascade levels", "EA median APE"],
            [[k, v] for k, v in errs.items()],
            title="Ablation: cascade depth",
            precision=4,
        )
    )
    # Depth must not catastrophically hurt; deeper may help slightly.
    assert errs[3] < errs[1] * 1.5


def test_ablation_contention_mode(benchmark):
    out = benchmark.pedantic(_ablate_contention_mode, rounds=1, iterations=1)
    rows = [
        [mode, eas["redis"], eas["knn"]] for mode, eas in out.items()
    ]
    print_block(
        format_table(
            ["contention mode", "redis EA", "knn EA"],
            rows,
            title="Ablation: occupancy-proportional vs equal shared-way split",
            precision=4,
        )
    )
    # Redis's high fill intensity wins shared ways under occupancy mode.
    assert out["occupancy"]["redis"] > out["equal"]["redis"]


def test_ablation_policy_search(benchmark):
    dataset = profile_pairs((("redis", "social"),), n_per_pair=10, rng=4)
    out = benchmark.pedantic(
        _ablate_policy_search, args=(dataset,), rounds=1, iterations=1
    )
    rows = [[k, v[0], v[1], float(v.max())] for k, v in out.items()]
    print_block(
        format_table(
            ["search rule", "redis p95", "social p95", "worst service p95"],
            rows,
            title="Ablation: SLO matching vs greedy timeout search",
        )
    )
    # SLO matching must protect the worst-off service at least as well.
    assert out["slo-matching"].max() <= out["greedy per-service"].max() * 1.05
