"""Figure 7a: generalization to unseen collocations.

For each target pair, the model is trained only on the *other*
collocations' profiles and must predict response times for the held-out
pair — the jac(bfs) / bfs(jac) breakdown of the paper.  The paper's
bar: median error below 15% for every collocation.
"""

import numpy as np

from benchmarks.conftest import ACCURACY_PAIRS, print_block
from repro.analysis import format_table, median_ape
from repro.core import StacModel

DF_CONFIG = dict(
    windows=[(5, 5), (10, 10)],
    mgs_estimators=12,
    mgs_max_instances=6000,
    n_levels=2,
    forests_per_level=4,
    n_estimators=25,
)


def _aggregate(ds, row_preds):
    groups = ds.condition_groups()
    y = ds.y_rt_mean
    names, pred, act = [], [], []
    for (cid, sidx), idxs in groups.items():
        row = ds.rows[idxs[0]]
        partner = [w for w in row.condition.workloads if w != row.service_name]
        names.append(f"{row.service_name}({partner[0] if partner else '-'})")
        pred.append(float(np.mean(row_preds[idxs])))
        act.append(float(np.mean(y[idxs])))
    return names, np.maximum(np.asarray(pred), 1e-3), np.asarray(act)


def _run(dataset):
    per_label = {}
    for pair in ACCURACY_PAIRS:
        test, train = dataset.split_by_condition(
            lambda c, pair=pair: set(c.workloads) == set(pair)
        )
        model = StacModel(rng=0, **DF_CONFIG).fit(train)
        pred = model.predict_rows(test)
        names, p, a = _aggregate(test, pred["rt_mean"])
        for label in set(names):
            idx = [i for i, n in enumerate(names) if n == label]
            per_label[label] = median_ape(p[idx], a[idx])
    return per_label


def test_fig7a_generalization(benchmark, fig6_dataset):
    errors = benchmark.pedantic(
        _run, args=(fig6_dataset,), rounds=1, iterations=1
    )
    rows = sorted(errors.items())
    print_block(
        format_table(
            ["collocation", "median APE"],
            rows,
            title="Figure 7a: per-collocation generalization error (reproduced)",
        )
    )
    assert len(errors) == 6  # both directions of all 3 pairs
    # The paper keeps every collocation under 15%; we hold a 30% band
    # (held-out-pair training data is much smaller here).
    for label, err in errors.items():
        assert err < 0.30, f"{label}: {err:.3f}"
    assert float(np.median(list(errors.values()))) < 0.20
