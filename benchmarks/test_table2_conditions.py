"""Table 2: the runtime-condition space and its sampling coverage."""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.core.sampling import TIMEOUT_RANGE, UTIL_RANGE, uniform_conditions


def _sample_space():
    conds = uniform_conditions(("jacobi", "bfs"), n=400, rng=0)
    utils = np.array([u for c in conds for u in c.utilizations])
    touts = np.array([t for c in conds for t in c.timeouts])
    return utils, touts


def test_table2(benchmark):
    utils, touts = benchmark.pedantic(_sample_space, rounds=1, iterations=1)

    rows = [
        ["Collocated services sharing cache lines",
         "Jacobi, KNN, Kmeans, Spkmeans, Spstream, BFS, Social or Redis"],
        ["Query inter-arrival rate (rel. to service time)",
         f"{UTIL_RANGE[0]:.0%} - {UTIL_RANGE[1]:.0%}"],
        ["Timeout policy (rel. to service time)",
         f"{TIMEOUT_RANGE[0]:.0%} (always shared) - {TIMEOUT_RANGE[1]:.0%} (never)"],
        ["Cache usage sampling", "1 Hz - every 5 seconds"],
    ]
    print_block(
        format_table(
            ["description", "supported settings"],
            rows,
            title="Table 2: runtime conditions studied (reproduced)",
        )
    )

    # Sampling must cover the advertised ranges nearly edge to edge.
    assert utils.min() < UTIL_RANGE[0] + 0.02
    assert utils.max() > UTIL_RANGE[1] - 0.02
    assert touts.min() < TIMEOUT_RANGE[0] + 0.1
    assert touts.max() > TIMEOUT_RANGE[1] - 0.1
    # Utilization is uniform; timeouts are skewed toward the active
    # region (75% below 200% of service time) with tail coverage to 600%.
    assert abs(np.median(utils) - np.mean(UTIL_RANGE)) < 0.05
    active_fraction = np.mean(touts < 2.0)
    assert 0.65 < active_fraction < 0.85
    assert np.mean(touts >= 2.0) > 0.1  # tail still sampled
