"""Figure 4: multi-grained scanning and cascade feature bookkeeping.

Verifies the worked example in the text: a 29x20 profile scanned by a
5x5 window yields 400 transformed features; cascade levels append 4
concepts per layer on top of the 580 raw + 400 transformed features.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.forest import CascadeForest, MultiGrainScanner, sliding_windows


def _feature_accounting():
    rng = np.random.default_rng(0)
    traces = rng.normal(size=(40, 29, 20))
    y = traces[:, 10:15, 5:10].mean(axis=(1, 2))

    win = sliding_windows(traces, (5, 5))
    scanner = MultiGrainScanner(
        windows=[(5, 5)], n_estimators=5, max_instances=3000, rng=0
    ).fit(traces, y)
    mgs_features = scanner.transform(traces)

    raw = traces.reshape(40, -1)  # 580 raw features
    cascade_input = np.concatenate([raw, mgs_features], axis=1)
    cascade = CascadeForest(
        n_levels=2, forests_per_level=4, n_estimators=5, rng=0
    ).fit(cascade_input, y)
    concepts = cascade.concept_features(cascade_input)
    return {
        "window positions (5x5 on 29x20)": win.shape[1],
        "raw features": raw.shape[1],
        "MGS features": mgs_features.shape[1],
        "cascade input features": cascade_input.shape[1],
        "concepts appended (2 levels x 4 forests)": concepts.shape[1],
    }


def test_fig4_mgs_accounting(benchmark):
    counts = benchmark.pedantic(_feature_accounting, rounds=1, iterations=1)
    print_block(
        format_table(
            ["quantity", "count"],
            [[k, v] for k, v in counts.items()],
            title="Figure 4: MGS + cascade feature accounting (reproduced)",
        )
    )
    # The text's arithmetic: 25x16 = 400 windows; 580 raw; 580+400 input.
    assert counts["window positions (5x5 on 29x20)"] == 400
    assert counts["raw features"] == 580
    assert counts["MGS features"] == 400
    assert counts["cascade input features"] == 980
    assert counts["concepts appended (2 levels x 4 forests)"] == 8
