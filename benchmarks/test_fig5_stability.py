"""Figure 5: random variation in deep forests vs CNNs.

Trains both model families repeatedly with different seeds on the same
profile-like data and reports min/max/std of validation accuracy and
training time.  The paper's finding: the best CNN can beat the deep
forest, but deep forests are far more stable run to run.
"""

import time

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.baselines.cnn import CNNHyperParams, CNNRegressor
from repro.forest import DeepForestRegressor

N_REPEATS = 8  # paper: 100; scaled for harness runtime


def _make_data(rng=0):
    r = np.random.default_rng(rng)
    n = 160
    traces = r.normal(0, 0.2, size=(n, 16, 12))
    y = r.uniform(0.3, 1.0, size=n)
    for i in range(n):
        traces[i, 4:8, 3:7] += y[i]  # localized EA signal
    flat = r.uniform(size=(n, 6))
    y = y + 0.2 * flat[:, 0]
    return flat, traces, y


def _run_repeats():
    flat, traces, y = _make_data()
    n_train = 110
    out = {"deep forest": [], "cnn": []}
    times = {"deep forest": [], "cnn": []}
    # One fixed split: run-to-run variation comes from model-internal
    # randomness only (initialization, bootstrap, shuffling), as in the
    # paper's repeated-training experiment.
    perm = np.random.default_rng(100).permutation(len(y))
    tr, te = perm[:n_train], perm[n_train:]
    for seed in range(N_REPEATS):

        t0 = time.perf_counter()
        df = DeepForestRegressor(
            windows=[(4, 4)],
            mgs_estimators=8,
            n_levels=1,
            forests_per_level=2,
            n_estimators=15,
            rng=seed,
        )
        df.fit(flat[tr], traces[tr], y[tr])
        times["deep forest"].append(time.perf_counter() - t0)
        err = np.median(
            np.abs(df.predict(flat[te], traces[te]) - y[te]) / y[te]
        )
        out["deep forest"].append(float(err))

        t0 = time.perf_counter()
        cnn = CNNRegressor(
            CNNHyperParams(n_filters=8, kernel=(3, 3), hidden=32, epochs=25),
            rng=seed,
        )
        cnn.fit(flat[tr], traces[tr], y[tr])
        times["cnn"].append(time.perf_counter() - t0)
        err = np.median(
            np.abs(cnn.predict(flat[te], traces[te]) - y[te]) / y[te]
        )
        out["cnn"].append(float(err))
    return out, times


def test_fig5_stability(benchmark):
    errors, times = benchmark.pedantic(_run_repeats, rounds=1, iterations=1)

    rows = []
    for name in ("deep forest", "cnn"):
        e = np.array(errors[name])
        t = np.array(times[name])
        rows.append(
            [name, e.min(), e.max(), e.std(), e.mean(), t.mean(), t.std()]
        )
    print_block(
        format_table(
            ["model", "err min", "err max", "err std", "err mean",
             "train s mean", "train s std"],
            rows,
            title=f"Figure 5: stability over {N_REPEATS} trainings (reproduced)",
            precision=4,
        )
    )

    df_err = np.array(errors["deep forest"])
    cnn_err = np.array(errors["cnn"])
    # Deep forests reliably provide low error: lower spread...
    assert df_err.std() < cnn_err.std()
    # ...and a better worst case (the paper: CNN worst ~2x DF).
    assert df_err.max() < cnn_err.max()


def _run_future_work():
    """Section 4.1's future work: residual and LSTM networks on the same
    repeated-training protocol."""
    from repro.baselines import LSTMRegressor, ResidualMLPRegressor

    flat, traces, y = _make_data()
    n_train = 110
    perm = np.random.default_rng(100).permutation(len(y))
    tr, te = perm[:n_train], perm[n_train:]
    flat_full = np.concatenate(
        [flat, traces.reshape(len(y), -1)], axis=1
    )
    out = {"lstm": [], "residual mlp": []}
    for seed in range(max(3, N_REPEATS // 2)):
        lstm = LSTMRegressor(n_hidden=16, epochs=30, lr=5e-3, rng=seed)
        lstm.fit(flat[tr], traces[tr], y[tr])
        err = np.median(
            np.abs(lstm.predict(flat[te], traces[te]) - y[te]) / y[te]
        )
        out["lstm"].append(float(err))

        res = ResidualMLPRegressor(
            width=32, n_blocks=3, epochs=40, lr=3e-3, rng=seed
        )
        res.fit(flat_full[tr], y[tr])
        err = np.median(
            np.abs(res.predict(flat_full[te]) - y[te]) / y[te]
        )
        out["residual mlp"].append(float(err))
    return out


def test_fig5_future_work_architectures(benchmark):
    """Extension: the reliability/accuracy trade-off the paper defers to
    future work, measured with the same protocol as Figure 5."""
    errors = benchmark.pedantic(_run_future_work, rounds=1, iterations=1)
    rows = []
    for name, errs in errors.items():
        e = np.array(errs)
        rows.append([name, e.min(), e.max(), e.std(), e.mean()])
    print_block(
        format_table(
            ["model", "err min", "err max", "err std", "err mean"],
            rows,
            title="Figure 5 extension: future-work architectures (LSTM, residual)",
            precision=4,
        )
    )
    # Back-prop models remain seed-sensitive; both must at least train.
    for name, errs in errors.items():
        assert max(errs) < 1.0, f"{name} failed to train"
        assert np.std(errs) > 0.0  # run-to-run variation exists
