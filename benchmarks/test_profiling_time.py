"""Section 5.1, "Profiling Time": accuracy vs profiling budget.

The paper: 15 minutes of profiling -> 14% median error, 30 minutes ->
11%, 2.5 hours -> 8.6% — and, crucially, "our approach was robust to
reduced profiling time because the use of first-principles queuing
simulation bounded model error".

On our smoother testbed the robustness dominates: the EA + queueing
pipeline is already near its error floor with a handful of profiled
conditions.  To exhibit what the queueing stage buys, the same deep
forest trained to regress response time *directly* runs on the same
shrinking budgets — without the first-principles stage its error is
several times larger at every budget.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table, median_ape
from repro.core import StacModel
from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import uniform_conditions
from repro.forest.deep_forest import DeepForestRegressor

PAIRS = (("jacobi", "bfs"), ("redis", "social"), ("spkmeans", "knn"))
#: Conditions per pair: ~15 min / 30 min / 2.5 h profiling analogue.
BUDGETS = (1, 3, 10)

DF_CONFIG = dict(
    windows=[(5, 5), (10, 10)],
    mgs_estimators=12,
    mgs_max_instances=6000,
    n_levels=1,
    forests_per_level=4,
    n_estimators=25,
)


def _campaign(profiler, n_per_pair, rng):
    conds = []
    for i, pair in enumerate(PAIRS):
        conds += uniform_conditions(pair, n=n_per_pair, rng=rng + i)
    return profiler.profile(conds)


def _run():
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=350, n_windows=1, trace_ticks=20),
        rng=5,
    )
    test = _campaign(profiler, n_per_pair=4, rng=990)
    groups = test.condition_groups()
    actual = np.array(
        [float(np.mean(test.y_rt_mean[idx])) for idx in groups.values()]
    )

    def agg(row_preds):
        p = np.array(
            [float(np.mean(row_preds[idx])) for idx in groups.values()]
        )
        return np.maximum(p, 1e-3)

    pool = _campaign(profiler, n_per_pair=max(BUDGETS), rng=5)
    by_pair: dict[tuple, list] = {}
    for c in pool.conditions():
        by_pair.setdefault(tuple(sorted(c.workloads)), []).append(c)

    rows = []
    for budget in BUDGETS:
        keep = {id(c) for conds in by_pair.values() for c in conds[:budget]}
        train = pool.subset(
            [i for i, r in enumerate(pool.rows) if id(r.condition) in keep]
        )
        ours = StacModel(rng=0, **DF_CONFIG).fit(train)
        err_ours = median_ape(agg(ours.predict_rows(test)["rt_mean"]), actual)

        direct = DeepForestRegressor(rng=0, **DF_CONFIG)
        direct.fit(train.X_flat, train.traces, train.y_rt_mean)
        err_direct = median_ape(
            agg(direct.predict(test.X_flat, test.traces)), actual
        )
        rows.append([budget * len(PAIRS), len(train), err_ours, err_direct])
    return rows


def test_profiling_time(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_block(
        format_table(
            ["profiled conditions", "training rows", "EA+queue median APE",
             "direct-regression median APE"],
            rows,
            title="Section 5.1: accuracy vs profiling budget (reproduced)",
        )
    )
    ours = [r[2] for r in rows]
    direct = [r[3] for r in rows]
    # The robustness claim: queueing bounds the error at every budget...
    assert all(e < 0.10 for e in ours)
    # ...while the same learner without the first-principles stage needs
    # far more data (and still trails badly at these budgets).
    for o, d in zip(ours, direct):
        assert o < d
    assert direct[0] > 2 * ours[0]
