"""Scaling of the Section 5.2 policy exploration.

Times the 2-service, 25-combination timeout search (the paper's 5x5
grid) four ways — serial, serial with EA warm-starting, across a
4-worker process pool, and through the batched queueing kernel — and
verifies the core determinism guarantee: every execution mode must pick
the *identical* timeout vector, and serial vs parallel vs batched must
agree bit-for-bit on the whole response-time matrix.

The serial/warm/parallel rows pin ``batch=False`` so the process-pool
scaling is measured against the same per-combo kernel as PR 1; the
batched row shows what the vectorized kernel adds on top.

The >= 2x parallel wall-clock assertion only applies on machines that
actually expose >= 4 CPUs; on smaller boxes the numbers are still
recorded so regressions in the serial path remain visible.
"""

import os
import time

import numpy as np

from benchmarks.conftest import print_block
from repro import Profiler, StacModel, uniform_conditions
from repro.analysis import format_table
from repro.core.policy_search import (
    DEFAULT_TIMEOUT_GRID,
    explore_timeouts,
    slo_matching,
)
from repro.core.profiler import ProfilerSettings

PAIR = ("redis", "knn")
UTILS = (0.9, 0.9)

DF_CONFIG = dict(
    windows=[(5, 5)],
    mgs_estimators=5,
    mgs_max_instances=2000,
    n_levels=1,
    forests_per_level=2,
    n_estimators=10,
)


def _fitted_model() -> StacModel:
    conditions = uniform_conditions(PAIR, n=6, rng=0)
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=300, n_windows=3, trace_ticks=12),
        rng=0,
    )
    # A heavier simulated queue per combination: the regime the search
    # actually faces in production-scale planning.
    model = StacModel(rng=0, sim_queries=16000, **DF_CONFIG)
    return model.fit(profiler.profile(conditions))


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_policy_search_scaling():
    model = _fitted_model()
    n_cpus = len(os.sched_getaffinity(0))

    (serial, t_serial) = _timed(
        lambda: explore_timeouts(
            model, PAIR, UTILS, DEFAULT_TIMEOUT_GRID, batch=False
        )
    )
    (warm, t_warm) = _timed(
        lambda: explore_timeouts(
            model, PAIR, UTILS, DEFAULT_TIMEOUT_GRID, warm_start=True,
            batch=False,
        )
    )
    (par, t_par) = _timed(
        lambda: explore_timeouts(
            model, PAIR, UTILS, DEFAULT_TIMEOUT_GRID, n_jobs=4, batch=False
        )
    )
    (batched, t_batch) = _timed(
        lambda: explore_timeouts(
            model, PAIR, UTILS, DEFAULT_TIMEOUT_GRID, batch=True
        )
    )

    combos, rt_serial = serial
    _, rt_warm = warm
    _, rt_par = par
    _, rt_batch = batched
    assert len(combos) == 25

    # Determinism guarantees: parallel and batched are bit-identical to
    # serial, and every mode lands on the same chosen timeout vector.
    assert np.array_equal(rt_serial, rt_par)
    assert np.array_equal(rt_serial, rt_batch)
    chosen = slo_matching(rt_serial)
    assert slo_matching(rt_par) == chosen
    assert slo_matching(rt_warm) == chosen

    rows = [
        ["serial (cold)", t_serial, 1.0],
        ["serial (warm-start)", t_warm, t_serial / t_warm],
        ["4 workers", t_par, t_serial / t_par],
        ["batched kernel", t_batch, t_serial / t_batch],
    ]
    print_block(
        format_table(
            ["mode", "seconds", "speedup"],
            rows,
            title=(
                f"Policy-search scaling: 25-combo grid, pair {PAIR}, "
                f"{n_cpus} CPU(s) available; chosen combo "
                f"{combos[chosen]}"
            ),
        )
    )

    # Warm-starting skips converged fixed-point iterations, so it must
    # never be slower than the cold search by more than scheduling noise.
    assert t_warm <= t_serial * 1.10
    if n_cpus >= 4:
        assert t_serial / t_par >= 2.0, (
            f"expected >= 2x at 4 workers on {n_cpus} CPUs, got "
            f"{t_serial / t_par:.2f}x"
        )
