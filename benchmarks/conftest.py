"""Shared fixtures for the experiment harness.

Each benchmark regenerates one of the paper's tables/figures.  The
heavyweight shared artifact is the Figure 6 profiling campaign; it is
profiled once per session and reused by the accuracy benches.
"""

import numpy as np
import pytest

from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import uniform_conditions

#: The collocation pairs used by the accuracy experiments.  A spread of
#: Table 1 behaviours: HPC vs HPC, key-value vs microservices, Spark vs
#: high-reuse kernel.
ACCURACY_PAIRS = (
    ("jacobi", "bfs"),
    ("redis", "social"),
    ("spkmeans", "knn"),
)


def profile_pairs(pairs, n_per_pair, rng=0, sampling_hz=1.0, **settings_kw):
    """Profile several collocation pairs into one dataset."""
    settings = ProfilerSettings(
        n_queries=settings_kw.pop("n_queries", 600),
        n_windows=settings_kw.pop("n_windows", 4),
        trace_ticks=settings_kw.pop("trace_ticks", 20),
        **settings_kw,
    )
    profiler = Profiler(settings=settings, rng=rng)
    conditions = []
    for i, pair in enumerate(pairs):
        conditions += uniform_conditions(
            pair, n=n_per_pair, sampling_hz=sampling_hz, rng=rng + i
        )
    return profiler.profile(conditions)


@pytest.fixture(scope="session")
def fig6_dataset():
    """The shared accuracy-campaign dataset (3 pairs x 14 conditions)."""
    return profile_pairs(ACCURACY_PAIRS, n_per_pair=14, rng=0)


def print_block(text: str) -> None:
    """Emit a reproduced table/series with visible delimiters."""
    print("\n" + text + "\n", flush=True)
