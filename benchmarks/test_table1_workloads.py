"""Table 1: the benchmark suite and its cache access patterns.

Regenerates the table from the workload registry and benchmarks the
cache-behaviour validation that backs each row's qualitative claim.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.cache import CacheGeometry, SetAssociativeCache
from repro.workloads import all_workloads, table1_rows, workload_stream
from repro.workloads.base import MB


def _suite_miss_ratios():
    """Measure each workload's synthetic stream against a small LLC."""
    out = {}
    for spec in all_workloads():
        geom = CacheGeometry(n_sets=64, n_ways=8)
        cache = SetAssociativeCache(geom)
        stream = workload_stream(spec.stream_kind, 4000, n_lines=2048, rng=0)
        cache.access(stream[:1000])
        out[spec.name] = cache.access(stream[1000:]).miss_ratio
    return out


def test_table1(benchmark):
    measured = benchmark.pedantic(_suite_miss_ratios, rounds=1, iterations=1)

    rows = []
    for row in table1_rows():
        spec = next(w for w in all_workloads() if w.name == row["wrk_id"])
        rows.append(
            [
                row["wrk_id"],
                row["description"][:40],
                row["cache_access_pattern"][:44],
                spec.baseline_service_time,
                measured[spec.name],
            ]
        )
    print_block(
        format_table(
            ["wrk id", "description", "cache access pattern", "base svc time (s)",
             "measured stream miss ratio"],
            rows,
            title="Table 1: benchmarks (reproduced)",
            precision=4,
        )
    )

    # The qualitative orderings Table 1 asserts.
    assert measured["knn"] < measured["spstream"]
    assert measured["kmeans"] < measured["spstream"]
    assert len(rows) == 8

    # Baseline service times quoted in Section 5.
    by_name = {w.name: w for w in all_workloads()}
    assert by_name["social"].baseline_service_time == 7.5e-3
    assert by_name["spkmeans"].baseline_service_time == 81.0
    assert by_name["redis"].baseline_service_time == 1.0e-3
