"""Exact vs histogram vs pooled forest training at MGS scale.

The tentpole contract, verified end to end:

- ``strategy="exact"`` with the process pool must produce *bit-identical*
  trees to the serial exact fit (the pool only changes who grows each
  tree, never what is grown) — asserted in every mode, including smoke;
- ``strategy="hist"`` is the opt-in fast path: quantile-binned ``uint8``
  codes shared across trees (and across pool workers via POSIX shared
  memory), prefix-summed bincount split search.

The workload mirrors a multi-grained-scanner window forest fit — the
training bottleneck of the Figure 6 campaign: thousands of sliding
window instances, two dozen features, depth-capped trees.

Following the policy-search benchmark convention, the >= 3x wall-clock
assertion (hist + pool vs exact serial) only applies on machines
exposing >= 4 CPUs; smaller boxes still record the numbers.  Each full
(non-smoke) run appends its timing summary to
``BENCH_forest_training.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.forest import RandomForestRegressor

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
N_SAMPLES = 1500 if SMOKE else 6000
N_FEATURES = 25
N_TREES = 8 if SMOKE else 24
RESULTS_JSON = Path(__file__).resolve().parents[1] / "BENCH_forest_training.json"


def _mgs_like_dataset(rng):
    """Friedman-style nonlinear target at MGS window-instance scale."""
    X = rng.uniform(size=(N_SAMPLES, N_FEATURES))
    y = (
        10 * np.sin(np.pi * X[:, 0] * X[:, 1])
        + 20 * (X[:, 2] - 0.5) ** 2
        + 10 * X[:, 3]
        + 5 * X[:, 4]
        + rng.normal(0, 0.5, N_SAMPLES)
    )
    return X, y


def _fit(X, y, strategy, n_jobs):
    f = RandomForestRegressor(
        n_estimators=N_TREES,
        max_depth=12,
        min_samples_leaf=3,
        strategy=strategy,
        n_jobs=n_jobs,
        rng=0,
    )
    t0 = time.perf_counter()
    f.fit(X, y)
    return f, time.perf_counter() - t0


def _fit_best_of(X, y, strategy, n_jobs, reps):
    """Best-of-``reps`` wall clock (same fitted forest every rep — the
    fit is deterministic, so only the clock varies)."""
    forest, best = _fit(X, y, strategy, n_jobs)
    for _ in range(reps - 1):
        _, t = _fit(X, y, strategy, n_jobs)
        best = min(best, t)
    return forest, best


def _trees_identical(fa, fb) -> bool:
    return len(fa.trees_) == len(fb.trees_) and all(
        np.array_equal(a._feature_a, b._feature_a)
        and np.array_equal(a._threshold_a, b._threshold_a)
        and np.array_equal(a._value_a, b._value_a)
        and np.array_equal(a._left_a, b._left_a)
        and np.array_equal(a._right_a, b._right_a)
        for a, b in zip(fa.trees_, fb.trees_)
    )


def _record(row: dict) -> None:
    history = []
    if RESULTS_JSON.exists():
        try:
            history = json.loads(RESULTS_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(row)
    RESULTS_JSON.write_text(json.dumps(history, indent=2) + "\n")


def test_forest_training_scaling():
    n_cpus = len(os.sched_getaffinity(0))
    # At least 2 workers even on tiny boxes, so the identity asserts
    # always exercise the real process pool + shared-memory path.
    pool_jobs = max(2, min(4, n_cpus))
    X, y = _mgs_like_dataset(np.random.default_rng(0))
    Xt, yt = _mgs_like_dataset(np.random.default_rng(1))
    reps = 1 if SMOKE else 3

    exact_serial, t_exact = _fit_best_of(X, y, "exact", 1, reps)
    exact_pooled, t_exact_pool = _fit_best_of(X, y, "exact", pool_jobs, reps)
    hist_serial, t_hist = _fit_best_of(X, y, "hist", 1, reps)
    hist_pooled, t_hist_pool = _fit_best_of(X, y, "hist", pool_jobs, reps)

    # Identity asserts: always on, every mode.  The pool must never
    # change the fitted model, on either strategy.
    assert _trees_identical(exact_serial, exact_pooled)
    assert _trees_identical(hist_serial, hist_pooled)

    # The fast path must stay accurate: held-out MSE within 20%.
    mse_exact = float(np.mean((exact_serial.predict(Xt) - yt) ** 2))
    mse_hist = float(np.mean((hist_serial.predict(Xt) - yt) ** 2))
    assert mse_hist <= mse_exact * 1.2

    speedup_hist = t_exact / t_hist
    speedup_pool = t_exact / t_hist_pool
    rows = [
        ["exact, serial", t_exact * 1e3, 1.0, mse_exact],
        ["exact, %d jobs" % pool_jobs, t_exact_pool * 1e3, t_exact / t_exact_pool, mse_exact],
        ["hist, serial", t_hist * 1e3, speedup_hist, mse_hist],
        ["hist, %d jobs" % pool_jobs, t_hist_pool * 1e3, speedup_pool, mse_hist],
    ]
    print_block(
        format_table(
            ["training path", "ms (best of %d)" % reps, "speedup vs exact serial", "held-out MSE"],
            rows,
            title=(
                f"Forest training, n={N_SAMPLES} d={N_FEATURES} "
                f"trees={N_TREES}, {n_cpus} CPU(s)"
                + (" [smoke]" if SMOKE else "")
            ),
        )
    )

    if not SMOKE:
        _record(
            {
                "bench": "forest_training_scaling",
                "timestamp": int(time.time()),
                "n_samples": N_SAMPLES,
                "n_features": N_FEATURES,
                "n_trees": N_TREES,
                "n_cpus": n_cpus,
                "pool_jobs": pool_jobs,
                "exact_serial_s": round(t_exact, 6),
                "exact_pool_s": round(t_exact_pool, 6),
                "hist_serial_s": round(t_hist, 6),
                "hist_pool_s": round(t_hist_pool, 6),
                "speedup_hist": round(speedup_hist, 3),
                "speedup_hist_pool": round(speedup_pool, 3),
                "mse_exact": round(mse_exact, 6),
                "mse_hist": round(mse_hist, 6),
            }
        )
        if n_cpus >= 4:
            assert speedup_pool >= 3.0, (
                f"expected >= 3x hist+pool speedup over exact serial on "
                f"{n_cpus} CPUs, got {speedup_pool:.2f}x"
            )
