"""Serial vs batched STAP queueing kernel at policy-search scale.

Simulates the C = 25 conditions of one 5x5 timeout-grid round (k = 2
servers each, heterogeneous timeouts/boosts) both ways and verifies the
tentpole contract: the batched kernel must produce *bit-identical*
results per condition while collapsing ~C x n interpreted heapq
iterations into one vectorized loop of ~n steps.

The equivalence assert always runs — including in smoke mode
(``BENCH_SMOKE=1``), which CI uses on every push.  The >= 3x wall-clock
assertion follows the policy-search benchmark convention: it only
applies on machines exposing >= 4 CPUs (smaller boxes still record the
numbers so regressions stay visible).

Each full (non-smoke) run appends its timing summary to
``BENCH_queue_kernel.json`` at the repo root, accumulating the kernel's
performance trajectory across sessions.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.queueing import (
    StapQueueConfig,
    simulate_stap_queue,
    simulate_stap_queue_batch,
)

N_CONDITIONS = 25
N_QUERIES = 4000
SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
RESULTS_JSON = Path(__file__).resolve().parents[1] / "BENCH_queue_kernel.json"


def _grid_round(rng):
    """One fixed-point round of the default 5x5 grid search: per-combo
    timeouts, utilization-dependent arrivals, lognormal demands."""
    timeouts = (0.0, 0.5, 1.0, 2.0, 4.0)
    configs = [
        StapQueueConfig(
            n_servers=2,
            mean_service_time=0.9 + 0.01 * (i % 7),
            timeout=timeouts[i % 5],
            boost_speedup=1.2 + 0.1 * (i % 4),
        )
        for i in range(N_CONDITIONS)
    ]
    gaps = rng.exponential(1.0, size=(N_CONDITIONS, N_QUERIES))
    rates = 0.8 + 0.15 * rng.random(N_CONDITIONS)
    arrivals = np.cumsum(gaps / rates[:, None], axis=1)
    demands = rng.lognormal(0.0, 0.4, size=(N_CONDITIONS, N_QUERIES))
    return arrivals, demands, configs


def _record(row: dict) -> None:
    history = []
    if RESULTS_JSON.exists():
        try:
            history = json.loads(RESULTS_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(row)
    RESULTS_JSON.write_text(json.dumps(history, indent=2) + "\n")


def test_queue_kernel_scaling():
    arrivals, demands, configs = _grid_round(np.random.default_rng(0))
    n_cpus = len(os.sched_getaffinity(0))
    reps = 1 if SMOKE else 5

    # Identical-results assert: always on, every mode.
    batch = simulate_stap_queue_batch(arrivals, demands, configs)
    serial_results = [
        simulate_stap_queue(arrivals[c], demands[c], configs[c])
        for c in range(N_CONDITIONS)
    ]
    for c, serial in enumerate(serial_results):
        assert np.array_equal(serial.start_times, batch.start_times[c])
        assert np.array_equal(serial.completion_times, batch.completion_times[c])
        assert np.array_equal(serial.boosted_time, batch.boosted_time[c])
        assert np.array_equal(serial.boosted, batch.boosted[c])

    # Best-of-N wall clock, interleaved to share any machine noise.
    t_serial, t_batch = np.inf, np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        for c in range(N_CONDITIONS):
            simulate_stap_queue(arrivals[c], demands[c], configs[c])
        t_serial = min(t_serial, time.perf_counter() - t0)
        t0 = time.perf_counter()
        simulate_stap_queue_batch(arrivals, demands, configs)
        t_batch = min(t_batch, time.perf_counter() - t0)
    speedup = t_serial / t_batch

    rows = [
        ["serial x25", t_serial * 1e3, 1.0],
        ["batched", t_batch * 1e3, speedup],
    ]
    print_block(
        format_table(
            ["kernel", "ms (best of %d)" % reps, "speedup"],
            rows,
            title=(
                f"G/G/2 STAP kernel, C={N_CONDITIONS} conditions x "
                f"{N_QUERIES} queries, {n_cpus} CPU(s)"
                + (" [smoke]" if SMOKE else "")
            ),
        )
    )

    if not SMOKE:
        _record(
            {
                "bench": "queue_kernel_scaling",
                "timestamp": int(time.time()),
                "n_conditions": N_CONDITIONS,
                "n_queries": N_QUERIES,
                "n_cpus": n_cpus,
                "serial_s": round(t_serial, 6),
                "batch_s": round(t_batch, 6),
                "speedup": round(speedup, 3),
            }
        )
        if n_cpus >= 4:
            assert speedup >= 3.0, (
                f"expected >= 3x batched speedup at C={N_CONDITIONS} on "
                f"{n_cpus} CPUs, got {speedup:.2f}x"
            )
