"""Figure 1 + Section 2: the dynamic cache allocation data path.

Exercises the write-enable logic with the figure's two allocation
settings (ways {00,01} vs {00,01,10}) and verifies the contiguity
conjectures on the paper's pairwise layouts.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.cache import (
    CacheGeometry,
    CatController,
    SetAssociativeCache,
    ShortTermPolicy,
    WayMask,
)
from repro.cache.cat import pairwise_layout


def _datapath_demo():
    """Run a hot working set under the two Figure 1 allocation settings."""
    geom = CacheGeometry(n_sets=32, n_ways=4)
    rng = np.random.default_rng(0)
    stream = (rng.zipf(1.4, size=6000) % 256) * 64
    results = {}
    for label, mask in (
        ("setting 0 (ways 00-01)", WayMask(0, 2)),
        ("setting 1 (ways 00-10)", WayMask(0, 3)),
    ):
        cache = SetAssociativeCache(geom)
        cache.access(stream[:2000], mask=mask)
        res = cache.access(stream[2000:], mask=mask)
        filled = np.nonzero(cache.valid.any(axis=0))[0]
        results[label] = (res.miss_ratio, filled.tolist())
    return results


def test_fig1_datapath(benchmark):
    results = benchmark.pedantic(_datapath_demo, rounds=1, iterations=1)

    rows = [
        [label, mr, str(ways)] for label, (mr, ways) in results.items()
    ]
    print_block(
        format_table(
            ["allocation setting", "miss ratio", "filled ways"],
            rows,
            title="Figure 1: dynamic allocation data path (reproduced)",
            precision=4,
        )
    )
    (mr0, ways0), (mr1, ways1) = results.values()
    assert set(ways0) <= {0, 1}
    assert set(ways1) <= {0, 1, 2}
    assert mr1 < mr0  # the wider setting speeds up the workload


def test_section2_conjectures(benchmark):
    """Private regions disjoint; <=2 sharers per short-term setting."""

    def verify_layouts():
        checked = 0
        for n_ways in (8, 12, 16, 20):
            for private in (1, 2, 3):
                for shared in (1, 2, 3):
                    if 2 * private + shared > n_ways:
                        continue
                    ctl = CatController(n_ways=n_ways)
                    pa, pb = pairwise_layout(n_ways, private, shared, (1.0, 1.0))
                    ctl.register("A", pa)
                    ctl.register("B", pb)
                    assert ctl.private_regions_disjoint()
                    assert ctl.all_have_private_cache()
                    assert ctl.max_sharers() <= 2
                    checked += 1
        # A 3-workload chain: the middle setting shares with both sides.
        ctl = CatController(n_ways=12)
        ctl.register("L", ShortTermPolicy(WayMask(0, 2), WayMask(0, 4), 1.0))
        ctl.register("M", ShortTermPolicy(WayMask(4, 2), WayMask(2, 6), 1.0))
        ctl.register("R", ShortTermPolicy(WayMask(8, 2), WayMask(6, 4), 1.0))
        assert ctl.max_sharers() == 2
        return checked

    checked = benchmark.pedantic(verify_layouts, rounds=1, iterations=1)
    print_block(
        f"Section 2 conjectures verified on {checked} pairwise layouts "
        "+ one 3-workload chain (max sharers = 2)."
    )
    assert checked > 20
