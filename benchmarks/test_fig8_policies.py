"""Figure 8: p95-response-time speedup of competing allocation policies.

Four collocations spanning Redis, Spark, Rodinia and the Social
microservice benchmark, all normalized to the no-cache-sharing
baseline, at 90% arrival rate (Section 5.2).  Policies compared:

- static allocation (share fully or keep private, whichever is best),
- dCat: workload-aware shared-cache assignment [31],
- dynaSprint: timeouts calibrated at low arrival rate [12],
- simple-ML-driven timeouts (random forest in place of the deep forest),
- our model-driven timeouts with SLO matching.

Paper's shapes: our approach ~2x median speedup over no-sharing (up to
2.6x), and ~1.2-1.3x over dCat/dynaSprint.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.baselines import (
    RuntimeEvaluator,
    dcat_policy,
    dynasprint_policy,
    no_sharing_policy,
    static_best_policy,
)
from repro.core import StacModel
from repro.core.policy_search import model_driven_policy
from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import grid_anchor_conditions, uniform_conditions
from repro.testbed import default_machine
from repro.workloads import get_workload

COLLOCATIONS = (
    ("redis", "social"),
    ("spkmeans", "knn"),
    ("jacobi", "bfs"),
    ("spstream", "kmeans"),
)
UTIL = 0.9

DF_CONFIG = dict(
    windows=[(5, 5), (10, 10)],
    mgs_estimators=12,
    mgs_max_instances=6000,
    n_levels=1,
    forests_per_level=4,
    n_estimators=25,
)


def _policies_for_pair(pair):
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=500, n_windows=4, trace_ticks=20),
        rng=21,
    )
    # Uniform coverage plus the policy grid's corner settings (which
    # random draws essentially never produce, e.g. both timeouts 0).
    conditions = uniform_conditions(pair, n=10, rng=21) + grid_anchor_conditions(
        pair, UTIL
    )
    dataset = profiler.profile(conditions)

    ours = StacModel(rng=0, **DF_CONFIG).fit(dataset)
    simple = StacModel(rng=0, learner="random_forest").fit(dataset)

    evaluator = RuntimeEvaluator(
        machine=default_machine(),
        specs=[get_workload(n) for n in pair],
        utilization=UTIL,
        n_queries=2500,
        rng=77,
    )
    policies = [
        static_best_policy(evaluator),
        dcat_policy(evaluator),
        dynasprint_policy(evaluator),
        model_driven_policy(simple, pair, (UTIL, UTIL), name="simple-ml"),
        model_driven_policy(ours, pair, (UTIL, UTIL), name="model-driven"),
    ]
    base_p95 = evaluator.p95(no_sharing_policy(2).timeouts)
    out = {}
    for pol in policies:
        p95 = evaluator.p95(pol.timeouts)
        out[pol.name if not pol.name.startswith("static") else "static"] = (
            base_p95 / p95
        )
    return out


def _run():
    results = {}
    for pair in COLLOCATIONS:
        results[pair] = _policies_for_pair(pair)
    return results


def test_fig8_policies(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    policy_names = ["static", "dcat", "dynasprint", "simple-ml", "model-driven"]
    rows = []
    speedups = {p: [] for p in policy_names}
    for pair, per_policy in results.items():
        for i, svc in enumerate(pair):
            row = [f"{svc}({pair[1 - i]})"]
            for p in policy_names:
                row.append(float(per_policy[p][i]))
                speedups[p].append(float(per_policy[p][i]))
            rows.append(row)
    rows.append(
        ["MEDIAN"] + [float(np.median(speedups[p])) for p in policy_names]
    )
    print_block(
        format_table(
            ["workload (partner)"] + policy_names,
            rows,
            title=(
                "Figure 8: p95 speedup over no-cache-sharing baseline "
                "(reproduced)"
            ),
        )
    )

    med = {p: float(np.median(speedups[p])) for p in policy_names}
    # Our policy gives a solid median speedup over the baseline...
    assert med["model-driven"] > 1.3
    # ...and at least matches every competing approach.
    for p in ("static", "dcat", "dynasprint", "simple-ml"):
        assert med["model-driven"] >= med[p] - 0.02, (p, med)
    # Per Fig. 8e simple ML is competitive with dCat for most workloads.
    assert med["simple-ml"] >= med["dcat"] - 0.1
    # No collocated service is sacrificed: worst-case speedup stays
    # reasonable under our policy (the SLO matching step's purpose).
    assert min(speedups["model-driven"]) > 0.8
