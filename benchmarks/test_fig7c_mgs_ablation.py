"""Figure 7c: multi-grained scanning ablation.

Studies the four knobs of the paper's figure on one collocation:
counter ordering (spatial vs shuffled), MGS window sizes, counter
sampling rate, and forest size (number of estimators).  Expected
shapes: removing spatial ordering hurts, shrinking windows hurts,
slower sampling costs a little, and tiny forests degrade toward the
queue-model baseline.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table, median_ape
from repro.core import EAModel, ProfileDataset
from repro.core.profile_vec import ProfileRow
from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import uniform_conditions
from repro.counters.events import N_COUNTERS

PAIR = ("redis", "social")

BASE = dict(
    windows=[(5, 5), (10, 10)],
    mgs_estimators=12,
    mgs_max_instances=6000,
    n_levels=1,
    forests_per_level=4,
    n_estimators=25,
)


def _profile(sampling_hz, rng=3):
    conditions = uniform_conditions(PAIR, n=14, sampling_hz=sampling_hz, rng=rng)
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=500, n_windows=4, trace_ticks=20),
        rng=rng,
    )
    return profiler.profile(conditions)


def _shuffle_counters(dataset, rng=0):
    """Destroy spatial locality with one fixed permutation per 29-block."""
    perm = np.random.default_rng(rng).permutation(N_COUNTERS)
    rows = []
    for r in dataset.rows:
        t = r.trace.copy()
        blocks = t.shape[0] // N_COUNTERS
        for b in range(blocks):
            sl = slice(b * N_COUNTERS, (b + 1) * N_COUNTERS)
            t[sl] = t[sl][perm]
        rows.append(
            ProfileRow(
                condition=r.condition,
                service_idx=r.service_idx,
                window_idx=r.window_idx,
                x_static=r.x_static,
                x_dynamic=r.x_dynamic,
                trace=t,
                ea=r.ea,
                rt_mean=r.rt_mean,
                rt_p95=r.rt_p95,
            )
        )
    return ProfileDataset(rows=rows)


def _ea_error(train, test, **overrides):
    params = dict(BASE)
    params.update(overrides)
    model = EAModel(learner="deep_forest", rng=0, **params).fit(train)
    return median_ape(model.predict_dataset(test), test.y_ea)


def _run():
    ds = _profile(sampling_hz=1.0)
    train, test = ds.split_conditions(0.6, rng=0)

    results = {}
    results["full model (spatial, 5x5+10x10, 1 Hz, 25 est)"] = _ea_error(train, test)
    results["shuffled counter ordering"] = _ea_error(
        _shuffle_counters(train), _shuffle_counters(test)
    )
    results["small windows only (3x3)"] = _ea_error(
        train, test, windows=[(3, 3)]
    )
    results["small forests (3 estimators)"] = _ea_error(
        train, test, n_estimators=3, mgs_estimators=2
    )

    slow = _profile(sampling_hz=0.2, rng=3)
    tr_s, te_s = slow.split_conditions(0.6, rng=0)
    results["sampling every 5 s (0.2 Hz)"] = _ea_error(tr_s, te_s)
    return results


def test_fig7c_mgs_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_block(
        format_table(
            ["MGS setting", "EA median APE"],
            [[k, v] for k, v in results.items()],
            title="Figure 7c: multi-grained scanning ablation (reproduced)",
            precision=4,
        )
    )
    full = results["full model (spatial, 5x5+10x10, 1 Hz, 25 est)"]
    # The figure's shapes: every ablation is no better than the full model.
    assert full <= results["shuffled counter ordering"] * 1.05
    assert full <= results["small windows only (3x3)"] * 1.05
    assert full <= results["small forests (3 estimators)"] * 1.05
    assert full <= results["sampling every 5 s (0.2 Hz)"] * 1.2
