"""Extension: adaptive online management under drifting load.

The conclusion positions the trained model as a direct manager.  This
bench ramps offered load from 40% to 92% and compares three managers on
the ground-truth testbed:

- no management (private cache only),
- one-shot: the timeout vector planned at the first (light) epoch and
  kept — dynaSprint-style calibration reuse,
- adaptive: re-planning each epoch from the current utilizations.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.core import StacModel
from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import grid_anchor_conditions, uniform_conditions
from repro.manager import AdaptiveTimeoutController, LoadScenario, OnlineManager
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import get_workload

#: Redis gains a lot from extra ways; Spstream gains little but churns
#: the shared region — the pair whose best plan shifts with load.
PAIR = ("redis", "spstream")
N_EPOCHS = 5

DF_CONFIG = dict(
    windows=[(5, 5), (10, 10)],
    mgs_estimators=10,
    mgs_max_instances=5000,
    n_levels=1,
    forests_per_level=4,
    n_estimators=20,
)


def _unmanaged(scenario, rng=40):
    """No cache sharing at all, epoch by epoch."""
    out = []
    seeds = np.random.default_rng(rng).integers(0, 2**31, size=scenario.n_epochs)
    for utils, seed in zip(scenario.epochs, seeds):
        cfg = CollocationConfig(
            machine=default_machine(),
            services=[
                CollocatedService(get_workload(n), timeout=np.inf, utilization=u)
                for n, u in zip(PAIR, utils)
            ],
        )
        run = CollocationRuntime(cfg, rng=int(seed)).run(n_queries=1200)
        out.append(
            np.array(
                [np.percentile(s.response_times_norm, 95) for s in run.services]
            )
        )
    return out


def _run():
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=450, n_windows=3, trace_ticks=16),
        rng=19,
    )
    conditions = uniform_conditions(PAIR, n=10, rng=19) + grid_anchor_conditions(
        PAIR, 0.9
    )
    model = StacModel(rng=0, **DF_CONFIG).fit(profiler.profile(conditions))
    controller = AdaptiveTimeoutController(model=model, workloads=PAIR)
    scenario = LoadScenario.ramp(2, 0.40, 0.92, N_EPOCHS)

    manager = OnlineManager(controller, n_queries=1200, rng=41)
    adaptive = manager.run(scenario, adapt=True)
    static = OnlineManager(controller, n_queries=1200, rng=41).run(
        scenario, adapt=False
    )
    unmanaged = _unmanaged(scenario)
    return scenario, adaptive, static, unmanaged


def test_online_manager(benchmark):
    scenario, adaptive, static, unmanaged = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    rows = []
    for i in range(scenario.n_epochs):
        rows.append(
            [
                scenario.epochs[i][0],
                float(unmanaged[i].mean()),
                float(static[i].p95.mean()),
                float(adaptive[i].p95.mean()),
                str(adaptive[i].timeouts),
            ]
        )
    print_block(
        format_table(
            ["load", "unmanaged p95", "one-shot p95", "adaptive p95", "adaptive plan"],
            rows,
            title="Extension: online management across a load ramp (mean over services)",
        )
    )

    # Managed beats unmanaged overall.
    total_un = sum(float(u.mean()) for u in unmanaged)
    total_ad = sum(float(r.p95.mean()) for r in adaptive)
    total_st = sum(float(r.p95.mean()) for r in static)
    assert total_ad < total_un
    # Re-planning must never lose to one-shot calibration (and usually
    # wins on the loaded epochs where the light-load plan misfits).
    assert total_ad <= total_st * 1.05
    # The plan genuinely moves with load (the adaptation being tested).
    assert len({r.timeouts for r in adaptive}) > 1
