"""Section 5's insight experiment: concept clustering vs counter clustering.

The paper's final evaluation claim: clustering workloads with the
concepts the deep forest learned exposes a complex interaction between
arrival rate, service time and timeout that clustering on raw hardware
counters does not reveal.

Reproduced as: concepts group workloads by how much short-term
allocation policy actually moves their effective allocation (EA dynamic
range), while raw counters group them by cache traffic magnitude —
putting Redis (policy-sensitive) together with Spstream (policy-inert
but equally noisy), exactly the confusion the paper warns about.
"""

import numpy as np

from benchmarks.conftest import print_block, profile_pairs
from repro.analysis import cluster_workloads_by_concepts, format_table
from repro.analysis.concepts import cluster_workloads_by_counters
from repro.core import EAModel

PAIRS = (("redis", "knn"), ("spstream", "spkmeans"))


def _ea_ranges(dataset):
    by = {}
    for r in dataset.rows:
        by.setdefault(r.service_name, []).append(r.ea)
    return {name: float(np.ptp(v)) for name, v in by.items()}


def _run():
    dataset = profile_pairs(PAIRS, n_per_pair=12, rng=13)
    model = EAModel(
        learner="cascade", rng=0, n_levels=2, forests_per_level=4, n_estimators=20
    ).fit(dataset)
    concepts = cluster_workloads_by_concepts(model, dataset, k=2, rng=0)
    counters = cluster_workloads_by_counters(dataset, k=2, rng=0)
    return concepts, counters, _ea_ranges(dataset)


def _same_cluster(clusters, a, b) -> bool:
    return clusters[a] == clusters[b]


def test_concept_insight(benchmark):
    concepts, counters, ea_ranges = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    names = sorted(concepts)
    rows = [
        [n, concepts[n], counters[n], ea_ranges[n]] for n in names
    ]
    print_block(
        format_table(
            ["workload", "concept cluster", "counter cluster", "EA dynamic range"],
            rows,
            title="Section 5: concept vs counter workload clustering (reproduced)",
            precision=4,
        )
    )

    # Redis has by far the widest EA response to the timeout policy.
    assert ea_ranges["redis"] == max(ea_ranges.values())
    assert ea_ranges["redis"] > 1.5 * ea_ranges["spstream"]

    # Counter clustering groups by traffic: redis lands with spstream
    # (both high-intensity), hiding the policy interaction...
    assert _same_cluster(counters, "redis", "spstream")
    # ...while concept clustering separates the policy-sensitive redis
    # from the policy-inert spstream.
    assert not _same_cluster(concepts, "redis", "spstream")
    # And the two clusterings genuinely disagree.
    assert any(
        _same_cluster(concepts, a, b) != _same_cluster(counters, a, b)
        for i, a in enumerate(names)
        for b in names[i + 1 :]
    )
