"""Figure 3: deep-learning concepts beat raw-feature grouping.

Recreates the figure's setup: three input features (arrival rate,
timeout, LLC misses) where anomalous effective allocation follows a
hidden interaction no axis-aligned grouping captures.  A cascade level
(concept learner) should generalize where a shallow tree over-fits.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.baselines import DecisionTreeBaseline
from repro.forest import CascadeForest


def _make_anomaly_data(n, rng):
    """Anomalous EA when high arrival coincides with tight timeouts AND
    elevated misses — a conjunction spread across the feature space."""
    r = np.random.default_rng(rng)
    X = np.column_stack(
        [
            r.uniform(0.25, 0.95, n),  # arrival rate
            r.uniform(0.0, 6.0, n),  # timeout
            r.uniform(0.0, 1.0, n),  # LLC misses
        ]
    )
    anomalous = (X[:, 0] > 0.7) & (X[:, 1] < 2.0) & (X[:, 2] > 0.5)
    y = np.where(anomalous, 0.4, 0.9) + r.normal(0, 0.03, n)
    return X, y, anomalous


def _run():
    X, y, _ = _make_anomaly_data(400, rng=0)
    Xt, yt, anom_t = _make_anomaly_data(300, rng=1)
    shallow = DecisionTreeBaseline(max_depth=2, rng=0).fit(X, y)
    cascade = CascadeForest(
        n_levels=2, forests_per_level=2, n_estimators=20, rng=0
    ).fit(X, y)

    def anomaly_accuracy(pred):
        flagged = pred < 0.65
        return float((flagged == anom_t).mean())

    return {
        "shallow tree (depth 2)": anomaly_accuracy(shallow.predict(Xt)),
        "cascade concepts": anomaly_accuracy(cascade.predict(Xt)),
    }


def test_fig3_concepts(benchmark):
    acc = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_block(
        format_table(
            ["model", "anomalous-EA detection accuracy"],
            [[k, v] for k, v in acc.items()],
            title="Figure 3: concepts uncover hidden EA anomalies (reproduced)",
        )
    )
    # The paper's point: bounded-feature grouping cannot reach high
    # accuracy; concept learning can.
    assert acc["cascade concepts"] > 0.9
    assert acc["cascade concepts"] > acc["shallow tree (depth 2)"]
