"""Section 4: stratified vs uniform condition sampling.

The paper's implementation clusters seed experiments by effective cache
allocation and samples near the centroids, cutting profiling time by
67%.  Reproduced as: at an equal profiling budget, stratified sampling
should match or beat uniform sampling's model error; equivalently, it
reaches a target error with fewer runs.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table, median_ape
from repro.core import EAModel, stratified_conditions, uniform_conditions
from repro.core.profiler import Profiler, ProfilerSettings

PAIR = ("redis", "spstream")
BUDGET = 12

DF_CONFIG = dict(
    windows=[(5, 5)],
    mgs_estimators=8,
    mgs_max_instances=4000,
    n_levels=1,
    forests_per_level=4,
    n_estimators=20,
)


def _run():
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=450, n_windows=4, trace_ticks=16),
        rng=11,
    )
    test = profiler.profile(uniform_conditions(PAIR, n=10, rng=123))

    def err_for(conditions):
        train = profiler.profile(conditions)
        model = EAModel(learner="deep_forest", rng=0, **DF_CONFIG).fit(train)
        return median_ape(model.predict_dataset(test), test.y_ea)

    uniform = uniform_conditions(PAIR, n=BUDGET, rng=11)
    stratified = stratified_conditions(
        PAIR,
        n=BUDGET,
        measure_ea=lambda c: profiler.quick_ea(c, n_queries=120),
        n_seeds=5,
        n_clusters=3,
        rng=11,
    )
    return {
        "uniform": err_for(uniform),
        "stratified": err_for(stratified),
    }


def test_stratified_sampling(benchmark):
    errs = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_block(
        format_table(
            ["sampling strategy", f"EA median APE at budget={BUDGET}"],
            [[k, v] for k, v in errs.items()],
            title="Section 4: stratified vs uniform sampling (reproduced)",
            precision=4,
        )
    )
    # At equal budget, stratified sampling should be at least competitive
    # (the paper: same accuracy with 67% less profiling).
    assert errs["stratified"] <= errs["uniform"] * 1.25
