"""Extension: policy robustness under bursty (MMPP) arrivals.

Section 5.2 explains dynaSprint's failure as missing "increased
variability" — timeout settings calibrated under smooth low-rate
traffic misbehave when arrivals burst.  This bench runs the same
collocation under Poisson and MMPP arrivals at identical mean load and
compares (1) the tail inflation bursts cause and (2) how much
short-term allocation claws back in each regime.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import get_workload

PAIR = ("redis", "social")
UTIL = 0.85


def _p95(arrival_process, timeout, rng=5):
    cfg = CollocationConfig(
        machine=default_machine(),
        services=[
            CollocatedService(
                get_workload(name),
                timeout=timeout,
                utilization=UTIL,
                arrival_process=arrival_process,
            )
            for name in PAIR
        ],
    )
    res = CollocationRuntime(cfg, rng=rng).run(n_queries=2500)
    return np.array(
        [np.percentile(s.response_times_norm, 95) for s in res.services]
    )


def _run():
    out = {}
    for proc in ("poisson", "mmpp"):
        out[proc] = {
            "no STA": _p95(proc, np.inf),
            "STA t=0.5": _p95(proc, 0.5),
        }
    return out


def test_bursty_arrivals(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for proc, by_policy in results.items():
        for policy, p95 in by_policy.items():
            rows.append([proc, policy, float(p95[0]), float(p95[1])])
    print_block(
        format_table(
            ["arrivals", "policy", f"{PAIR[0]} p95", f"{PAIR[1]} p95"],
            rows,
            title="Extension: Poisson vs MMPP arrivals at equal mean load",
        )
    )

    # Bursts inflate the no-STA tail at the same mean load.
    assert np.all(results["mmpp"]["no STA"] > results["poisson"]["no STA"])
    # STA still helps under bursts...
    assert np.all(results["mmpp"]["STA t=0.5"] < results["mmpp"]["no STA"])
    # ...and its *absolute* tail savings are larger there (the
    # variability dynaSprint's smooth-traffic calibration never sees).
    saved_poisson = results["poisson"]["no STA"] - results["poisson"]["STA t=0.5"]
    saved_mmpp = results["mmpp"]["no STA"] - results["mmpp"]["STA t=0.5"]
    assert saved_mmpp.sum() > saved_poisson.sum()
