"""Disabled-telemetry overhead on the batched STAP queueing kernel.

The telemetry contract says instrumentation costs one enabled-flag
check per site while disabled.  This bench verifies the claim where it
matters most — the batched G/G/k kernel at policy-search scale — by
timing the same workload with telemetry disabled (the default every
consumer sees) and enabled (metrics + spans, no event tracing).

The disabled-mode hooks sit in the timed path of both runs, so the
spread between the two bounds the *entire* per-run instrumentation
cost — flag checks plus the enabled run's actual recording — from
above.  The acceptance gate requires that spread to stay under 3% of
kernel wall clock.  Equivalence (bit-identical outputs in all modes,
including queue-event tracing) always runs, even under
``BENCH_SMOKE=1``.

Full runs append to ``BENCH_telemetry_overhead.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_block
from repro import telemetry
from repro.analysis import format_table
from repro.queueing import StapQueueConfig, simulate_stap_queue_batch

N_CONDITIONS = 25
N_QUERIES = 4000
SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
MAX_DISABLED_OVERHEAD = 0.03
RESULTS_JSON = (
    Path(__file__).resolve().parents[1] / "BENCH_telemetry_overhead.json"
)


def _grid_round(rng):
    timeouts = (0.0, 0.5, 1.0, 2.0, 4.0)
    configs = [
        StapQueueConfig(
            n_servers=2,
            mean_service_time=0.9 + 0.01 * (i % 7),
            timeout=timeouts[i % 5],
            boost_speedup=1.2 + 0.1 * (i % 4),
        )
        for i in range(N_CONDITIONS)
    ]
    gaps = rng.exponential(1.0, size=(N_CONDITIONS, N_QUERIES))
    rates = 0.8 + 0.15 * rng.random(N_CONDITIONS)
    arrivals = np.cumsum(gaps / rates[:, None], axis=1)
    demands = rng.lognormal(0.0, 0.4, size=(N_CONDITIONS, N_QUERIES))
    return arrivals, demands, configs


def _best_of(reps, fn):
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _record(row: dict) -> None:
    history = []
    if RESULTS_JSON.exists():
        try:
            history = json.loads(RESULTS_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(row)
    RESULTS_JSON.write_text(json.dumps(history, indent=2) + "\n")


def test_telemetry_overhead():
    arrivals, demands, configs = _grid_round(np.random.default_rng(0))
    n_cpus = len(os.sched_getaffinity(0))
    reps = 2 if SMOKE else 7

    def run():
        return simulate_stap_queue_batch(arrivals, demands, configs)

    # Bit-identity across modes: always asserted, every mode.
    telemetry.disable()
    baseline = run()
    telemetry.configure()
    with_metrics = run()
    telemetry.configure(trace_queue_events=True)
    with_events = run()
    n_trace_events = telemetry.queue_sink().n_events
    telemetry.disable()
    for fld in ("start_times", "completion_times", "boosted", "boosted_time"):
        ref = getattr(baseline, fld)
        assert np.array_equal(ref, getattr(with_metrics, fld)), fld
        assert np.array_equal(ref, getattr(with_events, fld)), fld

    # Wall clock, interleaved so machine noise hits all modes equally.
    t_disabled, t_enabled = np.inf, np.inf
    for _ in range(reps):
        telemetry.disable()
        t_disabled = min(t_disabled, _best_of(1, run))
        telemetry.configure()
        t_enabled = min(t_enabled, _best_of(1, run))
    telemetry.disable()

    enabled_overhead = t_enabled / t_disabled - 1.0
    rows = [
        ["disabled (default)", t_disabled * 1e3, 0.0],
        ["enabled (metrics+spans)", t_enabled * 1e3, 100 * enabled_overhead],
    ]
    print_block(
        format_table(
            ["mode", "ms (best of %d)" % reps, "overhead %"],
            rows,
            title=(
                f"Telemetry overhead, batched G/G/2 kernel, "
                f"C={N_CONDITIONS} x {N_QUERIES} queries, {n_cpus} CPU(s)"
                + (" [smoke]" if SMOKE else "")
            ),
        )
    )

    if not SMOKE:
        _record(
            {
                "bench": "telemetry_overhead",
                "timestamp": int(time.time()),
                "n_conditions": N_CONDITIONS,
                "n_queries": N_QUERIES,
                "n_cpus": n_cpus,
                "disabled_s": round(t_disabled, 6),
                "enabled_s": round(t_enabled, 6),
                "enabled_overhead": round(enabled_overhead, 4),
                "trace_events": n_trace_events,
            }
        )
        # The contract gate: disabled-mode hooks are in the timed path
        # of *both* runs, so if they cost anything measurable the
        # disabled run cannot beat the enabled one by less than the
        # hook cost.  Gate directly on the spread between the two —
        # the full per-run instrumentation (flag checks + the enabled
        # run's actual recording) must stay under 3% of kernel time.
        assert enabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"telemetry overhead {100 * enabled_overhead:.2f}% exceeds "
            f"{100 * MAX_DISABLED_OVERHEAD:.0f}% on the batched kernel"
        )
