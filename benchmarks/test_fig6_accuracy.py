"""Figure 6: response-time prediction accuracy across modeling approaches.

Paper's result (median / p95 absolute percentage error):
our approach 11%/12%; linear regression 50%/>300%; decision tree
20%/>100%; CNN 26%; queueing model alone 23%.

Protocol reproduced from Section 5.1:

- splits are at *condition* granularity, and predicting a test condition
  uses NO measurements from it — every model sees only the controllable
  settings plus simulator-derived (nominal) dynamic features and traces;
- our model trains on only 33% of the conditions while the competitors
  get 70%;
- predictions are compared against each condition's measured average
  response time on the testbed.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import ape_summary, format_table
from repro.baselines import DecisionTreeBaseline, RidgeRegression
from repro.baselines.cnn import CNNHyperParams, CNNRegressor
from repro.core import StacModel
from repro.core.rt_model import ResponseTimeModel
from repro.workloads import get_workload

DF_CONFIG = dict(
    windows=[(5, 5), (10, 10)],
    mgs_estimators=12,
    mgs_max_instances=6000,
    n_levels=2,
    forests_per_level=4,
    n_estimators=25,
)


def _flatten(X_flat, traces):
    return np.concatenate([X_flat, traces.reshape(traces.shape[0], -1)], axis=1)


def _ground_truth(test):
    """Per-(condition, service) measured mean RT + lookup keys."""
    groups = test.condition_groups()
    y = test.y_rt_mean
    keys, actual = [], []
    for (cid, sidx), idxs in groups.items():
        keys.append((test.rows[idxs[0]].condition, sidx))
        actual.append(float(np.mean(y[idxs])))
    return keys, np.asarray(actual)


def _queue_only_prediction(cond, sidx):
    """First-principles queueing with no cache knowledge at all.

    Without Stage 2 there is nothing to say how *effective* the extra
    ways are, so the natural assumption is EA = 1: the boosted rate
    scales with the gross allocation increase.  This overpredicts
    speedup whenever data reuse, footprint or contention make the extra
    ways less than fully effective.
    """
    rt_model = ResponseTimeModel(rng=0)
    spec = get_workload(cond.workloads[sidx])
    return rt_model.predict_response_time(
        cond.utilizations[sidx], cond.timeouts[sidx], 2.0, 1.0, spec.service_cv
    ).mean


def _run_all(dataset):
    comp_train, test = dataset.split_conditions(0.70, rng=0)
    ours_train, _ = comp_train.split_conditions(0.33 / 0.70, rng=1)

    keys, actual = _ground_truth(test)

    # Our approach + the cascade variant share the fixed-point machinery.
    ours = StacModel(rng=0, **DF_CONFIG).fit(ours_train)
    concepts = StacModel(
        rng=0, learner="cascade", n_levels=2, forests_per_level=4, n_estimators=25
    ).fit(ours_train)

    # Competing direct models train on measured profiles (70%).
    Xtr = _flatten(comp_train.X_flat, comp_train.traces)
    ytr = comp_train.y_rt_mean
    lin = RidgeRegression(alpha=1.0).fit(Xtr, ytr)
    tree = DecisionTreeBaseline(rng=0).fit(Xtr, ytr)
    cnn = CNNRegressor(
        CNNHyperParams(n_filters=8, kernel=(5, 5), hidden=32, epochs=40), rng=0
    ).fit(comp_train.X_flat, comp_train.traces, ytr)

    preds = {name: [] for name in (
        "our approach (DF + queue)", "queue + concepts", "queueing model only",
        "linear regression", "decision tree", "cnn (direct)",
    )}
    ea_pred, ea_true = [], []
    groups = test.condition_groups()
    y_ea = test.y_ea
    predicted_conditions = {}
    for (cond, sidx), idxs in zip(keys, groups.values()):
        if id(cond) not in predicted_conditions:
            predicted_conditions[id(cond)] = (
                ours.predict_condition(cond),
                concepts.predict_condition(cond),
            )
        ours_out, conc_out = predicted_conditions[id(cond)]
        preds["our approach (DF + queue)"].append(ours_out.summaries[sidx].mean)
        preds["queue + concepts"].append(conc_out.summaries[sidx].mean)
        preds["queueing model only"].append(_queue_only_prediction(cond, sidx))
        # Direct models score the same nominal (simulator-derived) inputs.
        xe = ours_out.X_flat[sidx : sidx + 1]
        te = ours_out.traces[sidx : sidx + 1]
        preds["linear regression"].append(float(lin.predict(_flatten(xe, te))[0]))
        preds["decision tree"].append(float(tree.predict(_flatten(xe, te))[0]))
        preds["cnn (direct)"].append(float(cnn.predict(xe, te)[0]))
        ea_pred.append(float(ours_out.effective_allocations[sidx]))
        ea_true.append(float(np.mean(y_ea[idxs])))

    results = {
        name: ape_summary(np.maximum(np.asarray(p), 1e-3), actual)
        for name, p in preds.items()
    }
    results["_ea_ours"] = ape_summary(np.asarray(ea_pred), np.asarray(ea_true))
    return results


def test_fig6_accuracy(benchmark, fig6_dataset):
    results = benchmark.pedantic(
        _run_all, args=(fig6_dataset,), rounds=1, iterations=1
    )
    ea_ours = results.pop("_ea_ours")

    order = [
        "linear regression",
        "decision tree",
        "cnn (direct)",
        "queueing model only",
        "queue + concepts",
        "our approach (DF + queue)",
    ]
    rows = [
        [name, results[name]["median"], results[name]["p95"], results[name]["n"]]
        for name in order
    ]
    print_block(
        format_table(
            ["approach", "median APE", "p95 APE", "n condition-services"],
            rows,
            title="Figure 6: response time prediction error (reproduced)",
        )
        + f"\n(our EA prediction error vs measured EA: median {ea_ours['median']:.3f})"
    )

    ours = results["our approach (DF + queue)"]["median"]
    # The headline orderings of Figure 6.
    assert ours < results["linear regression"]["median"]
    assert ours < results["decision tree"]["median"]
    assert ours < results["cnn (direct)"]["median"]
    assert ours <= results["queueing model only"]["median"]
    # The paper reports ~11% median error; hold a generous band.
    assert ours < 0.25


def test_fig6_hist_strategy_parity(fig6_dataset):
    """Histogram split finding must not cost Figure 6 accuracy.

    Same protocol as the main bench, two models: the exact-splitter
    deep forest and its ``forest_strategy="hist"`` twin.  Quantile
    binning changes which thresholds are candidates, so trees differ —
    but with <= 255 bins per feature the candidate sets are nearly the
    paper's, and the end-to-end response-time error must stay within
    0.10 median APE of the exact model (it is usually within 0.03).
    """
    comp_train, test = fig6_dataset.split_conditions(0.70, rng=0)
    ours_train, _ = comp_train.split_conditions(0.33 / 0.70, rng=1)
    keys, actual = _ground_truth(test)

    summaries = {}
    for strategy in ("exact", "hist"):
        model = StacModel(
            rng=0, forest_strategy=strategy, **DF_CONFIG
        ).fit(ours_train)
        preds = []
        cache = {}
        for cond, sidx in keys:
            if id(cond) not in cache:
                cache[id(cond)] = model.predict_condition(cond)
            preds.append(cache[id(cond)].summaries[sidx].mean)
        summaries[strategy] = ape_summary(
            np.maximum(np.asarray(preds), 1e-3), actual
        )

    rows = [
        [s, summaries[s]["median"], summaries[s]["p95"], summaries[s]["n"]]
        for s in ("exact", "hist")
    ]
    print_block(
        format_table(
            ["forest strategy", "median APE", "p95 APE", "n condition-services"],
            rows,
            title="Figure 6 protocol: exact vs histogram split finding",
        )
    )
    assert summaries["hist"]["median"] <= summaries["exact"]["median"] + 0.10
