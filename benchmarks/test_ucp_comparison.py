"""Extension: UCP static partitioning vs model-driven short-term allocation.

Qureshi & Patt's utility-based cache partitioning (related work [21])
optimally splits ways by marginal miss utility — but "ignores queuing
delay since it is implemented below the software stack".  At the same
total way budget (6 ways on the e5-2683), UCP maximizes aggregate
utility by starving the low-utility workload; temporal sharing driven
by the response-time model keeps both services' tails healthy.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.baselines import ucp_private_mb
from repro.core import StacModel, model_driven_policy
from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import grid_anchor_conditions, uniform_conditions
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
)
from repro.workloads import get_workload

PAIRS = (("redis", "social"), ("spkmeans", "bfs"))
UTIL = 0.9
#: Equal way budget everywhere: 6 ways (2 MB each) — static layouts
#: split them privately (3+3 or UCP's pick); STA uses 2+2 private ways
#: per service plus a 2-way shared region.
TOTAL_WAYS = 6
PRIVATE_MB = 4.0
SHARED_MB = 4.0

DF_CONFIG = dict(
    windows=[(5, 5)],
    mgs_estimators=8,
    mgs_max_instances=4000,
    n_levels=1,
    forests_per_level=4,
    n_estimators=25,
)


def _p95(specs, private_mb, shared_mb, timeouts, rng=61):
    cfg = CollocationConfig(
        machine=default_machine(),
        services=[
            CollocatedService(s, timeout=t, utilization=UTIL)
            for s, t in zip(specs, timeouts)
        ],
        private_mb=private_mb,
        shared_mb=shared_mb,
    )
    run = CollocationRuntime(cfg, rng=rng).run(n_queries=2000)
    return np.array([np.percentile(s.response_times_norm, 95) for s in run.services])


def _run():
    machine = default_machine()
    rows = []
    for pair in PAIRS:
        specs = [get_workload(n) for n in pair]
        equal = _p95(specs, [6.0, 6.0], 0.0, (np.inf, np.inf))
        ucp_mb = ucp_private_mb(specs, TOTAL_WAYS, machine.way_bytes)
        ucp = _p95(specs, ucp_mb, 0.0, (np.inf, np.inf))

        profiler = Profiler(
            settings=ProfilerSettings(
                n_queries=500,
                n_windows=4,
                trace_ticks=16,
                private_mb=PRIVATE_MB,
                shared_mb=SHARED_MB,
            ),
            rng=23,
        )
        conditions = uniform_conditions(pair, n=10, rng=23) + grid_anchor_conditions(
            pair, UTIL
        )
        model = StacModel(
            rng=0, private_mb=PRIVATE_MB, shared_mb=SHARED_MB, **DF_CONFIG
        ).fit(profiler.profile(conditions))
        plan = model_driven_policy(model, pair, (UTIL, UTIL))
        sta = _p95(specs, PRIVATE_MB, SHARED_MB, plan.timeouts)
        for i, name in enumerate(pair):
            rows.append([f"{name}({pair[1 - i]})", equal[i], ucp[i], sta[i]])
    return rows


def test_ucp_comparison(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_block(
        format_table(
            ["workload (partner)", "equal split p95", "UCP p95", "model-driven STA p95"],
            rows,
            title=(
                "Extension: static partitioning (equal, UCP) vs short-term "
                "allocation at the same 6-way budget"
            ),
        )
    )
    equal = np.array([r[1] for r in rows])
    ucp = np.array([r[2] for r in rows])
    sta = np.array([r[3] for r in rows])
    # UCP's aggregate-utility objective sacrifices somebody: its loser's
    # tail is the worst in the whole table...
    assert sta.max() < ucp.max()
    assert equal.max() < ucp.max()
    # ...while its winner is the fastest (the objective it optimizes).
    assert ucp.min() <= sta.min() + 1e-9
    # STA protects the worse-off service of each pair at least as well
    # as the equal static split.
    for p in range(len(PAIRS)):
        pair_slice = slice(2 * p, 2 * p + 2)
        assert sta[pair_slice].max() <= equal[pair_slice].max() * 1.1
