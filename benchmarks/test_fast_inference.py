"""Extension: Bolt-style packed inference vs naive tree traversal.

Reference [24] of the paper is the authors' fast random-forest
inference engine ("Bolt", Middleware '22); inference latency matters
here because online policy exploration queries the deep forest per
candidate timeout vector with small batches.  The packed layout
(contiguous node arrays, level-synchronous gathers, leaf self-loops)
wins exactly where Bolt targets: small-batch, latency-sensitive
inference.
"""

import time

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.forest import PackedForest, RandomForestRegressor

BATCHES = (8, 32, 128, 2000)


def _setup():
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(600, 25))
    y = np.sin(3 * X[:, 0]) + X[:, 1] * X[:, 2]
    forest = RandomForestRegressor(n_estimators=100, max_depth=10, rng=0).fit(X, y)
    return forest, PackedForest.from_forest(forest), rng


def _naive_predict(forest, X):
    """Per-tree traversal, bypassing the packed dispatch that
    ``_BaseForest.predict`` now applies to small batches."""
    out = np.zeros(X.shape[0])
    for t in forest.trees_:
        out += t.predict(X)
    return out / len(forest.trees_)


def _time(fn, repeats=10):
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats


def _run():
    forest, packed, rng = _setup()
    rows = []
    for batch in BATCHES:
        Xt = rng.uniform(size=(batch, 25))
        assert np.allclose(packed.predict(Xt), _naive_predict(forest, Xt))
        naive = _time(lambda: _naive_predict(forest, Xt))
        fast = _time(lambda: packed.predict(Xt))
        rows.append([batch, naive * 1e3, fast * 1e3, naive / fast])
    return rows


def test_fast_inference(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_block(
        format_table(
            ["batch size", "naive (ms)", "packed (ms)", "speedup"],
            rows,
            title="Extension: Bolt-style packed forest inference (100 trees)",
        )
    )
    by_batch = {r[0]: r[3] for r in rows}
    # Small-batch latency is where packing pays off (Bolt's regime).
    assert by_batch[8] > 5.0
    assert by_batch[32] > 2.0
    # It must never be a large regression at big batches.
    assert by_batch[2000] > 0.7
