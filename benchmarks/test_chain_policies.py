"""Extension: model-driven policies for 3-service chains.

The paper evaluates pairwise collocations (the structure Section 2's
contiguity analysis motivates), but its chain layout generalizes: a
middle service can share one region with each neighbour.  This bench
runs the full pipeline on a 3-service chain and compares the chosen
timeout vector against no-sharing and everything-shared baselines on
the ground-truth testbed.
"""

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table
from repro.baselines import RuntimeEvaluator
from repro.core import StacModel, model_driven_policy
from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import grid_anchor_conditions, uniform_conditions
from repro.testbed import default_machine
from repro.workloads import get_workload

CHAIN = ("redis", "social", "knn")
UTIL = 0.9

DF_CONFIG = dict(
    windows=[(5, 5), (10, 10)],
    mgs_estimators=10,
    mgs_max_instances=5000,
    n_levels=1,
    forests_per_level=4,
    n_estimators=20,
)


def _run():
    profiler = Profiler(
        settings=ProfilerSettings(n_queries=450, n_windows=3, trace_ticks=16),
        rng=17,
    )
    conditions = uniform_conditions(CHAIN, n=8, rng=17) + grid_anchor_conditions(
        CHAIN, UTIL, timeout_grid=(0.0, 1.0, 4.0)
    )
    dataset = profiler.profile(conditions)
    model = StacModel(rng=0, **DF_CONFIG).fit(dataset)
    chosen = model_driven_policy(
        model, CHAIN, (UTIL,) * 3, timeout_grid=(0.0, 1.0, 4.0)
    )

    evaluator = RuntimeEvaluator(
        machine=default_machine(),
        specs=[get_workload(n) for n in CHAIN],
        utilization=UTIL,
        n_queries=2000,
        rng=88,
    )
    results = {
        "no sharing": evaluator.p95((np.inf,) * 3),
        "always shared": evaluator.p95((0.0,) * 3),
        "model-driven": evaluator.p95(chosen.timeouts),
    }
    return chosen, results


def test_chain_policies(benchmark):
    chosen, results = benchmark.pedantic(_run, rounds=1, iterations=1)

    base = results["no sharing"]
    rows = [
        [name] + [float(base[i] / p95[i]) for i in range(3)]
        for name, p95 in results.items()
    ]
    print_block(
        format_table(
            ["policy"] + [f"{w} speedup" for w in CHAIN],
            rows,
            title=(
                "Extension: 3-service chain — p95 speedup over no-sharing "
                f"(chosen timeouts: {chosen.timeouts})"
            ),
        )
    )

    ours = base / results["model-driven"]
    shared = base / results["always shared"]
    # The chosen vector helps overall and never sacrifices a service.
    assert np.median(ours) > 1.1
    assert ours.min() > 0.9
    # It at least matches naive full sharing on the worst-off service.
    assert ours.min() >= shared.min() - 0.05
