"""Figure 7b: generalization across processor LLC sizes.

Reruns the profiling + modeling pipeline on every catalogued Xeon
(20-72 MB LLC), fully utilizing each machine's cores with collocated
workloads (secondary axis of the figure) and the paper's per-machine
reservation sizes.  The paper: median error stays below 15% everywhere.
"""

import itertools

import numpy as np

from benchmarks.conftest import print_block
from repro.analysis import format_table, median_ape
from repro.core import StacModel
from repro.core.profiler import Profiler, ProfilerSettings
from repro.core.sampling import uniform_conditions
from repro.testbed import MACHINES
from repro.workloads import WORKLOADS

#: Per-machine LLC reserved per workload (Section 5.1's Figure 7b text).
RESERVED_MB = {
    "platinum-8275-s0": 3.0,
    "platinum-8275-s1": 3.0,
    "e5-2683": 2.0,
    "e5-2650": 3.0,
    "e5-2620": 4.0,
}

DF_CONFIG = dict(
    windows=[(5, 5), (10, 10)],
    mgs_estimators=10,
    mgs_max_instances=5000,
    n_levels=1,
    forests_per_level=4,
    n_estimators=20,
)


def _collocation_for(machine, private_mb):
    """Fully utilize cores, bounded by the ways the chain layout needs."""
    private_ways = machine.mb_to_ways(private_mb)
    shared_ways = machine.mb_to_ways(private_mb)
    by_cores = machine.max_collocated
    # n*private + (n-1)*shared <= llc_ways
    by_ways = (machine.llc_ways + shared_ways) // (private_ways + shared_ways)
    n = max(2, min(by_cores, by_ways))
    names = list(itertools.islice(itertools.cycle(WORKLOADS), n))
    return names


def _run():
    rows = []
    for name, machine in MACHINES.items():
        private_mb = RESERVED_MB[name]
        workloads = _collocation_for(machine, private_mb)
        conditions = uniform_conditions(tuple(workloads), n=10, rng=7)
        profiler = Profiler(
            machine=machine,
            settings=ProfilerSettings(
                n_queries=450,
                n_windows=3,
                trace_ticks=16,
                private_mb=private_mb,
                shared_mb=private_mb,
            ),
            rng=7,
        )
        ds = profiler.profile(conditions)
        train, test = ds.split_conditions(0.6, rng=0)
        model = StacModel(
            machine=machine,
            private_mb=private_mb,
            shared_mb=private_mb,
            rng=0,
            **DF_CONFIG,
        ).fit(train)
        pred = model.predict_rows(test)
        groups = test.condition_groups()
        p, a = [], []
        for idxs in groups.values():
            p.append(float(np.mean(pred["rt_mean"][idxs])))
            a.append(float(np.mean(test.y_rt_mean[idxs])))
        err = median_ape(np.asarray(p), np.asarray(a))
        rows.append([name, machine.llc_mb, len(workloads), err])
    return rows


def test_fig7b_processors(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = sorted(rows, key=lambda r: r[1])
    print_block(
        format_table(
            ["machine", "LLC MB", "collocated workloads", "median APE"],
            rows,
            title="Figure 7b: accuracy across processor cache sizes (reproduced)",
        )
    )
    # The paper's claim: median error below 15% on every processor.  We
    # hold a 30% band for the scaled-down campaign.
    for name, llc, n, err in rows:
        assert err < 0.30, f"{name}: {err:.3f}"
    # More cores -> more collocated workloads (the striped secondary axis).
    by_size = {r[0]: r[2] for r in rows}
    assert by_size["platinum-8275-s0"] > by_size["e5-2620"]
