"""Bolt-style fast batch inference for fitted forests.

The authors' companion work (Romero et al., "Bolt: Fast Inference for
Random Forests", Middleware '22 — reference [24] of the paper) shows
that packing all trees into contiguous arrays and advancing every
(tree, sample) pair level-by-level beats pointer-chasing tree
traversal.  ``PackedForest`` does exactly that: one NumPy gather per
tree level for the *entire* forest, instead of one Python-level loop
iteration per tree.
"""

from __future__ import annotations

import numpy as np

_LEAF = -1


class PackedForest:
    """A fitted forest flattened into contiguous arrays.

    Node records of every tree are concatenated; child indices are
    rebased by each tree's offset, so a single set of arrays describes
    the whole ensemble.  Prediction advances an (n_trees, n_samples)
    matrix of node cursors with vectorized gathers until every cursor
    rests on a leaf.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
        n_features: int,
        max_depth: int,
    ):
        self.feature = np.ascontiguousarray(feature, dtype=np.intp)
        self.threshold = np.ascontiguousarray(threshold, dtype=float)
        self.left = np.ascontiguousarray(left, dtype=np.intp)
        self.right = np.ascontiguousarray(right, dtype=np.intp)
        self.value = np.ascontiguousarray(value, dtype=float)
        self.roots = np.ascontiguousarray(roots, dtype=np.intp)
        self.n_features = n_features
        self.max_depth = max_depth
        # Leaf-safe views: leaves become self-loops with an always-true
        # comparison, so prediction needs no boolean masking — just
        # ``max_depth`` rounds of unconditional gathers.
        is_leaf = self.feature == _LEAF
        self._feature_safe = np.where(is_leaf, 0, self.feature)
        self._threshold_safe = np.where(is_leaf, np.inf, self.threshold)
        node_ids = np.arange(self.feature.shape[0], dtype=np.intp)
        self._left_safe = np.where(is_leaf, node_ids, self.left)
        self._right_safe = np.where(is_leaf, node_ids, self.right)

    @classmethod
    def from_forest(cls, forest) -> "PackedForest":
        """Pack a fitted ``_BaseForest`` (or anything exposing ``trees_``)."""
        trees = getattr(forest, "trees_", None)
        if not trees:
            raise ValueError("forest has no fitted trees")
        return cls.from_trees(trees)

    @classmethod
    def from_trees(cls, trees) -> "PackedForest":
        """Pack a plain list of fitted trees (exact or hist — histogram
        trees record raw-space thresholds, so both pack identically)."""
        trees = list(trees)
        if not trees:
            raise ValueError("no fitted trees to pack")
        feats, thrs, lefts, rights, vals, roots = [], [], [], [], [], []
        offset = 0
        max_depth = 0
        for t in trees:
            n = t.n_nodes
            feats.append(t._feature_a)
            thrs.append(t._threshold_a)
            lefts.append(t._left_a + offset)
            rights.append(t._right_a + offset)
            vals.append(t._value_a)
            roots.append(offset)
            offset += n
            max_depth = max(max_depth, t.depth)
        return cls(
            feature=np.concatenate(feats),
            threshold=np.concatenate(thrs),
            left=np.concatenate(lefts),
            right=np.concatenate(rights),
            value=np.concatenate(vals),
            roots=np.asarray(roots),
            n_features=trees[0].n_features_,
            max_depth=max_depth,
        )

    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    def predict_per_tree(self, X) -> np.ndarray:
        """(n_trees, n_samples) matrix of per-tree predictions.

        Level-synchronous traversal: every (tree, sample) cursor steps
        once per round with unconditional gathers; leaves self-loop, so
        ``max_depth`` rounds land every cursor on its leaf.
        """
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(f"expected (n, {self.n_features}) input, got {X.shape}")
        n = X.shape[0]
        node = np.repeat(self.roots, n)
        sample = np.tile(np.arange(n, dtype=np.intp), self.n_trees)
        for _ in range(self.max_depth):
            go_left = (
                X[sample, self._feature_safe[node]] <= self._threshold_safe[node]
            )
            node = np.where(go_left, self._left_safe[node], self._right_safe[node])
        return self.value[node].reshape(self.n_trees, n)

    def predict(self, X) -> np.ndarray:
        """Forest prediction: mean over trees, one pass over the pack."""
        return self.predict_per_tree(X).mean(axis=0)
