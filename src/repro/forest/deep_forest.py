"""DeepForestRegressor: MGS + cascade facade (the Figure 4 architecture)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng, spawn_rngs
from repro.forest.binning import MAX_BINS
from repro.forest.cascade import CascadeForest
from repro.forest.mgs import MultiGrainScanner


@dataclass
class DeepForestRegressor:
    """Deep forest over (flat features, 2-D trace) profile inputs.

    Structured traces pass through multi-grained scanning; the resulting
    representational features are concatenated with the flat features
    (static + dynamic runtime conditions) and fed to the cascade.

    Parameters mirror the paper's configuration: 4 cascade levels x 4
    forests, 100 estimators each; MGS windows with 50-estimator forests.
    Defaults here are scaled down for tractable profiling datasets; the
    bench harness can raise them.

    ``n_jobs`` spreads tree training across a process pool, one pass
    per training unit (all MGS window forests together; each cascade
    level's forests, fold models included, together).  ``strategy``
    selects split finding: ``"exact"`` (default, bit-identical to
    previous releases for every ``n_jobs``) or ``"hist"`` (quantile-
    binned histogram search — several times faster, statistically
    equivalent).
    """

    windows: list[tuple[int, int]] | None = field(
        default_factory=lambda: [(5, 5), (10, 10)]
    )
    mgs_estimators: int = 30
    mgs_max_instances: int = 8000
    n_levels: int = 4
    forests_per_level: int = 4
    n_estimators: int = 60
    max_depth: int | None = None
    min_samples_leaf: int = 2
    k_folds: int = 3
    n_jobs: int = 1
    strategy: str = "exact"
    n_bins: int = MAX_BINS
    rng: object = None
    _scanner: MultiGrainScanner | None = field(default=None, init=False)
    _cascade: CascadeForest | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self._rng = as_rng(self.rng)

    def _assemble(self, X_flat, traces, fit_y=None) -> np.ndarray:
        parts = []
        if X_flat is not None:
            X_flat = np.asarray(X_flat, dtype=float)
            if X_flat.ndim != 2:
                raise ValueError("X_flat must be 2-D")
            parts.append(X_flat)
        if traces is not None and self.windows:
            if fit_y is not None:
                mgs_feats = self._scanner.fit_transform(traces, fit_y)
            else:
                mgs_feats = self._scanner.transform(traces)
            parts.append(mgs_feats)
        elif traces is not None:
            # No windows configured: flatten the trace directly.
            t = np.asarray(traces, dtype=float)
            parts.append(t.reshape(t.shape[0], -1))
        if not parts:
            raise ValueError("need X_flat and/or traces")
        return np.concatenate(parts, axis=1)

    def fit(self, X_flat, traces, y) -> "DeepForestRegressor":
        """Train MGS (when traces given) and the cascade.

        Parameters
        ----------
        X_flat:
            (n, d) static/dynamic condition features, or ``None``.
        traces:
            (n, H, W) cache usage traces, or ``None``.
        y:
            Effective cache allocation targets.
        """
        y = np.asarray(y, dtype=float)
        rng_scan, rng_casc = spawn_rngs(self._rng, 2)
        if traces is not None and self.windows:
            self._scanner = MultiGrainScanner(
                windows=list(self.windows),
                n_estimators=self.mgs_estimators,
                max_instances=self.mgs_max_instances,
                n_jobs=self.n_jobs,
                strategy=self.strategy,
                n_bins=self.n_bins,
                rng=rng_scan,
            )
        X = self._assemble(X_flat, traces, fit_y=y)
        self._cascade = CascadeForest(
            n_levels=self.n_levels,
            forests_per_level=self.forests_per_level,
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            k_folds=self.k_folds,
            n_jobs=self.n_jobs,
            strategy=self.strategy,
            n_bins=self.n_bins,
            rng=rng_casc,
        )
        self._cascade.fit(X, y)
        return self

    def predict(self, X_flat, traces) -> np.ndarray:
        if self._cascade is None:
            raise RuntimeError("model is not fitted")
        X = self._assemble(X_flat, traces)
        return self._cascade.predict(X)

    def concept_features(self, X_flat, traces) -> np.ndarray:
        """Learned concepts for clustering/insight (Section 5)."""
        if self._cascade is None:
            raise RuntimeError("model is not fitted")
        X = self._assemble(X_flat, traces)
        return self._cascade.concept_features(X)
