"""Quantile binning for histogram-based split finding (LightGBM-style).

Features are discretized once per forest fit into ``uint8`` codes; the
histogram splitter (:meth:`RegressionTree.fit_binned`) then finds the
best split with prefix-summed bin statistics instead of one argsort per
candidate feature per node.

The binning contract the splitter relies on::

    code(x) <= b  <=>  x <= edges[b]

for every feature and every boundary index ``b``, so a split recorded
as the *raw-space* threshold ``edges[b]`` routes raw inputs at predict
time exactly the way the binned training rows were routed.

Edge handling:

- a feature with <= ``max_bins`` distinct finite values gets one bin per
  value, with boundaries at the midpoints between consecutive values —
  the same candidate thresholds the exact splitter would consider;
- wider features get quantile boundaries (deduplicated, so heavy ties
  collapse into fewer bins);
- NaN (and ``+inf``) map to the top bin, ``-inf`` to the bottom bin, and
  an all-NaN or constant column becomes a single unsplittable bin —
  binning never raises on non-finite values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: ``uint8`` codes cap the bin count at 255 (code 255 is never emitted:
#: the top code equals ``len(edges) <= max_bins - 1``).
MAX_BINS = 255


@dataclass
class BinnedMatrix:
    """A feature matrix discretized for histogram split finding.

    Attributes
    ----------
    codes:
        (n, d) ``uint8`` bin codes.
    edges:
        Per-feature upper bin boundaries in raw feature space; feature
        ``f`` has ``len(edges[f]) + 1`` bins and ``edges[f][b]`` is the
        raw-space threshold of a split after bin ``b``.
    """

    codes: np.ndarray
    edges: list[np.ndarray]

    @property
    def n_bins(self) -> np.ndarray:
        """Bins per feature (constant features report 1)."""
        return np.array([e.size + 1 for e in self.edges])


def quantile_bin(X, max_bins: int = MAX_BINS) -> BinnedMatrix:
    """Discretize ``X`` column-by-column into at most ``max_bins`` bins.

    Parameters
    ----------
    X:
        (n, d) float matrix.
    max_bins:
        Bin budget per feature, 2..255 (codes must fit ``uint8``).
    """
    if not 2 <= max_bins <= MAX_BINS:
        raise ValueError(f"max_bins must be in [2, {MAX_BINS}], got {max_bins}")
    X = np.ascontiguousarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {X.shape}")
    n, d = X.shape
    codes = np.empty((n, d), dtype=np.uint8)
    edges: list[np.ndarray] = []
    for f in range(d):
        col = X[:, f]
        finite = col[np.isfinite(col)]
        uniq = np.unique(finite)
        if uniq.size <= 1:
            e = np.empty(0)
        elif uniq.size <= max_bins:
            # One bin per distinct value; boundaries at midpoints, the
            # exact splitter's candidate thresholds.
            e = 0.5 * (uniq[:-1] + uniq[1:])
        else:
            qs = np.quantile(finite, np.arange(1, max_bins) / max_bins)
            e = np.unique(qs)
        # side="left": x == edges[b] lands in bin b, so the split
        # predicate "code <= b" is exactly "x <= edges[b]".  NaN sorts
        # after every float and lands in the top bin.
        codes[:, f] = np.searchsorted(e, col, side="left").astype(np.uint8)
        edges.append(e)
    return BinnedMatrix(codes=codes, edges=edges)
