"""Deep forest (gcForest-style) implementation from scratch.

No scikit-learn in this environment, so the full stack is built here:
vectorized CART regression trees, random and completely-random forests,
multi-grained scanning (representational learning) and cascade levels
(deep learning), per Zhou & Feng [36] and Section 4.1 of the paper.
"""

from repro.forest.tree import RegressionTree
from repro.forest.binning import BinnedMatrix, quantile_bin
from repro.forest.ensemble import (
    RandomForestRegressor,
    CompletelyRandomForestRegressor,
)
from repro.forest.mgs import MultiGrainScanner, sliding_windows
from repro.forest.cascade import CascadeForest, cross_fit_predict
from repro.forest.deep_forest import DeepForestRegressor
from repro.forest.fast_inference import PackedForest
from repro.forest.parallel import TreeFitPlan, fit_plans

__all__ = [
    "RegressionTree",
    "BinnedMatrix",
    "quantile_bin",
    "RandomForestRegressor",
    "CompletelyRandomForestRegressor",
    "MultiGrainScanner",
    "sliding_windows",
    "CascadeForest",
    "cross_fit_predict",
    "DeepForestRegressor",
    "PackedForest",
    "TreeFitPlan",
    "fit_plans",
]
