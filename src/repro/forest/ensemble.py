"""Random and completely-random forests over the CART trees.

Per Section 4.1, cascade levels mix two forest types to encourage
diversity: random forests (bootstrap + sqrt(f) feature subsets, best
split) and completely-random forests (random feature and threshold,
grown until pure).

Fitting is split into *planning* (draw every bootstrap sample and tree
seed in the parent, bin the features once when ``strategy="hist"``) and
*execution* (:func:`repro.forest.parallel.fit_plans`), so that a
cascade level or multi-grained scanner can pool the trees of many
forests through one process pool while jobs carry only indices and
seeds — the training matrix crosses the process boundary once per
worker via shared memory, not once per tree.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, spawn_rngs
from repro.forest.binning import MAX_BINS, quantile_bin
from repro.forest.parallel import TreeFitPlan, fit_plans
from repro.forest.tree import RegressionTree


class _BaseForest:
    """Shared fitting/prediction machinery for both forest types."""

    _tree_params: dict
    _bootstrap: bool

    def __init__(
        self,
        n_estimators: int = 100,
        n_jobs: int = 1,
        strategy: str = "exact",
        n_bins: int = MAX_BINS,
        rng=None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if strategy not in ("exact", "hist"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if not 2 <= n_bins <= MAX_BINS:
            raise ValueError(f"n_bins must be in [2, {MAX_BINS}], got {n_bins}")
        self.n_estimators = n_estimators
        self.n_jobs = n_jobs
        self.strategy = strategy
        self.n_bins = n_bins
        self._rng = as_rng(rng)
        self.trees_: list[RegressionTree] = []

    def plan_fit(self, X, y) -> TreeFitPlan:
        """Draw all per-tree randomness and package the fit as a plan.

        RNG consumption (one spawn per forest, then per-tree bootstrap
        indices and seeds in tree order) matches the old immediate-fit
        loop exactly, so executing the plan — serially or pooled —
        reproduces the old trees bit-for-bit on the exact path.  On the
        hist path the features are quantile-binned here, once, and the
        ``uint8`` codes are shared by every tree of the plan.
        """
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        n = X.shape[0]
        jobs = []
        for t_rng in spawn_rngs(self._rng, self.n_estimators):
            if self._bootstrap:
                sample_idx = t_rng.integers(0, n, size=n)
            else:
                sample_idx = None
            seed = int(t_rng.integers(0, 2**62))
            jobs.append((sample_idx, seed))
        meta = {
            "tree_params": self._tree_params,
            "strategy": self.strategy,
            "n_features": X.shape[1],
        }
        if self.strategy == "hist":
            binned = quantile_bin(X, max_bins=self.n_bins)
            arrays = {"codes": binned.codes, "y": y}
            meta["edges"] = binned.edges
        else:
            arrays = {"X": X, "y": y}
        return TreeFitPlan(forest=self, arrays=arrays, meta=meta, jobs=jobs)

    def fit(self, X, y) -> "_BaseForest":
        fit_plans([self.plan_fit(X, y)], n_jobs=self.n_jobs)
        return self

    def _finish_fit(self, trees, n_features: int) -> None:
        """Install executed-plan trees (called by ``fit_plans``)."""
        self.trees_ = list(trees)
        self.n_features_ = n_features
        self._packed = None

    def pack(self):
        """Bolt-style packed representation for fast batch inference
        (built lazily, cached until the next fit)."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        if getattr(self, "_packed", None) is None:
            from repro.forest.fast_inference import PackedForest

            self._packed = PackedForest.from_forest(self)
        return self._packed

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        X = np.ascontiguousarray(X, dtype=float)
        # Small batches over wide forests: the packed level-synchronous
        # path is an order of magnitude faster (see test_fast_inference);
        # large batches favour per-tree vectorized traversal.
        if X.shape[0] <= 256 and len(self.trees_) >= 8:
            return self.pack().predict(X)
        out = np.zeros(X.shape[0])
        for t in self.trees_:
            out += t.predict(X)
        return out / len(self.trees_)

    def predict_per_tree(self, X) -> np.ndarray:
        """(n_trees, n_samples) matrix of per-tree predictions (used to
        estimate ensemble dispersion).

        Small batches route through the packed level-synchronous
        traversal — the same heuristic (and the same bit-exact results)
        as :meth:`predict`."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        X = np.ascontiguousarray(X, dtype=float)
        if X.shape[0] <= 256 and len(self.trees_) >= 8:
            return self.pack().predict_per_tree(X)
        return np.stack([t.predict(X) for t in self.trees_])

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-decrease importance across trees (sums to ~1)."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        return np.mean([t.feature_importances_ for t in self.trees_], axis=0)


class RandomForestRegressor(_BaseForest):
    """Breiman-style random forest: bootstrap + sqrt(f) feature subsets.

    Matches the paper: "a tree is generated by randomly selecting
    sqrt(f) features with the best gini [variance] value for split".
    """

    _bootstrap = True

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        n_jobs: int = 1,
        strategy: str = "exact",
        n_bins: int = MAX_BINS,
        rng=None,
    ):
        super().__init__(
            n_estimators=n_estimators,
            n_jobs=n_jobs,
            strategy=strategy,
            n_bins=n_bins,
            rng=rng,
        )
        self._tree_params = dict(
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features="sqrt",
            splitter="best",
        )


class CompletelyRandomForestRegressor(_BaseForest):
    """Completely-random forest: random feature and threshold per node,
    trees grown until all leaves are pure (Section 4.1)."""

    _bootstrap = False

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        n_jobs: int = 1,
        strategy: str = "exact",
        n_bins: int = MAX_BINS,
        rng=None,
    ):
        super().__init__(
            n_estimators=n_estimators,
            n_jobs=n_jobs,
            strategy=strategy,
            n_bins=n_bins,
            rng=rng,
        )
        self._tree_params = dict(
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=None,
            splitter="random",
        )
