"""Cascade levels: the deep-learning half of the deep forest.

Each cascade level hosts an ensemble of forests (the paper: 4 per
level, alternating random and completely-random for diversity).  A
forest's out-of-fold predictions become *concept features* appended to
the input of the next level — layer-by-layer training with no back
propagation, which is why deep forests are stable where CNNs are not
(Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng, spawn_rngs
from repro.forest.ensemble import (
    CompletelyRandomForestRegressor,
    RandomForestRegressor,
)


def cross_fit_predict(make_model, X, y, k: int = 3, rng=None) -> np.ndarray:
    """Out-of-fold predictions from k-fold cross-fitting.

    Each sample's concept value comes from a model that never saw it,
    so cascade features do not leak the training target.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n = X.shape[0]
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got {n}")
    rng = as_rng(rng)
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = np.empty(n)
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        model = make_model()
        model.fit(X[mask], y[mask])
        out[fold] = model.predict(X[fold])
    return out


@dataclass
class _Level:
    forests: list
    n_input_features: int


@dataclass
class CascadeForest:
    """Stacked cascade levels ending in an averaged output ensemble.

    Parameters
    ----------
    n_levels:
        Cascade depth (paper: 4).
    forests_per_level:
        Forests per level (paper: 4), alternating random /
        completely-random.
    n_estimators:
        Trees per forest (paper: 100).
    k_folds:
        Cross-fitting folds for concept features.
    """

    n_levels: int = 4
    forests_per_level: int = 4
    n_estimators: int = 100
    max_depth: int | None = None
    min_samples_leaf: int = 2
    k_folds: int = 3
    #: gcForest-style early stopping: stop adding levels once the
    #: out-of-fold error of the level's concept average stops improving.
    early_stop: bool = False
    patience: int = 1
    rng: object = None
    _levels: list[_Level] = field(default_factory=list, init=False)
    _output_forests: list = field(default_factory=list, init=False)
    _n_raw_features: int = field(default=0, init=False)
    #: Out-of-fold MSE per grown level (diagnostic; filled by fit).
    level_scores_: list[float] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.n_levels < 1 or self.forests_per_level < 1:
            raise ValueError("n_levels and forests_per_level must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        self._rng = as_rng(self.rng)

    def _make_forest(self, j: int, rng):
        cls = (
            RandomForestRegressor
            if j % 2 == 0
            else CompletelyRandomForestRegressor
        )
        return cls(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            rng=rng,
        )

    def fit(self, X, y) -> "CascadeForest":
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        self._n_raw_features = X.shape[1]
        self._levels = []
        self.level_scores_ = []
        current = X
        n_rngs = self.n_levels * self.forests_per_level * 2 + self.forests_per_level
        rngs = iter(spawn_rngs(self._rng, n_rngs))
        best_score = np.inf
        stale = 0
        for _ in range(self.n_levels):
            forests = []
            concepts = np.empty((X.shape[0], self.forests_per_level))
            for j in range(self.forests_per_level):
                fold_rng = next(rngs)
                fit_rng = next(rngs)
                concepts[:, j] = cross_fit_predict(
                    lambda j=j, r=fit_rng: self._make_forest(j, r),
                    current,
                    y,
                    k=self.k_folds,
                    rng=fold_rng,
                )
                # Refit on the full data for inference-time transforms.
                forest = self._make_forest(j, fit_rng)
                forest.fit(current, y)
                forests.append(forest)
            self._levels.append(
                _Level(forests=forests, n_input_features=current.shape[1])
            )
            current = np.concatenate([current, concepts], axis=1)
            # Level quality: out-of-fold error of the concept average.
            score = float(np.mean((concepts.mean(axis=1) - y) ** 2))
            self.level_scores_.append(score)
            if self.early_stop:
                if score < best_score - 1e-12:
                    best_score = score
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.patience:
                        break
        # Final output ensemble averages forests_per_level forests.
        self._output_forests = []
        for j in range(self.forests_per_level):
            forest = self._make_forest(j, next(rngs))
            forest.fit(current, y)
            self._output_forests.append(forest)
        return self

    def _propagate(self, X) -> np.ndarray:
        current = np.ascontiguousarray(X, dtype=float)
        for level in self._levels:
            if current.shape[1] != level.n_input_features:
                raise ValueError(
                    f"expected {level.n_input_features} features, got "
                    f"{current.shape[1]}"
                )
            concepts = np.stack(
                [f.predict(current) for f in level.forests], axis=1
            )
            current = np.concatenate([current, concepts], axis=1)
        return current

    def predict(self, X) -> np.ndarray:
        if not self._output_forests:
            raise RuntimeError("cascade is not fitted")
        current = self._propagate(X)
        out = np.zeros(current.shape[0])
        for f in self._output_forests:
            out += f.predict(current)
        return out / len(self._output_forests)

    def concept_features(self, X) -> np.ndarray:
        """The concept columns appended across all levels.

        These are the learned groupings Section 5 clusters to gain
        system insight (and the "queueing + concepts" Figure 6 variant).
        """
        if not self._levels:
            raise RuntimeError("cascade is not fitted")
        full = self._propagate(X)
        return full[:, self._n_raw_features :]
