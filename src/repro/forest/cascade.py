"""Cascade levels: the deep-learning half of the deep forest.

Each cascade level hosts an ensemble of forests (the paper: 4 per
level, alternating random and completely-random for diversity).  A
forest's out-of-fold predictions become *concept features* appended to
the input of the next level — layer-by-layer training with no back
propagation, which is why deep forests are stable where CNNs are not
(Figure 5).

Training parallelism is hoisted to the level: all trees of all forests
of a level — including every cross-fit fold model — are planned first
(consuming RNG in the same order the old sequential loop did) and then
executed through one process-pool pass
(:func:`repro.forest.parallel.fit_plans`), so ``n_jobs`` scales across
the whole level rather than within one small forest at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro._util import as_rng, spawn_rngs
from repro.forest.binning import MAX_BINS
from repro.forest.ensemble import (
    CompletelyRandomForestRegressor,
    RandomForestRegressor,
)
from repro.forest.parallel import fit_plans


def _cross_fit_folds(X, y, k: int, rng):
    """Validate and draw the cross-fit fold split."""
    n = X.shape[0]
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got {n}")
    perm = as_rng(rng).permutation(n)
    return np.array_split(perm, k)


def _plan_cross_fit(make_model, X, y, k: int, rng):
    """Fold models plus their fit plans, RNG-identical to the old
    fit-as-you-go loop (models are constructed and planned in fold
    order; predictions consume no RNG and happen after execution)."""
    folds = _cross_fit_folds(X, y, k, rng)
    n = X.shape[0]
    models, plans = [], []
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        model = make_model()
        plans.append(model.plan_fit(X[mask], y[mask]))
        models.append(model)
    return models, folds, plans


def _collect_out_of_fold(models, folds, X, n: int) -> np.ndarray:
    out = np.empty(n)
    for model, fold in zip(models, folds):
        out[fold] = model.predict(X[fold])
    return out


def cross_fit_predict(
    make_model, X, y, k: int = 3, rng=None, n_jobs: int = 1
) -> np.ndarray:
    """Out-of-fold predictions from k-fold cross-fitting.

    Each sample's concept value comes from a model that never saw it,
    so cascade features do not leak the training target.  Models that
    expose ``plan_fit`` (the forests) train through the shared pool
    harness — all folds' trees in one pass when ``n_jobs > 1`` — with
    results bit-identical to the sequential loop; other models fall
    back to fitting in fold order.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    folds = _cross_fit_folds(X, y, k, rng)
    n = X.shape[0]
    models, plans = [], []
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        model = make_model()
        if hasattr(model, "plan_fit"):
            plans.append(model.plan_fit(X[mask], y[mask]))
        else:
            model.fit(X[mask], y[mask])
        models.append(model)
    if plans:
        fit_plans(plans, n_jobs=n_jobs)
    return _collect_out_of_fold(models, folds, X, n)


@dataclass
class _Level:
    forests: list
    n_input_features: int


@dataclass
class CascadeForest:
    """Stacked cascade levels ending in an averaged output ensemble.

    Parameters
    ----------
    n_levels:
        Cascade depth (paper: 4).
    forests_per_level:
        Forests per level (paper: 4), alternating random /
        completely-random.
    n_estimators:
        Trees per forest (paper: 100).
    k_folds:
        Cross-fitting folds for concept features.
    n_jobs:
        Process-pool width for tree fitting; the pool spans a whole
        level (every fold model and refit of every forest).  Results
        are bit-identical for every value.
    strategy:
        ``"exact"`` (default, bit-identical to previous releases) or
        ``"hist"`` (histogram split finding; see
        :mod:`repro.forest.binning`).
    """

    n_levels: int = 4
    forests_per_level: int = 4
    n_estimators: int = 100
    max_depth: int | None = None
    min_samples_leaf: int = 2
    k_folds: int = 3
    #: gcForest-style early stopping: stop adding levels once the
    #: out-of-fold error of the level's concept average stops improving.
    early_stop: bool = False
    patience: int = 1
    n_jobs: int = 1
    strategy: str = "exact"
    n_bins: int = MAX_BINS
    rng: object = None
    _levels: list[_Level] = field(default_factory=list, init=False)
    _output_forests: list = field(default_factory=list, init=False)
    _n_raw_features: int = field(default=0, init=False)
    #: Out-of-fold MSE per grown level (diagnostic; filled by fit).
    level_scores_: list[float] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.n_levels < 1 or self.forests_per_level < 1:
            raise ValueError("n_levels and forests_per_level must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self._rng = as_rng(self.rng)

    def _make_forest(self, j: int, rng):
        cls = (
            RandomForestRegressor
            if j % 2 == 0
            else CompletelyRandomForestRegressor
        )
        return cls(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            strategy=self.strategy,
            n_bins=self.n_bins,
            rng=rng,
        )

    def fit(self, X, y) -> "CascadeForest":
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        self._n_raw_features = X.shape[1]
        self._levels = []
        self.level_scores_ = []
        current = X
        n = X.shape[0]
        n_rngs = self.n_levels * self.forests_per_level * 2 + self.forests_per_level
        rngs = iter(spawn_rngs(self._rng, n_rngs))
        best_score = np.inf
        stale = 0
        for level_idx in range(self.n_levels):
            # Plan the whole level — every forest's fold models and
            # full-data refit — then execute through one pool pass.
            level_span = telemetry.span(
                "stage2.cascade.level",
                level=level_idx,
                n_features=int(current.shape[1]),
                forests=self.forests_per_level,
            )
            with level_span:
                forests, plans, fold_infos = [], [], []
                for j in range(self.forests_per_level):
                    fold_rng = next(rngs)
                    fit_rng = next(rngs)
                    models, folds, fold_plans = _plan_cross_fit(
                        lambda j=j, r=fit_rng: self._make_forest(j, r),
                        current,
                        y,
                        k=self.k_folds,
                        rng=fold_rng,
                    )
                    plans += fold_plans
                    # Refit on the full data for inference-time transforms.
                    forest = self._make_forest(j, fit_rng)
                    plans.append(forest.plan_fit(current, y))
                    forests.append(forest)
                    fold_infos.append((models, folds))
                fit_plans(plans, n_jobs=self.n_jobs)
                concepts = np.empty((n, self.forests_per_level))
                for j, (models, folds) in enumerate(fold_infos):
                    concepts[:, j] = _collect_out_of_fold(
                        models, folds, current, n
                    )
                self._levels.append(
                    _Level(forests=forests, n_input_features=current.shape[1])
                )
                current = np.concatenate([current, concepts], axis=1)
                # Level quality: out-of-fold error of the concept average.
                score = float(np.mean((concepts.mean(axis=1) - y) ** 2))
                self.level_scores_.append(score)
                level_span.set_attr("oof_mse", score)
            telemetry.gauge_set(
                f"cascade.level{level_idx}.oof_mse", score
            )
            telemetry.counter_inc("cascade.levels_grown")
            if self.early_stop:
                if score < best_score - 1e-12:
                    best_score = score
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.patience:
                        break
        # Final output ensemble averages forests_per_level forests.
        self._output_forests = []
        out_plans = []
        with telemetry.span(
            "stage2.cascade.output", forests=self.forests_per_level
        ):
            for j in range(self.forests_per_level):
                forest = self._make_forest(j, next(rngs))
                out_plans.append(forest.plan_fit(current, y))
                self._output_forests.append(forest)
            fit_plans(out_plans, n_jobs=self.n_jobs)
        return self

    def _propagate(self, X) -> np.ndarray:
        current = np.ascontiguousarray(X, dtype=float)
        for level in self._levels:
            if current.shape[1] != level.n_input_features:
                raise ValueError(
                    f"expected {level.n_input_features} features, got "
                    f"{current.shape[1]}"
                )
            concepts = np.stack(
                [f.predict(current) for f in level.forests], axis=1
            )
            current = np.concatenate([current, concepts], axis=1)
        return current

    def predict(self, X) -> np.ndarray:
        if not self._output_forests:
            raise RuntimeError("cascade is not fitted")
        current = self._propagate(X)
        out = np.zeros(current.shape[0])
        for f in self._output_forests:
            out += f.predict(current)
        return out / len(self._output_forests)

    def concept_features(self, X) -> np.ndarray:
        """The concept columns appended across all levels.

        These are the learned groupings Section 5 clusters to gain
        system insight (and the "queueing + concepts" Figure 6 variant).
        """
        if not self._levels:
            raise RuntimeError("cascade is not fitted")
        full = self._propagate(X)
        return full[:, self._n_raw_features :]
