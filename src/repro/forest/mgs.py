"""Multi-grained scanning: representational learning for deep forests.

Sliding windows scan the (counters x ticks) trace; each window position
becomes a training instance for a window-specific forest whose
prediction is a new representational feature (Figure 4).  Window
extraction uses stride tricks — zero-copy views — so scanning large
profile sets stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro._util import as_rng, spawn_rngs
from repro.forest.binning import MAX_BINS
from repro.forest.ensemble import RandomForestRegressor
from repro.forest.parallel import fit_plans


def sliding_windows(traces: np.ndarray, window: tuple[int, int]) -> np.ndarray:
    """Extract all window positions from a batch of 2-D traces.

    Parameters
    ----------
    traces:
        (n_samples, H, W) array.
    window:
        (h, w) window shape; clipped dims raise.

    Returns
    -------
    (n_samples, n_positions, h*w) array, where
    ``n_positions = (H - h + 1) * (W - w + 1)``.
    """
    traces = np.asarray(traces, dtype=float)
    if traces.ndim != 3:
        raise ValueError(f"expected (n, H, W) traces, got shape {traces.shape}")
    h, w = window
    n, H, W = traces.shape
    if not (1 <= h <= H and 1 <= w <= W):
        raise ValueError(f"window {window} does not fit traces of {(H, W)}")
    views = sliding_window_view(traces, (h, w), axis=(1, 2))
    # views: (n, H-h+1, W-w+1, h, w) -> (n, positions, h*w)
    return views.reshape(n, -1, h * w)


@dataclass
class MultiGrainScanner:
    """Scan traces with several window sizes, one forest per window.

    Parameters
    ----------
    windows:
        Window shapes, e.g. ``[(5, 5), (10, 10)]`` (the paper uses
        four: 5x5, 10x10, 15x15 and 35x35 on a 58-row trace).
    n_estimators:
        Trees per window forest (paper: 50).
    max_instances:
        Cap on window instances used to train each forest (subsampled
        uniformly) — scanning is cheap but training on every position of
        every sample is not.
    n_jobs:
        Process-pool width for tree training.  The pool spans *all*
        window forests in one pass (and is plumbed into each forest, so
        a later standalone refit also parallelizes); results are
        bit-identical for every value.
    strategy:
        Split-finding strategy for the window forests: ``"exact"``
        (default) or ``"hist"``.
    """

    windows: list[tuple[int, int]] = field(default_factory=lambda: [(5, 5)])
    n_estimators: int = 50
    max_depth: int | None = 12
    max_instances: int = 20000
    n_jobs: int = 1
    strategy: str = "exact"
    n_bins: int = MAX_BINS
    rng: object = None
    _forests: list[RandomForestRegressor] = field(default_factory=list, init=False)
    _fitted_shape: tuple[int, int] | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("need at least one window")
        if self.n_estimators < 1 or self.max_instances < 1:
            raise ValueError("n_estimators and max_instances must be >= 1")
        self._rng = as_rng(self.rng)

    def fit(self, traces: np.ndarray, y: np.ndarray) -> "MultiGrainScanner":
        """Train one forest per window size on window-level instances.

        Every window position of sample *i* is paired with target ``y[i]``
        (Figure 4: "sliding windows are computed and paired with
        corresponding effective cache allocation").
        """
        traces = np.asarray(traces, dtype=float)
        y = np.asarray(y, dtype=float)
        if traces.shape[0] != y.shape[0]:
            raise ValueError("traces and y must have the same first dimension")
        self._fitted_shape = traces.shape[1:]
        self._forests = []
        plans = []
        rngs = spawn_rngs(self._rng, 2 * len(self.windows))
        for k, window in enumerate(self.windows):
            inst = sliding_windows(traces, window)
            n, p, d = inst.shape
            X = inst.reshape(n * p, d)
            yy = np.repeat(y, p)
            if X.shape[0] > self.max_instances:
                sel = rngs[2 * k].choice(
                    X.shape[0], size=self.max_instances, replace=False
                )
                X, yy = X[sel], yy[sel]
            forest = RandomForestRegressor(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                min_samples_leaf=3,
                n_jobs=self.n_jobs,
                strategy=self.strategy,
                n_bins=self.n_bins,
                rng=rngs[2 * k + 1],
            )
            plans.append(forest.plan_fit(X, yy))
            self._forests.append(forest)
        # All window forests' trees drain through one pool pass.
        fit_plans(plans, n_jobs=self.n_jobs)
        return self

    def transform(self, traces: np.ndarray) -> np.ndarray:
        """Map traces to representational features.

        Returns (n_samples, total_positions) — the concatenated per-
        position predictions of every window forest.
        """
        if self._fitted_shape is None:
            raise RuntimeError("scanner is not fitted")
        traces = np.asarray(traces, dtype=float)
        if traces.shape[1:] != self._fitted_shape:
            raise ValueError(
                f"trace shape {traces.shape[1:]} != fitted {self._fitted_shape}"
            )
        feats = []
        for window, forest in zip(self.windows, self._forests):
            inst = sliding_windows(traces, window)
            n, p, d = inst.shape
            pred = forest.predict(inst.reshape(n * p, d))
            feats.append(pred.reshape(n, p))
        return np.concatenate(feats, axis=1)

    def fit_transform(self, traces: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(traces, y).transform(traces)

    def n_features(self) -> int:
        """Total representational features produced per sample."""
        if self._fitted_shape is None:
            raise RuntimeError("scanner is not fitted")
        H, W = self._fitted_shape
        return sum((H - h + 1) * (W - w + 1) for h, w in self.windows)
