"""Shared-memory, level-wide parallel tree training.

The old per-forest pool pickled the full training matrix once per tree
(``n_estimators`` copies of ``X`` crossing the process boundary per
forest) and could only parallelize within one forest at a time.  This
module replaces both:

- **One data crossing per worker.**  Each forest's training arrays (the
  raw matrix on the exact path, the ``uint8`` bin codes on the hist
  path) are exported once into ``multiprocessing.shared_memory``
  segments; workers attach in the pool initializer and every job
  carries only ``(plan id, sample indices, seed)``.  Where shared
  memory is unavailable (or segment creation fails), the arrays fall
  back to riding the initializer inline — still once per worker, never
  per tree.
- **Level-wide batching.**  :func:`fit_plans` accepts the fit plans of
  *many* forests — all trees of all forests of a cascade level
  (including every cross-fit fold model) or all MGS window forests —
  and drains them through a single process pool, so small forests no
  longer serialize behind each other.

Trees are fitted from pre-drawn seeds (the parent consumes all RNG
state while planning), so results are bit-identical for every
``n_jobs`` and identical to the old per-forest loop.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.forest.tree import RegressionTree

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

#: Worker-side state, populated by the pool initializer: plan key ->
#: {"arrays": {name: ndarray}, "meta": {...}}.
_WORKER_DATASETS = None
#: Attached segments, kept referenced for the worker's lifetime.
_WORKER_SEGMENTS: list = []
#: Worker-side telemetry flag, set explicitly by the pool initializer
#: (never inherited) so job return shapes are deterministic.
_WORKER_TELEMETRY = False


@dataclass
class TreeFitPlan:
    """Everything needed to fit one forest's trees, RNG pre-drawn.

    Attributes
    ----------
    forest:
        Receives ``_finish_fit(trees, n_features)`` once all its trees
        are back (``None`` to just collect the trees).
    arrays:
        Large training arrays, shared across the plan's trees:
        ``{"X": ..., "y": ...}`` (exact) or ``{"codes": ..., "y": ...}``
        (hist).  These cross the process boundary once per worker.
    meta:
        Small picklable metadata: ``tree_params``, ``strategy``,
        ``n_features`` and (hist) ``edges``.
    jobs:
        One ``(sample_idx | None, seed)`` tuple per tree; ``None``
        means "all rows" (non-bootstrap forests).
    """

    forest: object
    arrays: dict
    meta: dict
    jobs: list


def _fit_tree(arrays, meta, sample_idx, seed) -> RegressionTree:
    """Fit a single tree; shared by the serial and pooled paths."""
    params = meta["tree_params"]
    y = arrays["y"]
    if meta["strategy"] == "hist":
        codes = arrays["codes"]
        tree = RegressionTree(rng=seed, strategy="hist", **params)
        if sample_idx is None:
            tree.fit_binned(codes, meta["edges"], y)
        else:
            tree.fit_binned(codes[sample_idx], meta["edges"], y[sample_idx])
    else:
        tree = RegressionTree(rng=seed, **params)
        X = arrays["X"]
        if sample_idx is None:
            tree.fit(X, y)
        else:
            tree.fit(X[sample_idx], y[sample_idx])
    return tree


# -- shared-memory export / attach ---------------------------------------------


def _export_array(arr):
    """Export one array for the pool: ``(payload entry, segment | None)``.

    Tries a shared-memory segment first (zero-copy for every worker on
    POSIX); on failure the array itself becomes the payload entry and is
    pickled once per worker through the initializer.
    """
    arr = np.ascontiguousarray(arr)
    if _shared_memory is not None and arr.nbytes > 0:
        try:
            seg = _shared_memory.SharedMemory(create=True, size=arr.nbytes)
        except (OSError, ValueError):
            return ("inline", arr), None
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        return ("shm", seg.name, arr.shape, arr.dtype.str), seg
    return ("inline", arr), None


def _attach_array(entry) -> np.ndarray:
    """Worker-side counterpart of :func:`_export_array`."""
    if entry[0] == "inline":
        return entry[1]
    _, name, shape, dtype = entry
    # Attaching re-registers the segment with the resource tracker,
    # which the parent (the owner) already tracks — the duplicate makes
    # worker exits unlink segments still in use and spams the tracker
    # with KeyErrors.  Suppress registration for the attach; Python
    # 3.13 exposes this properly as ``track=False``.
    from multiprocessing import resource_tracker

    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **kw: None
    try:
        seg = _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register
    _WORKER_SEGMENTS.append(seg)  # keep the mapping alive
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)


def _pool_init(payload, telemetry_on: bool = False) -> None:
    global _WORKER_DATASETS, _WORKER_TELEMETRY
    _WORKER_TELEMETRY = telemetry_on
    _WORKER_DATASETS = {
        key: {
            "arrays": {
                name: _attach_array(entry)
                for name, entry in entry_set["arrays"].items()
            },
            "meta": entry_set["meta"],
        }
        for key, entry_set in payload.items()
    }


def _fit_tree_job(job):
    """Fit one tree; under telemetry, also return its fit wall-time so
    the parent can merge worker-side timings into its registry."""
    key, sample_idx, seed = job
    ds = _WORKER_DATASETS[key]
    if _WORKER_TELEMETRY:
        t0 = time.perf_counter()
        tree = _fit_tree(ds["arrays"], ds["meta"], sample_idx, seed)
        return tree, time.perf_counter() - t0
    return _fit_tree(ds["arrays"], ds["meta"], sample_idx, seed)


# -- the level-wide harness ----------------------------------------------------


def fit_plans(plans, n_jobs: int = 1) -> list:
    """Fit every tree of every plan, serially or across one pool.

    Jobs preserve planning order, and each tree is grown from its
    pre-drawn seed, so the fitted trees are bit-identical for every
    ``n_jobs``.  Returns the per-plan tree lists (also handed to each
    plan's forest via ``_finish_fit``).
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    plans = list(plans)
    if not plans:
        return []
    flat = [
        (i, sample_idx, seed)
        for i, plan in enumerate(plans)
        for (sample_idx, seed) in plan.jobs
    ]
    # Telemetry: one enabled-flag check; observation only, no RNG.
    _tel = telemetry.enabled()
    with telemetry.span(
        "forest.fit_plans",
        n_plans=len(plans),
        n_trees=len(flat),
        n_jobs=n_jobs,
    ):
        if n_jobs > 1 and len(flat) > 1:
            trees = _fit_pooled(plans, flat, n_jobs, telemetry_on=_tel)
        elif _tel:
            trees = []
            for i, sample_idx, seed in flat:
                t0 = time.perf_counter()
                trees.append(
                    _fit_tree(plans[i].arrays, plans[i].meta, sample_idx, seed)
                )
                telemetry.histogram_observe(
                    "forest.tree_fit_seconds", time.perf_counter() - t0
                )
        else:
            trees = [
                _fit_tree(plans[i].arrays, plans[i].meta, sample_idx, seed)
                for i, sample_idx, seed in flat
            ]
    if _tel:
        telemetry.counter_inc("forest.trees_fitted", len(flat))
    out = []
    pos = 0
    for plan in plans:
        chunk = trees[pos : pos + len(plan.jobs)]
        pos += len(plan.jobs)
        if plan.forest is not None:
            plan.forest._finish_fit(chunk, plan.meta["n_features"])
        out.append(chunk)
    return out


def _fit_pooled(plans, flat, n_jobs, telemetry_on: bool = False) -> list:
    payload = {}
    segments = []
    try:
        for i, plan in enumerate(plans):
            exported = {}
            for name, arr in plan.arrays.items():
                entry, seg = _export_array(arr)
                exported[name] = entry
                if seg is not None:
                    segments.append(seg)
            payload[i] = {"arrays": exported, "meta": plan.meta}
        chunksize = max(1, len(flat) // (4 * n_jobs))
        with ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=_pool_init,
            initargs=(payload, telemetry_on),
        ) as pool:
            results = list(pool.map(_fit_tree_job, flat, chunksize=chunksize))
        if not telemetry_on:
            return results
        # Merge worker-side timings into the parent registry.  The
        # (tree, seconds) pairs rode home on the existing result
        # channel, so worker seeding and job order are untouched.
        trees = []
        for tree, dt in results:
            trees.append(tree)
            telemetry.histogram_observe("forest.tree_fit_seconds", dt)
        return trees
    finally:
        for seg in segments:
            try:
                seg.close()
                seg.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
