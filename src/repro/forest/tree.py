"""Vectorized CART regression tree.

Two split-finding strategies are supported:

- ``strategy="exact"`` (default): NumPy-vectorized per node — one
  argsort per candidate feature, then prefix-sum variance reduction
  over every threshold at once.  This is the original splitter and its
  results are bit-identical across releases.
- ``strategy="hist"``: LightGBM-style histogram split finding.  The
  feature matrix is quantile-binned into ``uint8`` codes
  (:mod:`repro.forest.binning`), and per-node best-split search becomes
  prefix-summed ``np.bincount`` statistics over bins — O(n + bins x
  features) per node instead of an argsort per candidate feature.
  Thresholds are recorded in *raw* feature space, so prediction is
  identical in form to exact trees (no binning at inference time).

And two splitters on top of either strategy:

- ``"best"``: CART — best variance-reduction split over a random
  feature subset (``max_features``), as in random forests.
- ``"random"``: completely-random trees — a random feature and a
  uniform-random threshold (a uniform-random bin boundary under
  ``hist``), grown until leaves are pure (Section 4.1).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.forest.binning import MAX_BINS, quantile_bin

_LEAF = -1

#: Below this node size the histogram splitter scans a stable argsort of
#: the codes instead of building B-wide histograms: near the leaves
#: ``n`` is tiny and the O(bins) bincount/cumsum overhead would dominate
#: the O(n) statistics.
_HIST_SORT_CUTOFF = 96


class RegressionTree:
    """CART regression tree with selectable splitter and strategy.

    Parameters
    ----------
    max_depth:
        Depth cap; ``None`` grows until pure / ``min_samples_leaf``.
    min_samples_leaf:
        Minimum samples in each child of a split.
    max_features:
        Candidate features per split: int, ``"sqrt"``, or ``None`` (all).
    splitter:
        ``"best"`` (CART) or ``"random"`` (completely random).
    strategy:
        ``"exact"`` (argsort split search on raw values) or ``"hist"``
        (histogram search over quantile bins).
    n_bins:
        Bin budget per feature for ``strategy="hist"`` (2..255).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: "int | str | None" = None,
        splitter: str = "best",
        strategy: str = "exact",
        n_bins: int = MAX_BINS,
        rng=None,
    ):
        if splitter not in ("best", "random"):
            raise ValueError(f"unknown splitter {splitter!r}")
        if strategy not in ("exact", "hist"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if not 2 <= n_bins <= MAX_BINS:
            raise ValueError(f"n_bins must be in [2, {MAX_BINS}], got {n_bins}")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.strategy = strategy
        self.n_bins = n_bins
        self._rng = as_rng(rng)
        # Flat tree arrays, filled by fit().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []

    # -- fitting -------------------------------------------------------------

    def _n_candidate_features(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if mf == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(mf, (int, np.integer)) and mf >= 1:
            return min(int(mf), d)
        raise ValueError(f"bad max_features {mf!r}")

    def fit(self, X, y) -> "RegressionTree":
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        if self.strategy == "hist":
            binned = quantile_bin(X, max_bins=self.n_bins)
            return self.fit_binned(binned.codes, binned.edges, y)
        self._reset(X.shape[1])
        self._build(X, y, np.arange(X.shape[0]), depth=0, edges=None)
        self._freeze()
        return self

    def fit_binned(self, codes, edges, y) -> "RegressionTree":
        """Fit on pre-binned features (histogram strategy).

        Parameters
        ----------
        codes:
            (n, d) ``uint8`` bin codes (see
            :func:`repro.forest.binning.quantile_bin`).
        edges:
            Per-feature raw-space bin boundaries; recorded thresholds
            come from here, so :meth:`predict` consumes raw inputs.
        y:
            Regression targets.

        Forests bin once per fit and share the code matrix across all
        trees (and across process-pool workers), which is why this
        entry point takes codes rather than raw features.
        """
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        y = np.ascontiguousarray(y, dtype=float)
        if codes.ndim != 2 or y.ndim != 1 or codes.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: codes {codes.shape}, y {y.shape}")
        if codes.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        if len(edges) != codes.shape[1]:
            raise ValueError(
                f"{len(edges)} edge arrays for {codes.shape[1]} features"
            )
        self._reset(codes.shape[1])
        self._build(codes, y, np.arange(codes.shape[0]), depth=0, edges=edges)
        self._freeze()
        return self

    def _reset(self, n_features: int) -> None:
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self.n_features_ = n_features
        self._importance = np.zeros(n_features)
        self._depth = 0

    def _freeze(self) -> None:
        """Freeze node lists to arrays for fast prediction."""
        self._feature_a = np.asarray(self._feature, dtype=np.intp)
        self._threshold_a = np.asarray(self._threshold)
        self._left_a = np.asarray(self._left, dtype=np.intp)
        self._right_a = np.asarray(self._right, dtype=np.intp)
        self._value_a = np.asarray(self._value)

    def _new_node(self) -> int:
        self._feature.append(_LEAF)
        self._threshold.append(0.0)
        self._left.append(0)
        self._right.append(0)
        self._value.append(0.0)
        return len(self._feature) - 1

    def _split_node(self, X, yn, idx, edges):
        """Best (or random) split of one node.

        Returns ``(feature, raw threshold, go-left mask over idx)`` or
        ``None``.  ``edges`` is ``None`` on the exact path and the
        per-feature bin boundaries on the histogram path (where ``X``
        holds ``uint8`` codes).
        """
        if edges is not None:
            return (
                self._best_split_hist(X, yn, idx, edges)
                if self.splitter == "best"
                else self._random_split_hist(X, idx, edges)
            )
        split = (
            self._best_split(X, yn, idx)
            if self.splitter == "best"
            else self._random_split(X, idx)
        )
        if split is None:
            return None
        f, thr = split
        return f, thr, X[idx, f] <= thr

    def _build(self, X, y, idx, depth, edges) -> int:
        """Grow the subtree rooted at ``idx`` with an explicit stack.

        Iterative preorder (node, then left subtree, then right) with a
        LIFO stack, pushing the right child first: nodes are numbered —
        and the splitter's rng consumed — in exactly the order the
        previous recursive implementation used, so fitted trees are
        bit-identical while unbounded-depth fits (``max_depth=None``)
        no longer risk ``RecursionError``.
        """
        root = None
        # Frame: (sample indices, depth, parent node, is-left-child).
        stack = [(idx, depth, -1, False)]
        while stack:
            idx, depth, parent, is_left = stack.pop()
            node = self._new_node()
            if parent < 0:
                root = node
            elif is_left:
                self._left[parent] = node
            else:
                self._right[parent] = node
            yn = y[idx]
            self._value[node] = float(yn.mean())
            n = idx.shape[0]
            if (
                n < 2 * self.min_samples_leaf
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(yn == yn[0])
            ):
                continue
            split = self._split_node(X, yn, idx, edges)
            if split is None:
                continue
            f, thr, mask = split
            left_idx, right_idx = idx[mask], idx[~mask]
            if (
                left_idx.shape[0] < self.min_samples_leaf
                or right_idx.shape[0] < self.min_samples_leaf
            ):
                continue
            self._feature[node] = f
            self._threshold[node] = thr
            # Impurity decrease: parent SSE minus the children's SSE.
            yl, yr = y[left_idx], y[right_idx]
            decrease = (
                float(((yn - yn.mean()) ** 2).sum())
                - float(((yl - yl.mean()) ** 2).sum())
                - float(((yr - yr.mean()) ** 2).sum())
            )
            self._importance[f] += max(decrease, 0.0)
            self._depth = max(self._depth, depth + 1)
            stack.append((right_idx, depth + 1, node, False))
            stack.append((left_idx, depth + 1, node, True))
        return root

    # -- exact split search ------------------------------------------------------

    def _best_split(self, X, yn, idx) -> tuple[int, float] | None:
        n, d = idx.shape[0], X.shape[1]
        k = self._n_candidate_features(d)
        feats = (
            self._rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
        )
        msl = self.min_samples_leaf
        best_loss = np.inf
        best = None
        for f in feats:
            xs = X[idx, f]
            order = np.argsort(xs, kind="stable")
            xs_sorted = xs[order]
            ys = yn[order]
            # Valid split positions: between i-1 and i, with both children
            # >= msl and a strict change in x.
            s1 = np.cumsum(ys)
            s2 = np.cumsum(ys * ys)
            pos = np.arange(msl, n - msl + 1)
            if pos.size == 0:
                continue
            distinct = xs_sorted[pos - 1] < xs_sorted[pos]
            pos = pos[distinct]
            if pos.size == 0:
                continue
            nl = pos.astype(float)
            nr = n - nl
            sl1, sl2 = s1[pos - 1], s2[pos - 1]
            sr1, sr2 = s1[-1] - sl1, s2[-1] - sl2
            loss = (sl2 - sl1 * sl1 / nl) + (sr2 - sr1 * sr1 / nr)
            j = int(np.argmin(loss))
            if loss[j] < best_loss:
                best_loss = float(loss[j])
                p = pos[j]
                thr = 0.5 * (xs_sorted[p - 1] + xs_sorted[p])
                best = (int(f), float(thr))
        return best

    def _random_split(self, X, idx) -> tuple[int, float] | None:
        d = X.shape[1]
        # Try a handful of random features, skipping constant ones.
        for f in self._rng.permutation(d)[: min(d, 10)]:
            xs = X[idx, f]
            lo, hi = float(xs.min()), float(xs.max())
            if lo < hi:
                thr = float(self._rng.uniform(lo, hi))
                # Guard against thr == hi putting everything left.
                if thr >= hi:
                    thr = np.nextafter(hi, lo)
                return int(f), thr
        return None

    # -- histogram split search --------------------------------------------------

    def _best_split_hist(self, codes, yn, idx, edges):
        """Best split via prefix-summed bin statistics.

        All candidate features' histograms are built in one
        ``np.bincount`` call each for counts, sum(y) and sum(y^2) by
        offsetting each feature's codes into its own bin range —
        O(n·k + k·B) per node.  The selected boundary maps back to a
        raw-space threshold through ``edges``, so the fitted tree
        predicts on raw inputs like an exact tree.
        """
        n, d = idx.shape[0], codes.shape[1]
        k = self._n_candidate_features(d)
        feats = (
            self._rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
        )
        msl = self.min_samples_leaf
        sub = codes[idx[:, None], feats[None, :]]  # (n, k) uint8
        n_bins = int(sub.max()) + 1
        if n_bins < 2:
            return None  # every candidate feature is a single bin here
        if n <= _HIST_SORT_CUTOFF:
            return self._hist_scan_sorted(sub, feats, yn, edges)
        offsets = np.arange(k, dtype=np.int64) * n_bins
        flat = (sub.astype(np.int64) + offsets[None, :]).ravel()
        w = np.repeat(yn, k)
        cnt = np.bincount(flat, minlength=k * n_bins).reshape(k, n_bins)
        s1 = np.bincount(flat, weights=w, minlength=k * n_bins).reshape(
            k, n_bins
        )
        s2 = np.bincount(flat, weights=w * w, minlength=k * n_bins).reshape(
            k, n_bins
        )
        # Split after bin b: left = bins [0..b], right = the rest.
        nl = cnt.cumsum(axis=1)[:, :-1].astype(float)
        cs1 = s1.cumsum(axis=1)[:, :-1]
        cs2 = s2.cumsum(axis=1)[:, :-1]
        t1 = s1.sum(axis=1, keepdims=True)
        t2 = s2.sum(axis=1, keepdims=True)
        nr = n - nl
        valid = (nl >= msl) & (nr >= msl)
        if not valid.any():
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            loss = (cs2 - cs1 * cs1 / nl) + ((t2 - cs2) - (t1 - cs1) ** 2 / nr)
        loss = np.where(valid, loss, np.inf)
        fi, b = np.unravel_index(int(np.argmin(loss)), loss.shape)
        if not np.isfinite(loss[fi, b]):
            return None
        f = int(feats[fi])
        # valid => the right child is non-empty, so some code > b exists
        # and b indexes inside this feature's boundary array.
        return f, float(edges[f][b]), sub[:, fi] <= b

    def _hist_scan_sorted(self, sub, feats, yn, edges):
        """Small-node histogram split: argsort the codes and prefix-scan
        positions (the exact splitter's shape, on codes).  Near the
        leaves ``n`` is far below the bin count and building B-wide
        histograms would cost more than sorting a handful of bytes."""
        n, k = sub.shape
        msl = self.min_samples_leaf
        pos = np.arange(msl, n - msl + 1)
        if pos.size == 0:
            return None
        order = np.argsort(sub, axis=0, kind="stable")  # (n, k)
        xs = np.take_along_axis(sub, order, axis=0)
        ys = yn[order]
        s1 = np.cumsum(ys, axis=0)
        s2 = np.cumsum(ys * ys, axis=0)
        valid = xs[pos - 1] < xs[pos]  # (P, k): codes differ across the cut
        if not valid.any():
            return None
        nl = pos.astype(float)[:, None]
        nr = n - nl
        sl1, sl2 = s1[pos - 1], s2[pos - 1]
        sr1, sr2 = s1[-1][None, :] - sl1, s2[-1][None, :] - sl2
        loss = (sl2 - sl1 * sl1 / nl) + (sr2 - sr1 * sr1 / nr)
        loss = np.where(valid, loss, np.inf).T  # (k, P): feature-major ties
        c, j = np.unravel_index(int(np.argmin(loss)), loss.shape)
        if not np.isfinite(loss[c, j]):
            return None
        b = int(xs[pos[j] - 1, c])
        f = int(feats[c])
        return f, float(edges[f][b]), sub[:, c] <= b

    def _random_split_hist(self, codes, idx, edges):
        """Completely-random split over bin boundaries: a random feature
        and a uniform-random boundary between its observed extreme
        codes (both children are guaranteed non-empty)."""
        d = codes.shape[1]
        for f in self._rng.permutation(d)[: min(d, 10)]:
            c = codes[idx, f]
            lo, hi = int(c.min()), int(c.max())
            if lo < hi:
                b = int(self._rng.integers(lo, hi))
                return int(f), float(edges[f][b]), c <= b
        return None

    # -- prediction ------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected (n, {self.n_features_}) input, got {X.shape}"
            )
        n = X.shape[0]
        node = np.zeros(n, dtype=np.intp)
        rows = np.arange(n)
        while True:
            f = self._feature_a[node]
            active = f != _LEAF
            if not active.any():
                break
            an = node[active]
            ar = rows[active]
            go_left = X[ar, self._feature_a[an]] <= self._threshold_a[an]
            node[active] = np.where(
                go_left, self._left_a[an], self._right_a[an]
            )
        return self._value_a[node]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importance per feature (sums to 1, or all
        zeros for a single-leaf tree)."""
        if not hasattr(self, "_importance"):
            raise RuntimeError("tree is not fitted")
        total = self._importance.sum()
        if total == 0:
            return np.zeros_like(self._importance)
        return self._importance / total

    @property
    def n_nodes(self) -> int:
        return len(self._feature)

    @property
    def depth(self) -> int:
        """Maximum depth of the fitted tree (root = 0).

        Recorded during :meth:`fit`, so reading it is O(1) — packing a
        fitted forest (:class:`~repro.forest.fast_inference.PackedForest`)
        no longer re-walks every tree's node table.
        """
        if not self._feature:
            raise RuntimeError("tree is not fitted")
        return self._depth
