"""Vectorized CART regression tree.

Split search is NumPy-vectorized per node: one argsort per candidate
feature, then prefix-sum variance reduction over every threshold at
once (per the hpc-parallel guides, the hot loop is array arithmetic,
not Python iteration).  Supports two splitters:

- ``"best"``: CART — best variance-reduction split over a random
  feature subset (``max_features``), as in random forests.
- ``"random"``: completely-random trees — a random feature and a
  uniform-random threshold, grown until leaves are pure (Section 4.1).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng

_LEAF = -1


class RegressionTree:
    """CART regression tree with selectable splitter.

    Parameters
    ----------
    max_depth:
        Depth cap; ``None`` grows until pure / ``min_samples_leaf``.
    min_samples_leaf:
        Minimum samples in each child of a split.
    max_features:
        Candidate features per split: int, ``"sqrt"``, or ``None`` (all).
    splitter:
        ``"best"`` (CART) or ``"random"`` (completely random).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: "int | str | None" = None,
        splitter: str = "best",
        rng=None,
    ):
        if splitter not in ("best", "random"):
            raise ValueError(f"unknown splitter {splitter!r}")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self._rng = as_rng(rng)
        # Flat tree arrays, filled by fit().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []

    # -- fitting -------------------------------------------------------------

    def _n_candidate_features(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if mf == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(mf, (int, np.integer)) and mf >= 1:
            return min(int(mf), d)
        raise ValueError(f"bad max_features {mf!r}")

    def fit(self, X, y) -> "RegressionTree":
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self.n_features_ = X.shape[1]
        self._importance = np.zeros(X.shape[1])
        self._depth = 0
        self._build(X, y, np.arange(X.shape[0]), depth=0)
        # Freeze to arrays for fast prediction.
        self._feature_a = np.asarray(self._feature, dtype=np.intp)
        self._threshold_a = np.asarray(self._threshold)
        self._left_a = np.asarray(self._left, dtype=np.intp)
        self._right_a = np.asarray(self._right, dtype=np.intp)
        self._value_a = np.asarray(self._value)
        return self

    def _new_node(self) -> int:
        self._feature.append(_LEAF)
        self._threshold.append(0.0)
        self._left.append(0)
        self._right.append(0)
        self._value.append(0.0)
        return len(self._feature) - 1

    def _build(self, X, y, idx, depth) -> int:
        """Grow the subtree rooted at ``idx`` with an explicit stack.

        Iterative preorder (node, then left subtree, then right) with a
        LIFO stack, pushing the right child first: nodes are numbered —
        and the splitter's rng consumed — in exactly the order the
        previous recursive implementation used, so fitted trees are
        bit-identical while unbounded-depth fits (``max_depth=None``)
        no longer risk ``RecursionError``.
        """
        root = None
        # Frame: (sample indices, depth, parent node, is-left-child).
        stack = [(idx, depth, -1, False)]
        while stack:
            idx, depth, parent, is_left = stack.pop()
            node = self._new_node()
            if parent < 0:
                root = node
            elif is_left:
                self._left[parent] = node
            else:
                self._right[parent] = node
            yn = y[idx]
            self._value[node] = float(yn.mean())
            n = idx.shape[0]
            if (
                n < 2 * self.min_samples_leaf
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(yn == yn[0])
            ):
                continue
            split = (
                self._best_split(X, yn, idx)
                if self.splitter == "best"
                else self._random_split(X, idx)
            )
            if split is None:
                continue
            f, thr = split
            mask = X[idx, f] <= thr
            left_idx, right_idx = idx[mask], idx[~mask]
            if (
                left_idx.shape[0] < self.min_samples_leaf
                or right_idx.shape[0] < self.min_samples_leaf
            ):
                continue
            self._feature[node] = f
            self._threshold[node] = thr
            # Impurity decrease: parent SSE minus the children's SSE.
            yl, yr = y[left_idx], y[right_idx]
            decrease = (
                float(((yn - yn.mean()) ** 2).sum())
                - float(((yl - yl.mean()) ** 2).sum())
                - float(((yr - yr.mean()) ** 2).sum())
            )
            self._importance[f] += max(decrease, 0.0)
            self._depth = max(self._depth, depth + 1)
            stack.append((right_idx, depth + 1, node, False))
            stack.append((left_idx, depth + 1, node, True))
        return root

    def _best_split(self, X, yn, idx) -> tuple[int, float] | None:
        n, d = idx.shape[0], X.shape[1]
        k = self._n_candidate_features(d)
        feats = (
            self._rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
        )
        msl = self.min_samples_leaf
        best_loss = np.inf
        best = None
        for f in feats:
            xs = X[idx, f]
            order = np.argsort(xs, kind="stable")
            xs_sorted = xs[order]
            ys = yn[order]
            # Valid split positions: between i-1 and i, with both children
            # >= msl and a strict change in x.
            s1 = np.cumsum(ys)
            s2 = np.cumsum(ys * ys)
            pos = np.arange(msl, n - msl + 1)
            if pos.size == 0:
                continue
            distinct = xs_sorted[pos - 1] < xs_sorted[pos]
            pos = pos[distinct]
            if pos.size == 0:
                continue
            nl = pos.astype(float)
            nr = n - nl
            sl1, sl2 = s1[pos - 1], s2[pos - 1]
            sr1, sr2 = s1[-1] - sl1, s2[-1] - sl2
            loss = (sl2 - sl1 * sl1 / nl) + (sr2 - sr1 * sr1 / nr)
            j = int(np.argmin(loss))
            if loss[j] < best_loss:
                best_loss = float(loss[j])
                p = pos[j]
                thr = 0.5 * (xs_sorted[p - 1] + xs_sorted[p])
                best = (int(f), float(thr))
        return best

    def _random_split(self, X, idx) -> tuple[int, float] | None:
        d = X.shape[1]
        # Try a handful of random features, skipping constant ones.
        for f in self._rng.permutation(d)[: min(d, 10)]:
            xs = X[idx, f]
            lo, hi = float(xs.min()), float(xs.max())
            if lo < hi:
                thr = float(self._rng.uniform(lo, hi))
                # Guard against thr == hi putting everything left.
                if thr >= hi:
                    thr = np.nextafter(hi, lo)
                return int(f), thr
        return None

    # -- prediction ------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected (n, {self.n_features_}) input, got {X.shape}"
            )
        n = X.shape[0]
        node = np.zeros(n, dtype=np.intp)
        rows = np.arange(n)
        while True:
            f = self._feature_a[node]
            active = f != _LEAF
            if not active.any():
                break
            an = node[active]
            ar = rows[active]
            go_left = X[ar, self._feature_a[an]] <= self._threshold_a[an]
            node[active] = np.where(
                go_left, self._left_a[an], self._right_a[an]
            )
        return self._value_a[node]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importance per feature (sums to 1, or all
        zeros for a single-leaf tree)."""
        if not hasattr(self, "_importance"):
            raise RuntimeError("tree is not fitted")
        total = self._importance.sum()
        if total == 0:
            return np.zeros_like(self._importance)
        return self._importance / total

    @property
    def n_nodes(self) -> int:
        return len(self._feature)

    @property
    def depth(self) -> int:
        """Maximum depth of the fitted tree (root = 0).

        Recorded during :meth:`fit`, so reading it is O(1) — packing a
        fitted forest (:class:`~repro.forest.fast_inference.PackedForest`)
        no longer re-walks every tree's node table.
        """
        if not self._feature:
            raise RuntimeError("tree is not fitted")
        return self._depth
