"""The simulated testbed: Xeon machine specs, collocation layout and the
collocated discrete-event runtime that substitutes for the paper's
CAT-equipped hardware."""

from repro.testbed.machine import XeonSpec, MACHINES, get_machine, default_machine
from repro.testbed.collocation import CollocationConfig, CollocatedService
from repro.testbed.proxy import ProxyService
from repro.testbed.runtime import CollocationRuntime, RunResult, ServiceResult

__all__ = [
    "XeonSpec",
    "MACHINES",
    "get_machine",
    "default_machine",
    "CollocationConfig",
    "CollocatedService",
    "ProxyService",
    "CollocationRuntime",
    "RunResult",
    "ServiceResult",
]
