"""Collocation configuration: map services onto a machine's LLC ways.

Implements the chain layout the paper's contiguity constraint forces:

    [P0][S01][P1][S12][P2]...

Each service reserves a private region; adjacent services share the
region between their privates.  Every boost mask (private plus adjacent
shared regions) is contiguous, and each shared region has exactly two
sharers — the structure proved in Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.cat import CatController, ShortTermPolicy, WayMask
from repro.testbed.machine import MB, XeonSpec
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class CollocatedService:
    """One service in a collocation: a workload plus its STAP timeout.

    ``arrival_process`` selects Poisson (the paper's exponential
    inter-arrivals) or a two-state MMPP ("mmpp") whose burst shape is
    set by ``burst_factor``/``burst_fraction`` — bursty traffic is what
    defeats low-rate-calibrated timeout settings.
    """

    workload: WorkloadSpec
    timeout: float  # relative to expected service time (Eq. 4); inf disables
    utilization: float = 0.9  # arrival rate relative to service capacity
    arrival_process: str = "poisson"
    burst_factor: float = 4.0
    burst_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")
        if not 0 < self.utilization < 1:
            raise ValueError(
                f"utilization must be in (0, 1), got {self.utilization}"
            )
        if self.arrival_process not in ("poisson", "mmpp"):
            raise ValueError(
                f"unknown arrival_process {self.arrival_process!r}"
            )


@dataclass
class CollocationConfig:
    """Services collocated on one machine with a chain way-layout.

    Parameters
    ----------
    machine:
        Processor spec (determines way size and capacity).
    services:
        Collocated services in chain order.
    private_mb:
        LLC reserved per service for baseline performance (paper: 2 MB
        on most machines, 3-4 MB on the larger ones).  Either one value
        for every service or a per-service sequence — asymmetric
        reservations are what utility-based partitioners (UCP) emit.
    shared_mb:
        Size of each shared region between adjacent services (0 gives a
        pure static partition with no short-term allocation regions).
    """

    machine: XeonSpec
    services: list[CollocatedService]
    private_mb: "float | list[float]" = 2.0
    shared_mb: float = 2.0
    _private_ways_list: list[int] = field(init=False)
    _shared_ways: int = field(init=False)

    def __post_init__(self) -> None:
        if len(self.services) < 1:
            raise ValueError("need at least one service")
        if len(self.services) > self.machine.max_collocated:
            raise ValueError(
                f"{len(self.services)} services exceed the "
                f"{self.machine.max_collocated} the machine's cores support"
            )
        n = len(self.services)
        if np.ndim(self.private_mb) == 0:
            per_service = [float(self.private_mb)] * n
        else:
            per_service = [float(x) for x in self.private_mb]
            if len(per_service) != n:
                raise ValueError(
                    f"private_mb has {len(per_service)} entries for {n} services"
                )
        self._private_ways_list = [
            self.machine.mb_to_ways(mb) for mb in per_service
        ]
        self._shared_ways = (
            self.machine.mb_to_ways(self.shared_mb) if self.shared_mb > 0 else 0
        )
        needed = sum(self._private_ways_list) + max(0, n - 1) * self._shared_ways
        if needed > self.machine.llc_ways:
            raise ValueError(
                f"chain layout needs {needed} ways, "
                f"{self.machine.name} has {self.machine.llc_ways}"
            )

    @property
    def n_services(self) -> int:
        return len(self.services)

    @property
    def is_uniform(self) -> bool:
        return len(set(self._private_ways_list)) == 1

    @property
    def private_ways(self) -> int:
        """Per-service private ways (uniform layouts only)."""
        if not self.is_uniform:
            raise ValueError(
                "layout has per-service private sizes; use private_ways_list"
            )
        return self._private_ways_list[0]

    @property
    def private_ways_list(self) -> list[int]:
        return list(self._private_ways_list)

    @property
    def shared_ways(self) -> int:
        return self._shared_ways

    @property
    def private_bytes(self) -> float:
        """Per-service private bytes (uniform layouts only)."""
        return self.private_ways * self.machine.way_bytes

    @property
    def private_bytes_per_service(self) -> np.ndarray:
        return np.array(self._private_ways_list, dtype=float) * self.machine.way_bytes

    @property
    def shared_bytes(self) -> float:
        return self._shared_ways * self.machine.way_bytes

    def policies(self) -> list[ShortTermPolicy]:
        """Chain-layout short-term policies, one per service."""
        s = self._shared_ways
        n = len(self.services)
        out = []
        priv_off = 0
        for i, svc in enumerate(self.services):
            p = self._private_ways_list[i]
            default = WayMask(priv_off, p)
            lo = priv_off - s if (i > 0 and s > 0) else priv_off
            hi = priv_off + p + (s if (i < n - 1 and s > 0) else 0)
            boost = WayMask(lo, hi - lo)
            out.append(ShortTermPolicy(default, boost, svc.timeout))
            priv_off += p + s
        return out

    def controller(self) -> CatController:
        """A CatController with every service's policy registered."""
        ctl = CatController(n_ways=self.machine.llc_ways)
        for svc, pol in zip(self.services, self.policies()):
            ctl.register(svc.workload.name, pol)
        return ctl

    def shared_regions(self) -> list[tuple[int, int]]:
        """Index pairs (i, i+1) of services sharing each region."""
        return [(i, i + 1) for i in range(len(self.services) - 1)]

    def gross_increase(self, i: int) -> float:
        """l_a' / l_a for service ``i`` (Eq. 3 denominator)."""
        pol = self.policies()[i]
        return pol.gross_increase

    def validate_conjectures(self) -> None:
        """Assert the Section 2 structural properties hold for this layout."""
        ctl = self.controller()
        if not ctl.private_regions_disjoint():
            raise AssertionError("private regions overlap")
        if len(self.services) > 1 and not ctl.all_have_private_cache():
            raise AssertionError("some service lost its private region")
        if ctl.max_sharers() > 2:
            raise AssertionError("a setting shares cache with more than 2 others")
