"""Per-service proxy: queue, SLO warning tracking and boost refcounting.

Mirrors the proxy services of Section 4: queries queue at the proxy
waiting for CPU resources; the proxy monitors each outstanding query's
response time and, when the STAP timeout fires, switches the whole
service's class of service (all outstanding queries gain access to the
short-term cache).  The service reverts to its default class only when
no overdue query remains outstanding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class QueryRecord:
    """One query's lifecycle, tracked by the proxy."""

    qid: int
    arrival: float
    work: float  # seconds of execution at the baseline rate
    start: float = -1.0
    completion: float = -1.0
    remaining: float = 0.0
    last_update: float = 0.0
    overdue: bool = False
    boosted_time: float = 0.0
    completion_token: int = 0  # invalidates stale completion events

    @property
    def started(self) -> bool:
        return self.start >= 0.0

    @property
    def completed(self) -> bool:
        return self.completion >= 0.0


class ProxyService:
    """Queue + boost state machine for one collocated service."""

    def __init__(self, name: str, n_servers: int, warning_delay: float):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if warning_delay < 0:
            raise ValueError("warning_delay must be >= 0")
        self.name = name
        self.n_servers = n_servers
        self.warning_delay = warning_delay
        self.queue: deque[QueryRecord] = deque()
        self.in_service: dict[int, QueryRecord] = {}
        self.completed: list[QueryRecord] = []
        self._overdue_outstanding = 0

    # -- queue/server management ------------------------------------------

    @property
    def servers_free(self) -> int:
        return self.n_servers - len(self.in_service)

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def enqueue(self, q: QueryRecord) -> None:
        self.queue.append(q)

    def next_dispatch(self) -> QueryRecord | None:
        """Pop the next query to start, if a server is free (FCFS)."""
        if self.queue and self.servers_free > 0:
            return self.queue.popleft()
        return None

    def start_query(self, q: QueryRecord, now: float) -> None:
        q.start = now
        q.remaining = q.work
        q.last_update = now
        self.in_service[q.qid] = q

    def finish_query(self, q: QueryRecord, now: float) -> None:
        q.completion = now
        q.remaining = 0.0
        del self.in_service[q.qid]
        self.completed.append(q)
        if q.overdue:
            self._overdue_outstanding -= 1

    # -- boost state machine -----------------------------------------------

    @property
    def boosted(self) -> bool:
        """The service holds its short-term allocation while any overdue
        query is outstanding."""
        return self._overdue_outstanding > 0

    def mark_overdue(self, q: QueryRecord) -> bool:
        """Record that ``q`` crossed the response-time warning.

        Returns True when this flips the service's boost state on.
        """
        if q.completed or q.overdue:
            return False
        q.overdue = True
        was = self.boosted
        self._overdue_outstanding += 1
        return not was

    def warning_time(self, q: QueryRecord) -> float:
        """Absolute time at which ``q`` triggers the SLO warning."""
        return q.arrival + self.warning_delay
