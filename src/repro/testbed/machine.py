"""Catalogue of the Xeon processors used in the paper's evaluation.

Section 5 runs the default experiments on an E5-2683 (16 cores, 40 MB
LLC) and tests generalization (Figure 7b) on a two-socket Platinum 8275
(72 MB and 59 MB LLC), an E5-2650 (30 MB) and an E5-2620 (20 MB).
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024 * 1024


@dataclass(frozen=True)
class XeonSpec:
    """One processor (or socket) with a CAT-managed LLC.

    ``llc_ways`` determines the CAT allocation granularity:
    ``way_bytes = llc_bytes / llc_ways``.
    """

    name: str
    n_cores: int
    llc_bytes: int
    llc_ways: int
    cores_per_service: int = 2

    def __post_init__(self) -> None:
        if self.n_cores < 2 or self.llc_ways < 2 or self.llc_bytes <= 0:
            raise ValueError(f"degenerate machine spec: {self}")

    @property
    def way_bytes(self) -> float:
        return self.llc_bytes / self.llc_ways

    @property
    def llc_mb(self) -> float:
        return self.llc_bytes / MB

    @property
    def max_collocated(self) -> int:
        """Services hostable when each uses ``cores_per_service`` cores
        (the paper fully utilizes processor cores)."""
        return self.n_cores // self.cores_per_service

    def mb_to_ways(self, mb: float) -> int:
        """Smallest whole number of ways providing at least ``mb`` MB."""
        ways = int(-(-mb * MB // self.way_bytes))  # ceil division
        return max(1, min(ways, self.llc_ways))


#: The evaluation machines, keyed by short name.  Way counts follow the
#: CAT generation: 20-way CBMs on Broadwell/Haswell-era E5s, 3 MB-granular
#: masks on the Platinum sockets.
MACHINES: dict[str, XeonSpec] = {
    m.name: m
    for m in (
        XeonSpec(name="e5-2683", n_cores=16, llc_bytes=40 * MB, llc_ways=20),
        XeonSpec(name="platinum-8275-s0", n_cores=26, llc_bytes=72 * MB, llc_ways=24),
        XeonSpec(name="platinum-8275-s1", n_cores=26, llc_bytes=59 * MB, llc_ways=20),
        XeonSpec(name="e5-2650", n_cores=12, llc_bytes=30 * MB, llc_ways=20),
        XeonSpec(name="e5-2620", n_cores=8, llc_bytes=20 * MB, llc_ways=20),
    )
}


def get_machine(name: str) -> XeonSpec:
    """Look up a machine by name, with a helpful error."""
    try:
        return MACHINES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        ) from None


def default_machine() -> XeonSpec:
    """The paper's primary platform (Xeon E5-2683, 40 MB LLC)."""
    return MACHINES["e5-2683"]
