"""Collocated discrete-event runtime: the ground-truth "machine".

Simulates N collocated services sharing a CAT-managed LLC.  Each service
has its own proxy queue and ``cores_per_service`` executors; execution
speed at any instant follows the workload's miss-ratio curve at its
*current effective LLC capacity*, which depends on which services hold
their short-term allocation and on shared-way contention between
concurrent boosts.

Time normalization
------------------
By default the runtime runs each service on a normalized clock where its
baseline service time is 1.0.  The paper defines every runtime condition
(arrival rate, timeout) relative to service time (Table 2), so the
dynamics the models must learn — boost overlap, contention, queueing
feedback — are preserved, while pairs with extreme service-time ratios
(Redis at 1 ms vs Spark k-means at 81 s) stay simulatable.  Reported
response times are de-normalized through each service's baseline service
time.  Pass ``normalize_time=False`` for wall-clock coupling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng, spawn_rngs
from repro.cache.contention import SharedWayContention
from repro.queueing.events import EventLoop
from repro.testbed.collocation import CollocationConfig
from repro.testbed.proxy import ProxyService, QueryRecord


@dataclass
class ServiceResult:
    """Per-service outcome of one collocated run."""

    name: str
    baseline_service_time: float
    gross_increase: float
    timeout: float
    utilization: float
    #: Processing rate at the private allocation, relative to the
    #: workload's baseline capacity (1.0 when private == baseline).
    base_rate: float
    arrival_times: np.ndarray
    start_times: np.ndarray
    completion_times: np.ndarray
    demands: np.ndarray
    boosted_time: np.ndarray
    overdue: np.ndarray
    #: (time, capacity_bytes, n_in_service, n_queued, boosted) snapshots.
    segments: list[tuple[float, float, int, int, bool]] = field(
        default_factory=list
    )

    @property
    def n_queries(self) -> int:
        return int(self.arrival_times.size)

    @property
    def response_times(self) -> np.ndarray:
        """Response times in *seconds* (de-normalized)."""
        return (
            self.completion_times - self.arrival_times
        ) * self.baseline_service_time

    @property
    def response_times_norm(self) -> np.ndarray:
        """Response times relative to the baseline service time."""
        return self.completion_times - self.arrival_times

    @property
    def wait_times_norm(self) -> np.ndarray:
        return self.start_times - self.arrival_times

    @property
    def service_durations_norm(self) -> np.ndarray:
        return self.completion_times - self.start_times

    @property
    def boost_fraction(self) -> float:
        return float(self.overdue.mean()) if self.overdue.size else 0.0

    def effective_allocation(self) -> float:
        """Measured effective cache allocation (Eq. 3).

        Speedup is measured on the *boosted portion* of execution: the
        work completed while holding the short-term allocation divided
        by the time it took, i.e. the instantaneous boosted processing
        rate (unboosted execution runs at exactly the baseline rate, so
        it contributes no information about the allocation).  Normalized
        by the gross allocation increase per Eq. 3.  Low contention and
        high data reuse push the value toward 1; heavy contention drags
        it toward the 1/gross floor.  When the policy never triggers the
        neutral 1/gross is reported.
        """
        durations = self.service_durations_norm
        if durations.size == 0:
            return 1.0 / self.gross_increase
        boosted_time = float(self.boosted_time.sum())
        total_time = float(durations.sum())
        if boosted_time <= 1e-9 or total_time <= 0:
            return 1.0 / self.gross_increase
        total_work = float(self.demands.sum())  # work at baseline rate 1
        unboosted_time = total_time - boosted_time
        boosted_work = total_work - unboosted_time * self.base_rate
        rate = max(boosted_work / boosted_time, self.base_rate)
        # Eq. 3's speedup is boosted vs default-allocation service rate.
        return (rate / self.base_rate) / self.gross_increase

    def window_slices(self, n_windows: int) -> list[slice]:
        """Split the run into contiguous query windows (Section 3.1:
        long runs are split into multiple EA measurements)."""
        if n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        n = self.n_queries
        edges = np.linspace(0, n, n_windows + 1, dtype=int)
        return [slice(a, b) for a, b in zip(edges[:-1], edges[1:]) if b > a]

    def window_view(self, sl: slice) -> "ServiceResult":
        """A ServiceResult restricted to one window of queries."""
        return ServiceResult(
            name=self.name,
            baseline_service_time=self.baseline_service_time,
            gross_increase=self.gross_increase,
            timeout=self.timeout,
            utilization=self.utilization,
            base_rate=self.base_rate,
            arrival_times=self.arrival_times[sl],
            start_times=self.start_times[sl],
            completion_times=self.completion_times[sl],
            demands=self.demands[sl],
            boosted_time=self.boosted_time[sl],
            overdue=self.overdue[sl],
            segments=self.segments,
        )


@dataclass
class RunResult:
    """All services' outcomes plus run-level metadata."""

    services: list[ServiceResult]
    horizon: float
    config: CollocationConfig

    def service(self, name: str) -> ServiceResult:
        for s in self.services:
            if s.name == name:
                return s
        raise KeyError(f"no service named {name!r}")


class _LiveService:
    """Mutable simulation state for one service."""

    __slots__ = (
        "idx",
        "spec",
        "svc",
        "proxy",
        "policy",
        "rate",
        "boost_capacity_weight",
        "records",
        "segments",
        "capacity",
    )

    def __init__(self, idx, spec, svc, proxy, policy):
        self.idx = idx
        self.spec = spec
        self.svc = svc
        self.proxy = proxy
        self.policy = policy
        self.rate = 1.0
        self.records: list[QueryRecord] = []
        self.segments: list[tuple[float, float, int, int, bool]] = []
        self.capacity = 0.0


class CollocationRuntime:
    """Event-driven simulator for one collocation configuration."""

    def __init__(
        self,
        config: CollocationConfig,
        contention: SharedWayContention | None = None,
        normalize_time: bool = True,
        rng=None,
    ):
        config.validate_conjectures()
        self.config = config
        self.contention = contention or SharedWayContention()
        self.normalize_time = normalize_time
        self._rng = as_rng(rng)

    # -- capacity / rate model ---------------------------------------------

    def _capacities(self, live: list[_LiveService]) -> np.ndarray:
        """Effective LLC bytes per service given current boost states."""
        cfg = self.config
        caps = cfg.private_bytes_per_service.copy()
        shared = cfg.shared_bytes
        for i, j in cfg.shared_regions():
            bi = live[i].proxy.boosted
            bj = live[j].proxy.boosted
            if not (bi or bj):
                continue
            weights = np.array(
                [
                    live[i].boost_capacity_weight if bi else 0.0,
                    live[j].boost_capacity_weight if bj else 0.0,
                ]
            )
            share = self.contention.effective_shared_ways(shared, weights)
            caps[i] += share[0]
            caps[j] += share[1]
        return caps

    def _rate(self, ls: _LiveService, capacity: float) -> float:
        """Normalized processing rate: 1.0 at baseline capacity."""
        spec = ls.spec
        return spec.baseline_service_time / float(spec.service_time(capacity))

    # -- main loop -----------------------------------------------------------

    def run(self, n_queries: int = 600, warmup_fraction: float = 0.1) -> RunResult:
        """Simulate until every service completes ``n_queries`` queries.

        The first ``warmup_fraction`` of each service's queries are
        dropped from the returned per-query arrays (queue warm-up).
        """
        if n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        cfg = self.config
        loop = EventLoop()
        rngs = spawn_rngs(self._rng, 2 * cfg.n_services)
        policies = cfg.policies()

        live: list[_LiveService] = []
        for i, (svc, pol) in enumerate(zip(cfg.services, policies)):
            spec = svc.workload
            scale = 1.0 if self.normalize_time else spec.baseline_service_time
            warning = (
                math.inf if math.isinf(svc.timeout) else svc.timeout * scale
            )
            proxy = ProxyService(
                spec.name,
                n_servers=cfg.machine.cores_per_service,
                warning_delay=warning if not math.isinf(warning) else 1e18,
            )
            ls = _LiveService(i, spec, svc, proxy, pol)
            # Constant contention weight: fill pressure at baseline capacity.
            ls.boost_capacity_weight = spec.fill_intensity(spec.baseline_capacity)
            live.append(ls)

        # Pre-sample arrivals and demands on the (possibly normalized) clock.
        arrival_lists = []
        for i, ls in enumerate(live):
            scale = 1.0 if self.normalize_time else ls.spec.baseline_service_time
            rate = ls.svc.utilization * cfg.machine.cores_per_service / scale
            if ls.svc.arrival_process == "mmpp":
                from repro.workloads.arrivals import MarkovModulatedArrivals

                proc = MarkovModulatedArrivals(
                    rate=rate,
                    burst_factor=ls.svc.burst_factor,
                    burst_fraction=ls.svc.burst_fraction,
                    mean_dwell=10.0 * scale,
                )
                arrivals = proc.sample(n_queries, rng=rngs[2 * i])
            else:
                gaps = rngs[2 * i].exponential(1.0 / rate, size=n_queries)
                arrivals = np.cumsum(gaps)
            demands = ls.spec.sample_demands(n_queries, rng=rngs[2 * i + 1])
            works = demands * scale
            arrival_lists.append((arrivals, demands, works))

        # Initial capacities and segment snapshots.
        caps = self._capacities(live)
        for ls in live:
            ls.capacity = caps[ls.idx]
            ls.rate = self._rate(ls, ls.capacity)
            ls.segments.append((0.0, ls.capacity, 0, 0, False))

        def snapshot(ls: _LiveService) -> None:
            ls.segments.append(
                (
                    loop.now,
                    ls.capacity,
                    len(ls.proxy.in_service),
                    ls.proxy.queue_length,
                    ls.proxy.boosted,
                )
            )

        def settle(ls: _LiveService) -> None:
            """Charge elapsed work to in-service queries at the old rate."""
            now = loop.now
            boosted = ls.proxy.boosted
            for q in ls.proxy.in_service.values():
                dt = now - q.last_update
                if dt > 0:
                    q.remaining -= dt * ls.rate
                    if boosted:
                        q.boosted_time += dt
                    q.last_update = now

        def schedule_completion(ls: _LiveService, q: QueryRecord) -> None:
            q.completion_token += 1
            token = q.completion_token
            eta = q.remaining / ls.rate if ls.rate > 0 else 1e18
            loop.schedule_in(max(eta, 0.0), lambda: complete(ls, q, token))

        def reschedule_all(ls: _LiveService) -> None:
            for q in list(ls.proxy.in_service.values()):
                schedule_completion(ls, q)

        def affected_by(i: int) -> set[int]:
            out = {i}
            for a, b in cfg.shared_regions():
                if a == i:
                    out.add(b)
                elif b == i:
                    out.add(a)
            return out

        def on_boost_change(origin: int) -> None:
            """Recompute capacities/rates for the origin and its sharers."""
            for j in affected_by(origin):
                settle(live[j])
            caps = self._capacities(live)
            for j in affected_by(origin):
                ls = live[j]
                ls.capacity = caps[j]
                new_rate = self._rate(ls, ls.capacity)
                if new_rate != ls.rate:
                    ls.rate = new_rate
                    reschedule_all(ls)
                snapshot(ls)

        def try_dispatch(ls: _LiveService) -> None:
            while True:
                q = ls.proxy.next_dispatch()
                if q is None:
                    return
                ls.proxy.start_query(q, loop.now)
                schedule_completion(ls, q)
                snapshot(ls)

        def complete(ls: _LiveService, q: QueryRecord, token: int) -> None:
            if q.completion_token != token or q.completed:
                return
            settle(ls)
            was_boosted = ls.proxy.boosted
            ls.proxy.finish_query(q, loop.now)
            if was_boosted and not ls.proxy.boosted:
                on_boost_change(ls.idx)
            else:
                snapshot(ls)
            try_dispatch(ls)

        def warn(ls: _LiveService, q: QueryRecord) -> None:
            if ls.proxy.mark_overdue(q):
                on_boost_change(ls.idx)

        def arrive(ls: _LiveService, q: QueryRecord) -> None:
            ls.proxy.enqueue(q)
            ls.records.append(q)
            if not math.isinf(ls.svc.timeout):
                loop.schedule(ls.proxy.warning_time(q), lambda: warn(ls, q))
            try_dispatch(ls)
            snapshot(ls)  # records queue growth when no server was free

        for ls, (arrivals, demands, works) in zip(live, arrival_lists):
            for k in range(n_queries):
                q = QueryRecord(qid=k, arrival=float(arrivals[k]), work=float(works[k]))
                loop.schedule(q.arrival, lambda ls=ls, q=q: arrive(ls, q))

        loop.run()

        results = []
        for ls, (arrivals, demands, works) in zip(live, arrival_lists):
            recs = sorted(ls.proxy.completed, key=lambda q: q.qid)
            skip = int(len(recs) * warmup_fraction)
            recs = recs[skip:]
            scale = 1.0 if self.normalize_time else ls.spec.baseline_service_time
            results.append(
                ServiceResult(
                    name=ls.spec.name,
                    # Arrays below are stored on the normalized clock (the
                    # wall-clock run divides by scale), so de-normalization
                    # always multiplies by the real baseline service time.
                    baseline_service_time=ls.spec.baseline_service_time,
                    gross_increase=ls.policy.gross_increase,
                    timeout=ls.svc.timeout,
                    utilization=ls.svc.utilization,
                    base_rate=self._rate(
                        ls,
                        float(
                            cfg.private_bytes_per_service[ls.idx]
                        ),
                    ),
                    arrival_times=np.array([q.arrival for q in recs]) / scale,
                    start_times=np.array([q.start for q in recs]) / scale,
                    completion_times=np.array([q.completion for q in recs]) / scale,
                    demands=np.array([q.work for q in recs]) / scale,
                    boosted_time=np.array([q.boosted_time for q in recs]) / scale,
                    overdue=np.array([q.overdue for q in recs], dtype=bool),
                    segments=ls.segments,
                )
            )
        return RunResult(services=results, horizon=loop.now, config=cfg)
