"""Telemetry exporters: JSONL logs, the JSON run-manifest, ASCII tables.

A *run manifest* is the one-file summary of an instrumented pipeline
run: configuration, seeds, library versions, stage timings (the span
log's root spans), metric snapshots and pointers to the heavier JSONL
logs.  ``repro report <manifest>`` renders it back as the ASCII tables
:mod:`repro.analysis.reporting` produces for every other artifact in
this repo.

The manifest schema is validated structurally (no external jsonschema
dependency): :func:`validate_manifest` raises ``ValueError`` naming
every violation it finds.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from pathlib import Path

from repro.analysis.reporting import format_table

#: Bumped whenever a required manifest field changes shape.
MANIFEST_SCHEMA_VERSION = 1

#: Required top-level manifest fields and their types.
MANIFEST_SCHEMA: dict[str, type] = {
    "schema_version": int,
    "created_unix": float,
    "command": list,
    "config": dict,
    "seeds": dict,
    "versions": dict,
    "stages": list,
    "metrics": dict,
    "spans": list,
}

_STAGE_FIELDS = {"name": str, "start": float, "duration_s": float}
_SPAN_FIELDS = {"id": int, "name": str, "start": float, "duration": float}
_METRIC_SECTIONS = ("counters", "gauges", "histograms")


def _json_safe(value):
    """Best-effort conversion of config values to JSON-representable
    ones (numpy scalars -> python, inf/nan -> strings, else repr)."""
    if isinstance(value, (str, bool, type(None))):
        return value
    if isinstance(value, (int, float)):
        v = float(value)
        if math.isnan(v) or math.isinf(v):
            return str(v)
        return value if isinstance(value, int) else v
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    try:  # numpy scalars expose item()
        return _json_safe(value.item())
    except AttributeError:
        return repr(value)


def build_manifest(
    command,
    config: dict,
    seeds: dict,
    registry=None,
    span_log=None,
    events_file: str | None = None,
    n_events: int | None = None,
) -> dict:
    """Assemble a run manifest from the active telemetry state.

    ``stages`` are the span log's root spans (one per top-level pipeline
    stage); the full span list rides along for drill-down.
    """
    import numpy as np

    import repro

    spans = span_log.snapshot() if span_log is not None else []
    for s in spans:
        # Attrs are free-form; strict-JSON-proof them (inf timeouts etc).
        s["attrs"] = _json_safe(s.get("attrs", {}))
    stages = []
    if span_log is not None:
        # Merged worker roots are children of some parent-side stage in
        # spirit; the stage table covers this process only.
        own = [s for s in spans if s.get("worker") is None]
        roots = sorted(
            (s for s in own if s["parent_id"] is None), key=lambda s: s["id"]
        )
        picked = [(s, None) for s in roots]
        if len(roots) == 1:
            # A single root (the CLI wraps each command in one) carries
            # no breakdown of its own; its direct children are the
            # pipeline stages.
            root = roots[0]
            picked += [
                (s, root["name"])
                for s in sorted(
                    (s for s in own if s["parent_id"] == root["id"]),
                    key=lambda s: s["id"],
                )
            ]
        for s, parent in picked:
            stages.append(
                {
                    "name": s["name"],
                    "start": float(s["start"]),
                    "duration_s": float(s["duration"]),
                    "attrs": s.get("attrs", {}),
                    "parent": parent,
                }
            )
    manifest = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": float(time.time()),
        "command": [str(c) for c in command],
        "config": _json_safe(config),
        "seeds": _json_safe(seeds),
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repro": repro.__version__,
        },
        "stages": stages,
        "metrics": registry.snapshot()
        if registry is not None
        else {"counters": {}, "gauges": {}, "histograms": {}},
        "spans": spans,
    }
    if events_file is not None:
        manifest["events_file"] = str(events_file)
    if n_events is not None:
        manifest["n_events"] = int(n_events)
    return manifest


def validate_manifest(manifest: dict) -> None:
    """Structurally validate a manifest; raises ``ValueError`` listing
    every violation."""
    problems: list[str] = []
    if not isinstance(manifest, dict):
        raise ValueError("manifest must be a JSON object")
    for key, typ in MANIFEST_SCHEMA.items():
        if key not in manifest:
            problems.append(f"missing required field {key!r}")
        elif typ is float:
            if not isinstance(manifest[key], (int, float)) or isinstance(
                manifest[key], bool
            ):
                problems.append(f"field {key!r} must be a number")
        elif not isinstance(manifest[key], typ):
            problems.append(f"field {key!r} must be {typ.__name__}")
    if isinstance(manifest.get("schema_version"), int):
        if manifest["schema_version"] != MANIFEST_SCHEMA_VERSION:
            problems.append(
                f"schema_version {manifest['schema_version']} != "
                f"{MANIFEST_SCHEMA_VERSION}"
            )
    for i, stage in enumerate(manifest.get("stages") or []):
        if not isinstance(stage, dict):
            problems.append(f"stages[{i}] must be an object")
            continue
        for f, typ in _STAGE_FIELDS.items():
            v = stage.get(f)
            ok = isinstance(v, (int, float)) if typ is float else isinstance(v, typ)
            if v is None or not ok or isinstance(v, bool):
                problems.append(f"stages[{i}].{f} must be {typ.__name__}")
        if isinstance(stage.get("duration_s"), (int, float)) and (
            stage["duration_s"] < 0
        ):
            problems.append(f"stages[{i}].duration_s must be >= 0")
    for i, span in enumerate(manifest.get("spans") or []):
        if not isinstance(span, dict):
            problems.append(f"spans[{i}] must be an object")
            continue
        for f, typ in _SPAN_FIELDS.items():
            v = span.get(f)
            ok = isinstance(v, (int, float)) if typ is float else isinstance(v, typ)
            if v is None or not ok or isinstance(v, bool):
                problems.append(f"spans[{i}].{f} must be {typ.__name__}")
    metrics = manifest.get("metrics")
    if isinstance(metrics, dict):
        for section in _METRIC_SECTIONS:
            if not isinstance(metrics.get(section), dict):
                problems.append(f"metrics.{section} must be a mapping")
        for name, h in (metrics.get("histograms") or {}).items():
            if not isinstance(h, dict):
                problems.append(f"metrics.histograms[{name!r}] must be an object")
                continue
            edges, counts = h.get("edges"), h.get("counts")
            if not isinstance(edges, list) or not isinstance(counts, list):
                problems.append(
                    f"metrics.histograms[{name!r}] needs 'edges' and 'counts' lists"
                )
            elif len(counts) != len(edges) + 1:
                problems.append(
                    f"metrics.histograms[{name!r}]: expected "
                    f"{len(edges) + 1} counts for {len(edges)} edges, "
                    f"got {len(counts)}"
                )
    if problems:
        raise ValueError(
            "invalid run manifest:\n  - " + "\n  - ".join(problems)
        )


def write_manifest(path, manifest: dict) -> None:
    validate_manifest(manifest)
    Path(path).write_text(json.dumps(manifest, indent=2) + "\n")


def load_manifest(path) -> dict:
    manifest = json.loads(Path(path).read_text())
    validate_manifest(manifest)
    return manifest


def write_spans_jsonl(path, span_log) -> int:
    """One JSON object per completed span; returns the span count."""
    records = span_log.snapshot() if span_log is not None else []
    with open(path, "w") as fh:
        for r in records:
            fh.write(json.dumps(r) + "\n")
    return len(records)


# -- ASCII rendering -----------------------------------------------------------


def _stage_rows(manifest: dict) -> list[list]:
    # Root stages partition the run; child stages (promoted under a
    # single-root manifest) are percentages of the same total, shown
    # indented under their parent.
    total = sum(
        s["duration_s"] for s in manifest["stages"] if s.get("parent") is None
    ) or float("nan")
    return [
        [
            ("  " if s.get("parent") else "") + s["name"],
            s["duration_s"],
            100.0 * s["duration_s"] / total,
        ]
        for s in manifest["stages"]
    ]


def manifest_tables(manifest: dict) -> str:
    """Render a manifest as the ASCII tables ``repro report`` prints."""
    blocks: list[str] = []
    versions = manifest["versions"]
    blocks.append(
        format_table(
            ["field", "value"],
            [
                ["command", " ".join(manifest["command"]) or "(none)"],
                ["created_unix", manifest["created_unix"]],
                ["schema_version", manifest["schema_version"]],
                *[[f"version.{k}", v] for k, v in sorted(versions.items())],
                *[[f"seed.{k}", v] for k, v in sorted(manifest["seeds"].items())],
            ],
            title="Run manifest",
        )
    )
    if manifest["stages"]:
        blocks.append(
            format_table(
                ["stage", "seconds", "% of run"],
                _stage_rows(manifest),
                title="Stage timings",
                precision=4,
            )
        )
    metrics = manifest["metrics"]
    scalar_rows = [
        ["counter", k, v] for k, v in sorted(metrics["counters"].items())
    ] + [["gauge", k, v] for k, v in sorted(metrics["gauges"].items())]
    if scalar_rows:
        blocks.append(
            format_table(
                ["kind", "name", "value"],
                scalar_rows,
                title="Counters and gauges",
            )
        )
    hist_rows = []
    for name, h in sorted(metrics["histograms"].items()):
        count = h["count"]
        mean = h["sum"] / count if count else float("nan")
        hist_rows.append(
            [
                name,
                count,
                mean,
                h["min"] if h["min"] is not None else float("nan"),
                h["max"] if h["max"] is not None else float("nan"),
            ]
        )
    if hist_rows:
        blocks.append(
            format_table(
                ["histogram", "count", "mean", "min", "max"],
                hist_rows,
                title="Histograms / timers",
                precision=6,
            )
        )
    n_spans = len(manifest["spans"])
    if n_spans:
        per_name: dict[str, list[float]] = {}
        for s in manifest["spans"]:
            per_name.setdefault(s["name"], []).append(s["duration"])
        blocks.append(
            format_table(
                ["span", "count", "total s", "mean s"],
                [
                    [name, len(ds), sum(ds), sum(ds) / len(ds)]
                    for name, ds in sorted(per_name.items())
                ],
                title=f"Spans ({n_spans} total)",
                precision=6,
            )
        )
    return "\n\n".join(blocks)


def events_table(events: list[dict], max_runs: int = 20) -> str:
    """Summarize a queue-event trace (as loaded from events JSONL)."""
    runs: dict[int, dict] = {}
    for e in events:
        r = runs.setdefault(
            e["run"], {"queries": 0, "boosts": 0, "t_last": 0.0}
        )
        if e["type"] == "arrival":
            r["queries"] += 1
        elif e["type"] == "stap_boost_trigger":
            r["boosts"] += 1
        if e["type"] == "departure":
            r["t_last"] = max(r["t_last"], e["t"])
    rows = [
        [
            run,
            r["queries"],
            r["boosts"],
            r["boosts"] / r["queries"] if r["queries"] else float("nan"),
            r["t_last"],
        ]
        for run, r in sorted(runs.items())[:max_runs]
    ]
    title = f"Queue event trace ({len(events)} events, {len(runs)} runs"
    title += f"; first {max_runs})" if len(runs) > max_runs else ")"
    return format_table(
        ["run", "queries", "boost triggers", "boost frac", "last departure"],
        rows,
        title=title,
    )
