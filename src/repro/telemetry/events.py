"""Simulator event traces: per-query queue timelines.

:class:`QueueEventSink` receives the outcome of a
:func:`~repro.queueing.ggk.simulate_stap_queue` /
:func:`~repro.queueing.ggk.simulate_stap_queue_batch` run and unrolls it
into discrete events — ``arrival``, ``service_start``,
``stap_boost_trigger`` (the warning instant at which the short-term
allocation engaged) and ``departure`` — so a per-query timeline can be
reconstructed after the fact.

The events are *derived from the finished result arrays*, not collected
inside the simulation loop: the kernel's closed-form per-query outcome
already determines every event time, so feeding a sink never touches
the hot loop, never perturbs any computation, and costs nothing when no
sink is attached.
"""

from __future__ import annotations

import json
import threading

import numpy as np

#: Event types, in within-query chronological order.
EVENT_TYPES: tuple[str, ...] = (
    "arrival",
    "service_start",
    "stap_boost_trigger",
    "departure",
)


class QueueEventSink:
    """Collects queue events across one or more simulated runs.

    Thread-safe: runs may be recorded from any thread.  Each recorded
    run gets a sequential ``run`` index (or a caller-supplied label) and
    contributes one event dict per (query, event) pair.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._n_runs = 0

    # -- recording -------------------------------------------------------------

    def record_run(self, result, config, label: str | None = None) -> int:
        """Record one :class:`~repro.queueing.ggk.QueueResult`.

        ``config`` supplies the warning delay used to place the
        ``stap_boost_trigger`` event: a query that boosted switched rate
        at ``max(service_start, arrival + warning_delay)``.  Returns the
        run index assigned to this run.
        """
        arrivals = np.asarray(result.arrival_times, dtype=float)
        starts = np.asarray(result.start_times, dtype=float)
        completions = np.asarray(result.completion_times, dtype=float)
        boosted = np.asarray(result.boosted, dtype=bool)
        warn_delay = float(config.warning_delay)
        with self._lock:
            run = self._n_runs
            self._n_runs += 1
            events = self._events
            for q in range(arrivals.shape[0]):
                base = {"run": run, "query": q}
                if label is not None:
                    base["label"] = label
                events.append(
                    dict(base, type="arrival", t=float(arrivals[q]))
                )
                events.append(
                    dict(base, type="service_start", t=float(starts[q]))
                )
                if boosted[q]:
                    trigger = max(
                        float(starts[q]), float(arrivals[q]) + warn_delay
                    )
                    events.append(
                        dict(base, type="stap_boost_trigger", t=trigger)
                    )
                events.append(
                    dict(base, type="departure", t=float(completions[q]))
                )
        return run

    def record_batch(self, batch, configs, labels=None) -> list[int]:
        """Record every condition row of a
        :class:`~repro.queueing.ggk.BatchQueueResult` as its own run."""
        configs = list(configs)
        if labels is None:
            labels = [None] * len(configs)
        return [
            self.record_run(batch.condition(c), configs[c], label=labels[c])
            for c in range(batch.n_conditions)
        ]

    # -- inspection ------------------------------------------------------------

    @property
    def n_runs(self) -> int:
        with self._lock:
            return self._n_runs

    @property
    def n_events(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> list[dict]:
        """All recorded events (copies), in recording order."""
        with self._lock:
            return [dict(e) for e in self._events]

    def timeline(self, run: int, query: int) -> list[tuple[str, float]]:
        """Reconstruct one query's (event, time) timeline, time-ordered."""
        with self._lock:
            picked = [
                (e["type"], e["t"])
                for e in self._events
                if e["run"] == run and e["query"] == query
            ]
        return sorted(picked, key=lambda p: (p[1], EVENT_TYPES.index(p[0])))

    def run_summary(self) -> list[dict]:
        """Per-run event counts and boost-trigger fractions."""
        with self._lock:
            runs: dict[int, dict] = {}
            for e in self._events:
                r = runs.setdefault(
                    e["run"],
                    {"run": e["run"], "queries": 0, "boost_triggers": 0,
                     "label": e.get("label")},
                )
                if e["type"] == "arrival":
                    r["queries"] += 1
                elif e["type"] == "stap_boost_trigger":
                    r["boost_triggers"] += 1
        out = sorted(runs.values(), key=lambda r: r["run"])
        for r in out:
            r["boost_fraction"] = (
                r["boost_triggers"] / r["queries"] if r["queries"] else 0.0
            )
        return out

    # -- aggregation / export --------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "n_runs": self._n_runs,
                "events": [dict(e) for e in self._events],
            }

    def merge(self, snap: dict) -> None:
        """Fold a worker sink's snapshot in, re-keying run indices past
        this sink's so runs stay distinct."""
        with self._lock:
            base = self._n_runs
            max_run = -1
            for e in snap.get("events", []):
                e = dict(e)
                max_run = max(max_run, e["run"])
                e["run"] += base
                self._events.append(e)
            self._n_runs = base + max(int(snap.get("n_runs", 0)), max_run + 1)

    def write_jsonl(self, path) -> int:
        """Write one JSON object per event; returns the event count."""
        events = self.events()
        with open(path, "w") as fh:
            for e in events:
                fh.write(json.dumps(e) + "\n")
        return len(events)


def read_events_jsonl(path) -> list[dict]:
    """Load an event log written by :meth:`QueueEventSink.write_jsonl`."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
