"""Span-based tracing: nested wall-time scopes over ``perf_counter``.

A span is a named scope (``stage2.cascade.level``,
``policy.explore_timeouts``, ...) with free-form JSON-safe attributes.
Spans nest per thread — the enclosing span on the same thread becomes
the parent — and completed spans land in a shared, lock-protected log
in completion order, each carrying a monotonically increasing ``id``
assigned at *start* so the original ordering is always recoverable.

Start offsets are relative to the log's creation instant (one
``perf_counter`` origin per log), which keeps records meaningful after
serialization.  Worker processes run their own logs from their own
origins; merged worker spans keep their worker-relative clocks and are
tagged with the worker label they arrived from.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One completed span."""

    id: int
    parent_id: int | None
    name: str
    start: float  # seconds since the log's origin
    duration: float
    attrs: dict = field(default_factory=dict)
    worker: str | None = None  # set on records merged from a worker log

    def to_dict(self) -> dict:
        d = {
            "id": self.id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }
        if self.worker is not None:
            d["worker"] = self.worker
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SpanRecord":
        return cls(
            id=int(d["id"]),
            parent_id=d.get("parent_id"),
            name=str(d["name"]),
            start=float(d["start"]),
            duration=float(d["duration"]),
            attrs=dict(d.get("attrs", {})),
            worker=d.get("worker"),
        )


class Span:
    """Active span handle; use as a context manager."""

    __slots__ = ("_log", "id", "parent_id", "name", "attrs", "_t0")

    def __init__(self, log: "SpanLog", span_id: int, parent_id, name, attrs):
        self._log = log
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._log._push(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter()
        self._log._pop(self, self._t0, t1)
        return False


class NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = NoopSpan()


class SpanLog:
    """Thread-safe collection of spans with per-thread nesting stacks."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._origin = time.perf_counter()
        self.records: list[SpanRecord] = []

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start(self, name: str, attrs: dict) -> Span:
        stack = self._stack()
        parent_id = stack[-1].id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, parent_id, name, attrs)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span, t0: float, t1: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = SpanRecord(
            id=span.id,
            parent_id=span.parent_id,
            name=span.name,
            start=t0 - self._origin,
            duration=t1 - t0,
            attrs=span.attrs,
        )
        with self._lock:
            self.records.append(record)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def snapshot(self) -> list[dict]:
        with self._lock:
            return [r.to_dict() for r in self.records]

    def merge(self, records: list[dict], worker: str) -> None:
        """Append a worker log's records, re-keying ids so they cannot
        collide with this log's while preserving the worker-internal
        parent/child structure and ordering."""
        with self._lock:
            base = self._next_id
            max_id = -1
            for d in records:
                r = SpanRecord.from_dict(d)
                max_id = max(max_id, r.id)
                r.id += base
                if r.parent_id is not None:
                    r.parent_id += base
                r.worker = worker if r.worker is None else r.worker
                self.records.append(r)
            self._next_id = base + max_id + 1

    def by_name(self, name: str) -> list[SpanRecord]:
        with self._lock:
            return [r for r in self.records if r.name == name]

    def roots(self) -> list[SpanRecord]:
        """Top-level spans (no parent), in start order."""
        with self._lock:
            return sorted(
                (r for r in self.records if r.parent_id is None),
                key=lambda r: r.id,
            )
