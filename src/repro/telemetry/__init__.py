"""Telemetry subsystem: metrics, spans and simulator event traces.

Observability layer for the STA pipeline (profile -> deep forest ->
G/G/k STAP simulation -> timeout search).  Three primitives:

- a process-wide **metrics registry** (:mod:`repro.telemetry.registry`)
  of counters, gauges and fixed-bucket histograms/timers;
- **span tracing** (:mod:`repro.telemetry.spans`): nested wall-time
  scopes over ``time.perf_counter`` with thread-safe aggregation;
- a **queue event sink** (:mod:`repro.telemetry.events`) reconstructing
  per-query simulator timelines (arrival / service-start /
  STAP-boost-trigger / departure).

Exporters (:mod:`repro.telemetry.exporters`) write JSONL span/event
logs and a JSON run-manifest, and render ASCII summaries through
:func:`repro.analysis.reporting.format_table`.

Design contract
---------------

Telemetry is **disabled by default** and a true no-op while disabled:

- no registry, span log or sink object exists (``get_registry()`` et
  al. return ``None``), so the disabled path allocates nothing;
- every instrumented site pays a single enabled-flag check
  (:func:`enabled` reads one attribute);
- telemetry never touches any RNG and never feeds back into any
  computation, so instrumented code paths produce **bit-identical**
  outputs whether telemetry is on or off.

Worker processes (forest-training pools, policy-search pools) run
isolated telemetry states started with :func:`begin_worker`; their
:func:`worker_snapshot` payloads ride home on the existing result
channel and fold into the parent via :func:`merge_worker` — never
perturbing worker seeding or chunk order.
"""

from __future__ import annotations

from repro.telemetry.events import QueueEventSink, read_events_jsonl
from repro.telemetry.registry import (
    DEFAULT_TIME_EDGES,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import NOOP_SPAN, SpanLog, SpanRecord

__all__ = [
    "DEFAULT_TIME_EDGES",
    "Histogram",
    "MetricsRegistry",
    "QueueEventSink",
    "SpanLog",
    "SpanRecord",
    "begin_worker",
    "configure",
    "counter_inc",
    "current_span",
    "disable",
    "enabled",
    "gauge_set",
    "get_registry",
    "get_span_log",
    "histogram_observe",
    "merge_worker",
    "queue_sink",
    "read_events_jsonl",
    "snapshot",
    "span",
    "timer",
    "worker_snapshot",
]


class _State:
    """The process-wide telemetry state.  All three slots are ``None``
    while telemetry is disabled (the default)."""

    __slots__ = ("registry", "spans", "queue_sink")

    def __init__(self):
        self.registry = None
        self.spans = None
        self.queue_sink = None


_STATE = _State()


# -- lifecycle -----------------------------------------------------------------


def configure(trace_queue_events: bool = False) -> MetricsRegistry:
    """Enable telemetry for this process.

    Creates a fresh registry and span log (discarding any previous
    state) and, when ``trace_queue_events`` is set, a queue event sink
    that the simulators feed automatically.  Returns the new registry.
    """
    _STATE.registry = MetricsRegistry()
    _STATE.spans = SpanLog()
    _STATE.queue_sink = QueueEventSink() if trace_queue_events else None
    return _STATE.registry


def disable() -> None:
    """Disable telemetry and drop all collected state."""
    _STATE.registry = None
    _STATE.spans = None
    _STATE.queue_sink = None


def enabled() -> bool:
    """The single flag every instrumented site checks."""
    return _STATE.registry is not None


# -- accessors -----------------------------------------------------------------


def get_registry() -> MetricsRegistry | None:
    return _STATE.registry


def get_span_log() -> SpanLog | None:
    return _STATE.spans


def queue_sink() -> QueueEventSink | None:
    """The active queue event sink (``None`` unless telemetry is
    enabled with ``trace_queue_events=True``)."""
    return _STATE.queue_sink


# -- recording shims (each a no-op after one flag check when disabled) ---------


def counter_inc(name: str, value: float = 1.0) -> None:
    reg = _STATE.registry
    if reg is not None:
        reg.counter_inc(name, value)


def gauge_set(name: str, value: float) -> None:
    reg = _STATE.registry
    if reg is not None:
        reg.gauge_set(name, value)


def histogram_observe(name: str, value: float, edges=None) -> None:
    reg = _STATE.registry
    if reg is not None:
        reg.histogram_observe(name, value, edges=edges)


def timer(name: str):
    """``with telemetry.timer("stage.seconds"): ...`` — records into a
    timer histogram, or does nothing while disabled."""
    reg = _STATE.registry
    if reg is None:
        return NOOP_SPAN
    return reg.timer(name)


def span(name: str, **attrs):
    """Open a nested wall-time span (context manager).

    Returns a shared no-op handle while telemetry is disabled, so call
    sites need no guard of their own.
    """
    log = _STATE.spans
    if log is None:
        return NOOP_SPAN
    return log.start(name, attrs)


def current_span():
    log = _STATE.spans
    return log.current() if log is not None else None


# -- cross-process aggregation -------------------------------------------------


def begin_worker(trace_queue_events: bool = False) -> None:
    """Start a fresh, isolated telemetry state inside a pool worker.

    Fork-started workers inherit the parent's state objects; a fresh
    state guarantees the worker's snapshot contains only work it did
    itself.
    """
    configure(trace_queue_events=trace_queue_events)


def worker_snapshot() -> dict | None:
    """The worker's full telemetry payload (picklable), or ``None``
    while disabled.  Pair with :func:`merge_worker` on the parent."""
    if _STATE.registry is None:
        return None
    snap = {
        "metrics": _STATE.registry.snapshot(),
        "spans": _STATE.spans.snapshot(),
    }
    if _STATE.queue_sink is not None:
        snap["events"] = _STATE.queue_sink.snapshot()
    return snap


def snapshot() -> dict | None:
    """Alias of :func:`worker_snapshot` for in-process consumers."""
    return worker_snapshot()


def merge_worker(snap: dict | None, worker: str = "worker") -> None:
    """Fold a :func:`worker_snapshot` into the parent state.

    Counters add, gauges take the worker's value, histograms merge
    bucket-wise, spans append (re-keyed, tagged with ``worker``) and
    queue events append with re-keyed run indices.  No-op when either
    side is ``None``/disabled.
    """
    if snap is None or _STATE.registry is None:
        return
    _STATE.registry.merge(snap.get("metrics", {}))
    if _STATE.spans is not None and snap.get("spans"):
        _STATE.spans.merge(snap["spans"], worker=worker)
    if _STATE.queue_sink is not None and snap.get("events"):
        _STATE.queue_sink.merge(snap["events"])
