"""Process-wide metrics registry: counters, gauges, histograms, timers.

The registry is the aggregation point of the telemetry subsystem.  All
mutation goes through a single :class:`threading.Lock`, so concurrent
threads (and merged worker snapshots arriving on the parent's thread)
never race.  Everything the registry stores is a plain float/int/list —
:meth:`MetricsRegistry.snapshot` is picklable and JSON-serializable, so
worker processes can ship their registries back across a process-pool
boundary and the parent can :meth:`MetricsRegistry.merge` them in.

Telemetry never touches any RNG; the only clock it reads is
``time.perf_counter`` (via :func:`MetricsRegistry.timer`).
"""

from __future__ import annotations

import threading
import time

#: Default bucket edges (seconds) for timer histograms: 10 us .. 100 s.
DEFAULT_TIME_EDGES: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0
)


class Histogram:
    """Fixed-bucket histogram with running sum/min/max.

    ``edges`` are the (sorted, immutable) upper bucket boundaries; an
    observation lands in the first bucket whose edge is >= the value,
    with one overflow bucket past the last edge (``len(edges) + 1``
    counts total).
    """

    __slots__ = ("edges", "counts", "sum", "count", "min", "max")

    def __init__(self, edges=DEFAULT_TIME_EDGES):
        edges = tuple(float(e) for e in edges)
        if len(edges) == 0:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        i = 0
        for i, edge in enumerate(self.edges):
            if v <= edge:
                break
        else:
            i = len(self.edges)
        self.counts[i] += 1
        self.sum += v
        self.count += 1
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_dict(self, d: dict) -> None:
        if tuple(d["edges"]) != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{tuple(d['edges'])} vs {self.edges}"
            )
        for i, c in enumerate(d["counts"]):
            self.counts[i] += int(c)
        self.sum += float(d["sum"])
        self.count += int(d["count"])
        if d["count"]:
            self.min = min(self.min, float(d["min"]))
            self.max = max(self.max, float(d["max"]))

    @classmethod
    def from_dict(cls, d: dict) -> "Histogram":
        h = cls(edges=d["edges"])
        h.merge_dict(d)
        return h


class _Timer:
    """Context manager recording one duration into a histogram metric."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._registry.histogram_observe(
            self._name, time.perf_counter() - self._t0
        )
        return False


class MetricsRegistry:
    """Thread-safe process-wide metric store.

    Counters accumulate, gauges keep the last written value, histograms
    bucket observations against fixed edges (timers are histograms of
    seconds).  :meth:`snapshot` / :meth:`merge` round-trip the whole
    registry through plain dicts for cross-process aggregation.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- mutation --------------------------------------------------------------

    def counter_inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def histogram_observe(self, name: str, value: float, edges=None) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(edges if edges is not None else DEFAULT_TIME_EDGES)
                self._histograms[name] = hist
            hist.observe(value)

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("stage.seconds"): ...`` records one
        wall-time observation (perf_counter) into histogram ``name``."""
        return _Timer(self, name)

    # -- read ------------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    # -- aggregation -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable/JSON-safe copy of the whole registry."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in:
        counters add, gauges take the snapshot's value, histograms with
        matching edges add bucket-wise."""
        with self._lock:
            for k, v in snap.get("counters", {}).items():
                self._counters[k] = self._counters.get(k, 0.0) + v
            for k, v in snap.get("gauges", {}).items():
                self._gauges[k] = v
            for k, d in snap.get("histograms", {}).items():
                hist = self._histograms.get(k)
                if hist is None:
                    self._histograms[k] = Histogram.from_dict(d)
                else:
                    hist.merge_dict(d)
