"""Online short-term-allocation management.

The paper's conclusion positions the trained model as a direct manager:
"Given 30 minutes to profile workloads, our approach can be used
directly to manage short-term allocation."  This package provides that
deployment layer: an epoch-based online manager that re-plans timeout
vectors as offered load drifts, using the trained
:class:`~repro.core.pipeline.StacModel` for each re-plan.
"""

from repro.manager.controller import AdaptiveTimeoutController
from repro.manager.online import EpochResult, LoadScenario, OnlineManager

__all__ = [
    "AdaptiveTimeoutController",
    "EpochResult",
    "LoadScenario",
    "OnlineManager",
]
