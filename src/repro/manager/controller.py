"""Model-driven timeout controller with plan caching.

Wraps :func:`repro.core.policy_search.model_driven_policy` for online
use: plans are cached per quantized utilization vector so repeated
epochs at similar load reuse the grid exploration instead of re-running
25 queueing simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.policies import PolicyDecision
from repro.core.pipeline import StacModel
from repro.core.policy_search import DEFAULT_TIMEOUT_GRID, model_driven_policy


@dataclass
class AdaptiveTimeoutController:
    """Recommend timeout vectors for observed utilizations.

    Parameters
    ----------
    model:
        A fitted :class:`StacModel`.
    workloads:
        Names of the collocated services, in chain order.
    timeout_grid:
        Candidate timeouts explored per service.
    utilization_quantum:
        Cache key resolution: utilizations are rounded to this quantum,
        bounding both cache size and plan churn.
    n_jobs:
        Worker processes for each plan's grid exploration (passed to
        :func:`model_driven_policy`; results are independent of it).
    warm_start:
        Warm-start the EA fixed point across neighbouring grid
        combinations when exploring (see :func:`explore_timeouts`).
    batch:
        Simulate grid combinations through the batched queueing kernel
        (see :func:`explore_timeouts`; bit-identical plans either way).
    """

    model: StacModel
    workloads: tuple
    timeout_grid: tuple = DEFAULT_TIMEOUT_GRID
    utilization_quantum: float = 0.05
    statistic: str = "p95"
    n_jobs: int = 1
    warm_start: bool = False
    batch: bool = True
    _plans: dict = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not 0 < self.utilization_quantum <= 0.5:
            raise ValueError("utilization_quantum must be in (0, 0.5]")
        if len(self.workloads) < 1:
            raise ValueError("need at least one workload")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")

    def _key(self, utilizations) -> tuple:
        """Quantize utilizations to stable cache-bucket centres.

        Uses half-up rounding (``floor(x + 0.5)``) rather than
        ``np.round``: banker's rounding sends alternating bucket edges
        down/up (0.125 -> 0.10 but 0.175 -> 0.15 at quantum 0.05), which
        made nominally identical loads hit different plan-cache entries.
        The epsilon absorbs float-division jitter at exact edges so
        every midpoint rounds up consistently.
        """
        q = self.utilization_quantum
        out = []
        for u in utilizations:
            steps = math.floor(u / q + 0.5 + 1e-9)
            out.append(float(np.clip(round(steps * q, 12), 0.05, 0.95)))
        return tuple(out)

    def recommend(self, utilizations) -> PolicyDecision:
        """A timeout vector for the given per-service utilizations."""
        if len(utilizations) != len(self.workloads):
            raise ValueError("need one utilization per workload")
        key = self._key(utilizations)
        if key not in self._plans:
            self._plans[key] = model_driven_policy(
                self.model,
                tuple(self.workloads),
                key,
                timeout_grid=self.timeout_grid,
                statistic=self.statistic,
                name="adaptive",
                n_jobs=self.n_jobs,
                warm_start=self.warm_start,
                batch=self.batch,
            )
        return self._plans[key]

    @property
    def plans_computed(self) -> int:
        """How many distinct plans the controller has built (cache size)."""
        return len(self._plans)
