"""Epoch-based online management over drifting load.

A :class:`LoadScenario` describes how each service's offered load
evolves across epochs (e.g. a diurnal ramp).  The :class:`OnlineManager`
runs the collocation epoch by epoch on the ground-truth testbed; in
adaptive mode it re-plans the timeout vector before every epoch from the
current utilizations, in static mode it keeps the plan chosen for the
first epoch — the contrast that shows why dynaSprint-style one-shot
calibration degrades as load moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro._util import as_rng
from repro.manager.controller import AdaptiveTimeoutController
from repro.queueing.metrics import ResponseTimeSummary, summarize_response_times
from repro.testbed.collocation import CollocatedService, CollocationConfig
from repro.testbed.machine import XeonSpec, default_machine
from repro.testbed.runtime import CollocationRuntime
from repro.workloads.suite import get_workload


@dataclass(frozen=True)
class LoadScenario:
    """Per-epoch utilization vectors (one entry per collocated service)."""

    epochs: tuple

    def __post_init__(self) -> None:
        if len(self.epochs) == 0:
            raise ValueError("scenario needs at least one epoch")
        width = len(self.epochs[0])
        for e in self.epochs:
            if len(e) != width:
                raise ValueError("all epochs must cover the same services")
            if any(not 0 < u < 1 for u in e):
                raise ValueError("utilizations must be in (0, 1)")

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    @property
    def n_services(self) -> int:
        return len(self.epochs[0])

    @classmethod
    def ramp(
        cls, n_services: int, start: float, end: float, n_epochs: int
    ) -> "LoadScenario":
        """Linear load ramp applied to every service."""
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        levels = np.linspace(start, end, n_epochs)
        return cls(tuple(tuple([float(u)] * n_services) for u in levels))

    @classmethod
    def diurnal(
        cls, n_services: int, low: float, high: float, n_epochs: int
    ) -> "LoadScenario":
        """Half-sine day/night pattern between ``low`` and ``high``."""
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        phase = np.sin(np.linspace(0, np.pi, n_epochs))
        levels = low + (high - low) * phase
        return cls(tuple(tuple([float(u)] * n_services) for u in levels))


@dataclass(frozen=True)
class EpochResult:
    """Outcome of one managed epoch."""

    epoch: int
    utilizations: tuple
    timeouts: tuple
    summaries: tuple  # per-service ResponseTimeSummary (normalized)

    @property
    def p95(self) -> np.ndarray:
        return np.array([s.p95 for s in self.summaries])

    @property
    def mean(self) -> np.ndarray:
        return np.array([s.mean for s in self.summaries])


class OnlineManager:
    """Run a managed collocation across a load scenario."""

    def __init__(
        self,
        controller: AdaptiveTimeoutController,
        machine: XeonSpec | None = None,
        n_queries: int = 1200,
        private_mb: float = 2.0,
        shared_mb: float = 2.0,
        rng=None,
    ):
        if n_queries < 10:
            raise ValueError("n_queries must be >= 10")
        self.controller = controller
        self.machine = machine or default_machine()
        self.n_queries = n_queries
        self.private_mb = private_mb
        self.shared_mb = shared_mb
        self._rng = as_rng(rng)
        # Epoch seeds derive from one fixed spawn, not from live draws
        # on self._rng: every run() on this manager then simulates the
        # same ground truth, so back-to-back adapt=True / adapt=False
        # runs differ only by policy, never by seed noise.
        self._epoch_seed_root = int(self._rng.integers(0, 2**31))

    def _run_epoch(
        self, epoch: int, utilizations, timeouts, seed: int
    ) -> EpochResult:
        cfg = CollocationConfig(
            machine=self.machine,
            services=[
                CollocatedService(get_workload(name), timeout=t, utilization=u)
                for name, t, u in zip(
                    self.controller.workloads, timeouts, utilizations
                )
            ],
            private_mb=self.private_mb,
            shared_mb=self.shared_mb,
        )
        run = CollocationRuntime(cfg, rng=seed).run(n_queries=self.n_queries)
        summaries = tuple(
            summarize_response_times(s.response_times_norm) for s in run.services
        )
        return EpochResult(
            epoch=epoch,
            utilizations=tuple(utilizations),
            timeouts=tuple(timeouts),
            summaries=summaries,
        )

    def run(self, scenario: LoadScenario, adapt: bool = True) -> list[EpochResult]:
        """Manage the collocation across the scenario.

        ``adapt=True`` re-plans timeouts each epoch from that epoch's
        utilizations; ``adapt=False`` plans once for epoch 0 and keeps
        the vector (one-shot calibration).  Repeated runs on the same
        manager share per-epoch ground-truth seeds, so A/B comparisons
        across modes isolate the policy effect.
        """
        if scenario.n_services != len(self.controller.workloads):
            raise ValueError(
                "scenario width does not match the controller's workloads"
            )
        seeds = np.random.default_rng(self._epoch_seed_root).integers(
            0, 2**31, size=scenario.n_epochs
        )
        results = []
        static_plan = None
        for i, utils in enumerate(scenario.epochs):
            epoch_span = telemetry.span(
                "manager.epoch", epoch=i, adapt=adapt
            )
            with epoch_span:
                if adapt or static_plan is None:
                    with telemetry.span("manager.epoch.plan", epoch=i):
                        plan = self.controller.recommend(utils)
                    if static_plan is None:
                        static_plan = plan
                timeouts = plan.timeouts if adapt else static_plan.timeouts
                result = self._run_epoch(i, utils, timeouts, int(seeds[i]))
                epoch_span.set_attr("timeouts", [float(t) for t in timeouts])
                epoch_span.set_attr(
                    "mean_p95", float(np.mean(result.p95))
                )
            results.append(result)
            telemetry.counter_inc("manager.epochs")
            telemetry.histogram_observe(
                "manager.epoch_mean_p95",
                float(np.mean(result.p95)),
                edges=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            )
        return results
