"""Which runtime conditions drive effective cache allocation?

Trains a random forest on profile rows and aggregates impurity-based
importances back onto the named static/dynamic features (plus the trace
block as a whole) — a quick diagnostic for what the deep model has
available to learn from, and a sanity check that the contention signals
(partner timeout, concurrent boosting) actually carry weight.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile_vec import (
    DYNAMIC_FEATURE_NAMES,
    ProfileDataset,
    STATIC_FEATURE_NAMES,
)
from repro.forest.ensemble import RandomForestRegressor


def ea_feature_importances(
    dataset: ProfileDataset,
    n_estimators: int = 40,
    rng=None,
) -> dict[str, float]:
    """Named importance of every condition feature for predicting EA.

    Returns ``{feature_name: importance}`` over the static and dynamic
    features plus a single ``counter_trace`` entry aggregating all trace
    columns; values sum to ~1.
    """
    if len(dataset) == 0:
        raise ValueError("dataset is empty")
    X_flat = dataset.X_flat
    traces = dataset.traces.reshape(len(dataset), -1)
    X = np.concatenate([X_flat, traces], axis=1)
    forest = RandomForestRegressor(
        n_estimators=n_estimators, min_samples_leaf=2, rng=rng
    )
    forest.fit(X, dataset.y_ea)
    imp = forest.feature_importances_
    names = list(STATIC_FEATURE_NAMES) + list(DYNAMIC_FEATURE_NAMES)
    out = {name: float(imp[i]) for i, name in enumerate(names)}
    out["counter_trace"] = float(imp[len(names):].sum())
    return out


def top_features(importances: dict[str, float], k: int = 5) -> list[tuple[str, float]]:
    """The ``k`` highest-importance entries, sorted descending."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return sorted(importances.items(), key=lambda kv: -kv[1])[:k]
