"""Seeded k-means with k-means++ initialization.

Used twice in the paper: stratified sampling clusters seed experiments
by effective cache allocation (Section 4), and Section 5 clusters
workloads by learned concepts for system insight.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Parameters
    ----------
    k:
        Number of clusters.
    max_iter:
        Iteration cap.
    tol:
        Convergence threshold on centroid movement.
    """

    def __init__(self, k: int, max_iter: int = 100, tol: float = 1e-8, rng=None):
        if k < 1:
            raise ValueError("k must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.k = k
        self.max_iter = max_iter
        self.tol = tol
        self._rng = as_rng(rng)
        self.centroids_: np.ndarray | None = None

    def _init_centroids(self, X: np.ndarray) -> np.ndarray:
        """k-means++: spread initial centroids by squared-distance weight."""
        n = X.shape[0]
        first = int(self._rng.integers(0, n))
        centroids = [X[first]]
        for _ in range(1, self.k):
            d2 = np.min(
                ((X[:, None, :] - np.asarray(centroids)[None]) ** 2).sum(-1), axis=1
            )
            total = d2.sum()
            if total == 0:
                centroids.append(X[int(self._rng.integers(0, n))])
                continue
            probs = d2 / total
            idx = int(self._rng.choice(n, p=probs))
            centroids.append(X[idx])
        return np.asarray(centroids)

    def fit(self, X) -> "KMeans":
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        if X.shape[0] < self.k:
            raise ValueError(f"need at least k={self.k} samples, got {X.shape[0]}")
        centroids = self._init_centroids(X)
        for _ in range(self.max_iter):
            labels = self._assign(X, centroids)
            new = centroids.copy()
            for j in range(self.k):
                members = X[labels == j]
                if members.shape[0]:
                    new[j] = members.mean(axis=0)
            shift = float(np.abs(new - centroids).max())
            centroids = new
            if shift < self.tol:
                break
        self.centroids_ = centroids
        self.labels_ = self._assign(X, centroids)
        self.inertia_ = float(
            ((X - centroids[self.labels_]) ** 2).sum()
        )
        return self

    @staticmethod
    def _assign(X: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        d2 = ((X[:, None, :] - centroids[None]) ** 2).sum(-1)
        return np.argmin(d2, axis=1)

    def predict(self, X) -> np.ndarray:
        if self.centroids_ is None:
            raise RuntimeError("KMeans is not fitted")
        X = np.ascontiguousarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        return self._assign(X, self.centroids_)
