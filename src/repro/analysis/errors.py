"""Absolute-percentage-error statistics (the paper's accuracy metric)."""

from __future__ import annotations

import numpy as np

from repro.queueing.metrics import absolute_percentage_error


def median_ape(predicted, actual) -> float:
    """Median absolute percentage error."""
    return float(np.median(absolute_percentage_error(predicted, actual)))


def percentile_ape(predicted, actual, q: float = 95.0) -> float:
    """q-th percentile of absolute percentage error."""
    return float(np.percentile(absolute_percentage_error(predicted, actual), q))


def ape_summary(predicted, actual) -> dict[str, float]:
    """Median / p95 / mean APE in one dict (what Figure 6 reports)."""
    ape = absolute_percentage_error(predicted, actual)
    return {
        "median": float(np.median(ape)),
        "p95": float(np.percentile(ape, 95)),
        "mean": float(ape.mean()),
        "n": int(ape.size),
    }
