"""ASCII table/series formatting for the benchmark harness output."""

from __future__ import annotations

import math
from typing import Sequence

#: Default placeholder rendered for non-finite float cells.
NA_PLACEHOLDER = "na"


def _fmt(v, precision: int, na: str = NA_PLACEHOLDER) -> str:
    if isinstance(v, float):
        # Non-finite floats would otherwise render as "nan"/"inf" —
        # inconsistent with the precision-formatted finite cells and
        # indistinguishable from a deliberate label.  NaN marks a
        # missing value; infinities keep their sign.
        if math.isnan(v):
            return na
        if math.isinf(v):
            return "inf" if v > 0 else "-inf"
        return f"{v:.{precision}f}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    precision: int = 3,
    na: str = NA_PLACEHOLDER,
) -> str:
    """Render rows as a fixed-width ASCII table.

    Non-finite float cells render as the ``na`` placeholder (NaN) or a
    bare signed ``inf`` — never through the precision format.
    """
    if any(len(r) != len(headers) for r in rows):
        raise ValueError("every row must match the header width")
    cells = [[_fmt(v, precision, na) for v in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_series(
    name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y",
    precision: int = 3, na: str = NA_PLACEHOLDER,
) -> str:
    """Render an (x, y) series the way the paper's figures plot them."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table(
        [x_label, y_label], rows, title=name, precision=precision, na=na
    )
