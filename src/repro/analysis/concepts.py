"""Concept-based workload clustering (Section 5's system insight).

The paper clusters workloads by the concepts its deep forest learned
and finds an arrival-rate x service-time x timeout interaction that raw
hardware counters do not reveal.  This module reproduces the mechanics:
aggregate concept features per workload and k-means them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.clustering import KMeans
from repro.core.ea_model import EAModel
from repro.core.profile_vec import ProfileDataset


def cluster_workloads_by_concepts(
    model: EAModel,
    dataset: ProfileDataset,
    k: int = 3,
    rng=None,
) -> dict[str, int]:
    """Cluster workloads by their mean learned-concept signature.

    Returns ``{workload_name: cluster_id}``.
    """
    if len(dataset) == 0:
        raise ValueError("dataset is empty")
    feats = model.concept_features(dataset.X_flat, dataset.traces)
    names = [r.service_name for r in dataset.rows]
    uniq = sorted(set(names))
    if len(uniq) < k:
        raise ValueError(f"need at least k={k} distinct workloads, got {len(uniq)}")
    signatures = np.stack(
        [
            feats[[i for i, n in enumerate(names) if n == u]].mean(axis=0)
            for u in uniq
        ]
    )
    km = KMeans(k=k, rng=rng).fit(signatures)
    return {u: int(label) for u, label in zip(uniq, km.labels_)}


def cluster_workloads_by_counters(
    dataset: ProfileDataset,
    k: int = 3,
    rng=None,
) -> dict[str, int]:
    """Control condition: cluster on raw mean counter vectors instead.

    Per Section 5, this clustering misses the arrival/service/timeout
    interaction the concept clustering exposes.
    """
    if len(dataset) == 0:
        raise ValueError("dataset is empty")
    names = [r.service_name for r in dataset.rows]
    uniq = sorted(set(names))
    if len(uniq) < k:
        raise ValueError(f"need at least k={k} distinct workloads, got {len(uniq)}")
    traces = dataset.traces
    flat = traces.mean(axis=2)  # (n, counter_rows): time-averaged counters
    signatures = np.stack(
        [
            flat[[i for i, n in enumerate(names) if n == u]].mean(axis=0)
            for u in uniq
        ]
    )
    # Normalize counters to comparable scales before clustering.
    std = signatures.std(axis=0)
    std[std == 0] = 1.0
    km = KMeans(k=k, rng=rng).fit(signatures / std)
    return {u: int(label) for u, label in zip(uniq, km.labels_)}
