"""Analysis utilities: clustering, error statistics, concept insight and
report formatting for the benchmark harness."""

from repro.analysis.clustering import KMeans
from repro.analysis.errors import ape_summary, median_ape, percentile_ape
from repro.analysis.concepts import cluster_workloads_by_concepts
from repro.analysis.importance import ea_feature_importances, top_features
from repro.analysis.reporting import format_table, format_series

__all__ = [
    "KMeans",
    "ape_summary",
    "median_ape",
    "percentile_ape",
    "cluster_workloads_by_concepts",
    "ea_feature_importances",
    "top_features",
    "format_table",
    "format_series",
]
