"""repro — reproduction of "Performance Modeling for Short-Term Cache
Allocation" (Morris, Stewart, Chen, Birke; ICPP 2022).

Public API tour
---------------
- :mod:`repro.cache` — Intel-CAT-style way allocation and cache simulation.
- :mod:`repro.workloads` — the Table 1 benchmark suite as workload models.
- :mod:`repro.queueing` — discrete-event G/G/k with short-term allocation.
- :mod:`repro.testbed` — the simulated Xeon collocation testbed.
- :mod:`repro.counters` — synthetic architectural counter profiling.
- :mod:`repro.forest` — deep forest (MGS + cascades) from scratch.
- :mod:`repro.baselines` — competing models and allocation policies.
- :mod:`repro.core` — the three-stage modeling pipeline and policy search.
- :mod:`repro.analysis` — clustering, error metrics, report formatting.

Quick start::

    from repro import (
        Profiler, StacModel, uniform_conditions, model_driven_policy,
    )
    conditions = uniform_conditions(("redis", "social"), n=12, rng=0)
    dataset = Profiler(rng=0).profile(conditions)
    model = StacModel(rng=0).fit(dataset)
    policy = model_driven_policy(model, ("redis", "social"), (0.9, 0.9))
"""

from repro.core import (
    EAModel,
    Profiler,
    ProfileDataset,
    ResponseTimeModel,
    RuntimeCondition,
    StacModel,
    model_driven_policy,
    slo_matching,
    stratified_conditions,
    uniform_conditions,
)
from repro.testbed import (
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    default_machine,
    get_machine,
)
from repro.workloads import WORKLOADS, all_workloads, get_workload

__version__ = "0.1.0"

__all__ = [
    "EAModel",
    "Profiler",
    "ProfileDataset",
    "ResponseTimeModel",
    "RuntimeCondition",
    "StacModel",
    "model_driven_policy",
    "slo_matching",
    "stratified_conditions",
    "uniform_conditions",
    "CollocatedService",
    "CollocationConfig",
    "CollocationRuntime",
    "default_machine",
    "get_machine",
    "WORKLOADS",
    "all_workloads",
    "get_workload",
    "__version__",
]
