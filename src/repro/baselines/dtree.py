"""Single decision tree baseline (Figure 6's 'decision tree')."""

from __future__ import annotations

import numpy as np

from repro.forest.tree import RegressionTree


class DecisionTreeBaseline:
    """One CART tree over all features — the paper's simple non-linear
    model, which over-fits where deep forests generalize."""

    def __init__(
        self, max_depth: int | None = 10, min_samples_leaf: int = 3, rng=None
    ):
        self._tree = RegressionTree(
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=None,
            splitter="best",
            rng=rng,
        )

    def fit(self, X, y) -> "DecisionTreeBaseline":
        self._tree.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        return self._tree.predict(X)

    @property
    def depth(self) -> int:
        return self._tree.depth
