"""Residual MLP regressor (the paper's other future-work architecture).

Residual blocks ``h <- h + W2 relu(W1 h)`` give deep networks usable
gradients; compared against the plain MLP and LSTM in the extended
Figure 5 stability study.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.baselines.mlp import Adam, _Dense, _ReLU


class _ResidualBlock:
    """Two dense layers with a skip connection."""

    def __init__(self, width: int, rng):
        self.fc1 = _Dense(width, width, rng)
        self.relu = _ReLU()
        self.fc2 = _Dense(width, width, rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x + self.fc2.forward(self.relu.forward(self.fc1.forward(x)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        inner = self.fc1.backward(self.relu.backward(self.fc2.backward(grad)))
        return grad + inner

    def params_and_grads(self):
        yield from self.fc1.params_and_grads()
        yield from self.fc2.params_and_grads()


class ResidualMLPRegressor:
    """Input projection + N residual blocks + linear head, Adam on MSE."""

    def __init__(
        self,
        width: int = 32,
        n_blocks: int = 3,
        epochs: int = 100,
        batch_size: int = 32,
        lr: float = 1e-3,
        rng=None,
    ):
        if width < 1 or n_blocks < 1 or epochs < 1 or batch_size < 1:
            raise ValueError("width, n_blocks, epochs, batch_size must be >= 1")
        if lr <= 0:
            raise ValueError("lr must be > 0")
        self.width = width
        self.n_blocks = n_blocks
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = as_rng(rng)
        self._layers: list = []
        self.loss_history_: list[float] = []

    def _build(self, n_in: int) -> None:
        self._proj = _Dense(n_in, self.width, self._rng)
        self._blocks = [
            _ResidualBlock(self.width, self._rng) for _ in range(self.n_blocks)
        ]
        self._head = _Dense(self.width, 1, self._rng)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        h = self._proj.forward(x)
        for blk in self._blocks:
            h = blk.forward(h)
        return self._head.forward(h)

    def _backward(self, grad: np.ndarray) -> None:
        g = self._head.backward(grad)
        for blk in reversed(self._blocks):
            g = blk.backward(g)
        self._proj.backward(g)

    def _all_params(self):
        yield from self._proj.params_and_grads()
        for blk in self._blocks:
            yield from blk.params_and_grads()
        yield from self._head.params_and_grads()

    def fit(self, X, y) -> "ResidualMLPRegressor":
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float).reshape(-1, 1)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        self._x_mean, self._x_std = X.mean(axis=0), X.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        Xs = (X - self._x_mean) / self._x_std
        self._y_mean, self._y_std = float(y.mean()), float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_std
        self._build(X.shape[1])
        opt = Adam(lr=self.lr)
        n = X.shape[0]
        self.loss_history_ = []
        for _ in range(self.epochs):
            perm = self._rng.permutation(n)
            loss = 0.0
            for s in range(0, n, self.batch_size):
                idx = perm[s : s + self.batch_size]
                pred = self._forward(Xs[idx])
                diff = pred - ys[idx]
                loss += float((diff**2).sum())
                self._backward(2.0 * diff / idx.shape[0])
                opt.step(self._all_params())
            self.loss_history_.append(loss / n)
        return self

    def predict(self, X) -> np.ndarray:
        if not hasattr(self, "_head"):
            raise RuntimeError("model is not fitted")
        Xs = (np.asarray(X, dtype=float) - self._x_mean) / self._x_std
        return self._forward(Xs).ravel() * self._y_std + self._y_mean
