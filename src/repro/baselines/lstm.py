"""NumPy LSTM regressor over counter traces.

Section 4.1's future work proposes "more complicated neural network
structures, e.g., residual and long short-term memory (LSTM) networks"
for the reliability/accuracy trade-off.  This is a from-scratch LSTM
with full backpropagation through time, reading the trace column-by-
column (each sampling tick is one step, counters are the step features).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.baselines.mlp import Adam, _Dense


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


class _LSTMCore:
    """One-layer LSTM with BPTT over full sequences."""

    def __init__(self, n_in: int, n_hidden: int, rng):
        scale = 1.0 / np.sqrt(n_in + n_hidden)
        self.Wx = rng.normal(0.0, scale, size=(n_in, 4 * n_hidden))
        self.Wh = rng.normal(0.0, scale, size=(n_hidden, 4 * n_hidden))
        self.b = np.zeros(4 * n_hidden)
        # Positive forget-gate bias: standard trick for gradient flow.
        self.b[n_hidden : 2 * n_hidden] = 1.0
        self.n_hidden = n_hidden

    def forward(self, x: np.ndarray) -> np.ndarray:
        """(n, T, d) -> final hidden state (n, h); caches for backward."""
        n, T, d = x.shape
        h = self.n_hidden
        self._x = x
        self._cache = []
        h_t = np.zeros((n, h))
        c_t = np.zeros((n, h))
        for t in range(T):
            z = x[:, t] @ self.Wx + h_t @ self.Wh + self.b
            i = _sigmoid(z[:, :h])
            f = _sigmoid(z[:, h : 2 * h])
            g = np.tanh(z[:, 2 * h : 3 * h])
            o = _sigmoid(z[:, 3 * h :])
            c_prev = c_t
            c_t = f * c_prev + i * g
            tanh_c = np.tanh(c_t)
            h_prev = h_t
            h_t = o * tanh_c
            self._cache.append((i, f, g, o, c_prev, c_t, tanh_c, h_prev))
        return h_t

    def backward(self, grad_h: np.ndarray) -> None:
        """Accumulate dWx/dWh/db from the gradient of the final hidden."""
        x = self._x
        n, T, d = x.shape
        h = self.n_hidden
        self.dWx = np.zeros_like(self.Wx)
        self.dWh = np.zeros_like(self.Wh)
        self.db = np.zeros_like(self.b)
        dh = grad_h
        dc = np.zeros((n, h))
        for t in reversed(range(T)):
            i, f, g, o, c_prev, c_t, tanh_c, h_prev = self._cache[t]
            do = dh * tanh_c
            dc = dc + dh * o * (1 - tanh_c**2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.concatenate(
                [
                    di * i * (1 - i),
                    df * f * (1 - f),
                    dg * (1 - g**2),
                    do * o * (1 - o),
                ],
                axis=1,
            )
            self.dWx += x[:, t].T @ dz
            self.dWh += h_prev.T @ dz
            self.db += dz.sum(axis=0)
            dh = dz @ self.Wh.T
            dc = dc * f
        # Clip to keep BPTT stable on long traces.
        for garr in (self.dWx, self.dWh, self.db):
            np.clip(garr, -5.0, 5.0, out=garr)

    def params_and_grads(self):
        yield self.Wx, self.dWx
        yield self.Wh, self.dWh
        yield self.b, self.db


class LSTMRegressor:
    """LSTM over (n, C, T) traces, optional flat features at the head."""

    def __init__(
        self,
        n_hidden: int = 32,
        epochs: int = 60,
        batch_size: int = 32,
        lr: float = 3e-3,
        rng=None,
    ):
        if n_hidden < 1 or epochs < 1 or batch_size < 1:
            raise ValueError("n_hidden, epochs and batch_size must be >= 1")
        if lr <= 0:
            raise ValueError("lr must be > 0")
        self.n_hidden = n_hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = as_rng(rng)
        self._core: _LSTMCore | None = None
        self.loss_history_: list[float] = []

    def _to_sequence(self, traces: np.ndarray) -> np.ndarray:
        """(n, C, T) counter traces -> (n, T, C) step sequences."""
        t = np.ascontiguousarray(traces, dtype=float)
        if t.ndim != 3:
            raise ValueError(f"traces must be (n, C, T), got {t.shape}")
        return np.swapaxes(t, 1, 2).copy()

    def fit(self, X_flat, traces, y) -> "LSTMRegressor":
        if traces is None:
            raise ValueError("LSTMRegressor requires traces")
        seq = self._to_sequence(traces)
        y = np.ascontiguousarray(y, dtype=float).reshape(-1, 1)
        if seq.shape[0] != y.shape[0]:
            raise ValueError("traces and y must have matching first dims")
        self._s_mean = seq.mean(axis=(0, 1), keepdims=True)
        self._s_std = seq.std(axis=(0, 1), keepdims=True)
        self._s_std[self._s_std == 0] = 1.0
        seq = (seq - self._s_mean) / self._s_std
        xf = None
        if X_flat is not None:
            xf = np.ascontiguousarray(X_flat, dtype=float)
            self._f_mean, self._f_std = xf.mean(axis=0), xf.std(axis=0)
            self._f_std[self._f_std == 0] = 1.0
            xf = (xf - self._f_mean) / self._f_std
        self._has_flat = xf is not None
        self._y_mean, self._y_std = float(y.mean()), float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_std

        d = seq.shape[2]
        extra = xf.shape[1] if xf is not None else 0
        self._core = _LSTMCore(d, self.n_hidden, self._rng)
        self._head = _Dense(self.n_hidden + extra, 1, self._rng)
        opt = Adam(lr=self.lr)
        n = seq.shape[0]
        self.loss_history_ = []
        for _ in range(self.epochs):
            perm = self._rng.permutation(n)
            loss = 0.0
            for s in range(0, n, self.batch_size):
                idx = perm[s : s + self.batch_size]
                h = self._core.forward(seq[idx])
                feats = (
                    np.concatenate([h, xf[idx]], axis=1) if xf is not None else h
                )
                pred = self._head.forward(feats)
                diff = pred - ys[idx]
                loss += float((diff**2).sum())
                grad = self._head.backward(2.0 * diff / idx.shape[0])
                self._core.backward(grad[:, : self.n_hidden])
                opt.step(self._head.params_and_grads())
                opt.step(self._core.params_and_grads())
            self.loss_history_.append(loss / n)
        return self

    def predict(self, X_flat, traces) -> np.ndarray:
        if self._core is None:
            raise RuntimeError("model is not fitted")
        seq = (self._to_sequence(traces) - self._s_mean) / self._s_std
        h = self._core.forward(seq)
        if self._has_flat:
            if X_flat is None:
                raise ValueError("model was fitted with flat features")
            xf = (np.asarray(X_flat, dtype=float) - self._f_mean) / self._f_std
            h = np.concatenate([h, xf], axis=1)
        out = self._head.forward(h)
        return out.ravel() * self._y_std + self._y_mean
