"""Competing cache allocation policies (Figure 8).

Each policy produces a timeout vector (one per collocated service);
``numpy.inf`` means "never request short-term allocation" (private cache
only) and ``0.0`` means "always use the shared cache".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queueing.metrics import ResponseTimeSummary, summarize_response_times
from repro.testbed.collocation import CollocatedService, CollocationConfig
from repro.testbed.machine import XeonSpec
from repro.testbed.runtime import CollocationRuntime
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class PolicyDecision:
    """A named timeout vector chosen by some policy."""

    name: str
    timeouts: tuple[float, ...]


class RuntimeEvaluator:
    """Evaluate timeout vectors on the ground-truth testbed.

    Results are cached by (timeouts, utilization) so policy searches and
    benchmark comparisons can share runs.
    """

    def __init__(
        self,
        machine: XeonSpec,
        specs: list[WorkloadSpec],
        utilization: float = 0.9,
        n_queries: int = 1500,
        private_mb: float = 2.0,
        shared_mb: float = 2.0,
        rng: int = 0,
    ):
        self.machine = machine
        self.specs = list(specs)
        self.utilization = utilization
        self.n_queries = n_queries
        self.private_mb = private_mb
        self.shared_mb = shared_mb
        self.rng = rng
        self._cache: dict = {}

    @property
    def n_services(self) -> int:
        return len(self.specs)

    def evaluate(
        self, timeouts, utilization: float | None = None
    ) -> list[ResponseTimeSummary]:
        """Per-service normalized response-time summaries for a vector."""
        util = self.utilization if utilization is None else utilization
        key = (tuple(float(t) for t in timeouts), util)
        if key in self._cache:
            return self._cache[key]
        cfg = CollocationConfig(
            machine=self.machine,
            services=[
                CollocatedService(spec, timeout=t, utilization=util)
                for spec, t in zip(self.specs, timeouts)
            ],
            private_mb=self.private_mb,
            shared_mb=self.shared_mb,
        )
        res = CollocationRuntime(cfg, rng=self.rng).run(n_queries=self.n_queries)
        out = [summarize_response_times(s.response_times_norm) for s in res.services]
        self._cache[key] = out
        return out

    def p95(self, timeouts, utilization: float | None = None) -> np.ndarray:
        return np.array(
            [s.p95 for s in self.evaluate(timeouts, utilization=utilization)]
        )


def no_sharing_policy(n_services: int) -> PolicyDecision:
    """Baseline: every workload keeps to its private cache (Figure 8's
    normalization baseline)."""
    if n_services < 1:
        raise ValueError("n_services must be >= 1")
    return PolicyDecision("no-sharing", (np.inf,) * n_services)


def static_best_policy(evaluator: RuntimeEvaluator) -> PolicyDecision:
    """Static allocation: fully share (timeout 0) or fully private
    (timeout inf) — whichever yields the better mean p95."""
    n = evaluator.n_services
    share = (0.0,) * n
    private = (np.inf,) * n
    p_share = evaluator.p95(share).mean()
    p_priv = evaluator.p95(private).mean()
    if p_share <= p_priv:
        return PolicyDecision("static-share", share)
    return PolicyDecision("static-private", private)


def dcat_policy(
    evaluator: RuntimeEvaluator,
) -> PolicyDecision:
    """Workload-aware allocation (dCat [31]).

    Throughput-profiles each workload in isolation (fixed phases) and
    assigns the whole shared region to the workload with the greatest
    standalone speedup; the others keep only their private cache.
    """
    mb = 1024 * 1024
    private = evaluator.private_mb * mb
    boosted = (evaluator.private_mb + evaluator.shared_mb) * mb
    speedups = [spec.speedup(boosted) / spec.speedup(private) for spec in evaluator.specs]
    winner = int(np.argmax(speedups))
    timeouts = tuple(
        0.0 if i == winner else np.inf for i in range(evaluator.n_services)
    )
    return PolicyDecision("dcat", timeouts)


def dynasprint_policy(
    evaluator: RuntimeEvaluator,
    timeout_grid=(0.0, 0.5, 1.0, 1.5, 3.0),
    calibration_utilization: float = 0.25,
) -> PolicyDecision:
    """IPC-driven dynamic allocation (dynaSprint [12]).

    Picks each service's timeout independently at a *low* arrival rate
    (maximum standalone benefit, partner idle on private cache), then
    reuses those settings at the target rate — ignoring queueing delay,
    which is exactly the weakness Section 5.2 describes.
    """
    if len(timeout_grid) == 0:
        raise ValueError("timeout_grid must be non-empty")
    n = evaluator.n_services
    chosen = []
    for i in range(n):
        best_t, best_p95 = np.inf, np.inf
        for t in timeout_grid:
            timeouts = tuple(
                t if j == i else np.inf for j in range(n)
            )
            p95 = evaluator.p95(
                timeouts, utilization=calibration_utilization
            )[i]
            if p95 < best_p95:
                best_p95, best_t = p95, t
        chosen.append(best_t)
    return PolicyDecision("dynasprint", tuple(chosen))
