"""NumPy MLP with backpropagation and Adam.

Provides the dense layers the CNN baseline reuses.  Back-prop models
overwrite weights during training, which is the source of the run-to-
run variance Figure 5 contrasts against deep forests.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng


class _Dense:
    """Fully connected layer with He-initialized weights."""

    def __init__(self, n_in: int, n_out: int, rng):
        self.W = rng.normal(0.0, np.sqrt(2.0 / n_in), size=(n_in, n_out))
        self.b = np.zeros(n_out)
        self._x = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.dW = self._x.T @ grad
        self.db = grad.sum(axis=0)
        return grad @ self.W.T

    def params_and_grads(self):
        yield self.W, self.dW
        yield self.b, self.db


class _ReLU:
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask

    def params_and_grads(self):
        return iter(())


class _Dropout:
    """Inverted dropout; active only during training."""

    def __init__(self, rate: float, rng):
        if not 0 <= rate < 1:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad if self._mask is None else grad * self._mask

    def params_and_grads(self):
        return iter(())


class Adam:
    """Adam optimizer over (param, grad) pairs keyed by identity."""

    def __init__(self, lr: float = 1e-3, beta1=0.9, beta2=0.999, eps=1e-8):
        if lr <= 0:
            raise ValueError("lr must be > 0")
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params_and_grads) -> None:
        self._t += 1
        for p, g in params_and_grads:
            key = id(p)
            m = self._m.setdefault(key, np.zeros_like(p))
            v = self._v.setdefault(key, np.zeros_like(p))
            m += (1 - self.beta1) * (g - m)
            v += (1 - self.beta2) * (g * g - v)
            mh = m / (1 - self.beta1**self._t)
            vh = v / (1 - self.beta2**self._t)
            p -= self.lr * mh / (np.sqrt(vh) + self.eps)


class MLPRegressor:
    """Multi-layer perceptron trained with Adam on MSE loss."""

    def __init__(
        self,
        hidden: tuple[int, ...] = (64, 32),
        epochs: int = 100,
        batch_size: int = 32,
        lr: float = 1e-3,
        dropout: float = 0.0,
        rng=None,
    ):
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.dropout = dropout
        self._rng = as_rng(rng)
        self._layers: list = []
        self.loss_history_: list[float] = []

    def _build(self, n_in: int) -> None:
        self._layers = []
        prev = n_in
        for h in self.hidden:
            self._layers.append(_Dense(prev, h, self._rng))
            self._layers.append(_ReLU())
            if self.dropout > 0:
                self._layers.append(_Dropout(self.dropout, self._rng))
            prev = h
        self._layers.append(_Dense(prev, 1, self._rng))

    def _forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self._layers:
            x = layer.forward(x)
        return x

    def _backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self._layers):
            grad = layer.backward(grad)

    def _set_training(self, training: bool) -> None:
        for layer in self._layers:
            if isinstance(layer, _Dropout):
                layer.training = training

    def fit(self, X, y) -> "MLPRegressor":
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float).reshape(-1, 1)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        self._x_mean, self._x_std = X.mean(axis=0), X.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._y_mean, self._y_std = float(y.mean()), float(y.std()) or 1.0
        Xs = (X - self._x_mean) / self._x_std
        ys = (y - self._y_mean) / self._y_std
        self._build(X.shape[1])
        opt = Adam(lr=self.lr)
        n = X.shape[0]
        self.loss_history_ = []
        self._set_training(True)
        for _ in range(self.epochs):
            perm = self._rng.permutation(n)
            epoch_loss = 0.0
            for s in range(0, n, self.batch_size):
                idx = perm[s : s + self.batch_size]
                xb, yb = Xs[idx], ys[idx]
                pred = self._forward(xb)
                diff = pred - yb
                epoch_loss += float((diff**2).sum())
                self._backward(2.0 * diff / xb.shape[0])
                for layer in self._layers:
                    opt.step(layer.params_and_grads())
            self.loss_history_.append(epoch_loss / n)
        self._set_training(False)
        return self

    def predict(self, X) -> np.ndarray:
        if not self._layers:
            raise RuntimeError("model is not fitted")
        X = np.ascontiguousarray(X, dtype=float)
        Xs = (X - self._x_mean) / self._x_std
        self._set_training(False)
        return self._forward(Xs).ravel() * self._y_std + self._y_mean
