"""Utility-based cache partitioning (Qureshi & Patt, MICRO'06 — ref [21]).

UCP assigns LLC ways to workloads by greedy lookahead over each
workload's marginal miss-reduction utility.  The paper's related-work
section notes UCP "ignores queuing delay since it is implemented below
the software stack": it optimizes aggregate misses, not response time —
exactly the gap the model-driven short-term policy closes.  The
partition it emits is *static*: every way is private, nothing is shared.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadSpec


def marginal_utility_curve(
    spec: WorkloadSpec, n_ways: int, way_bytes: float
) -> np.ndarray:
    """Per-way utility: weighted miss reduction of adding the w-th way.

    Utility of way ``w`` is ``intensity * (m((w-1) ways) - m(w ways))``
    — misses eliminated per second, the quantity UCP's lookahead greedily
    maximizes.
    """
    if n_ways < 1 or way_bytes <= 0:
        raise ValueError("need n_ways >= 1 and way_bytes > 0")
    caps = np.arange(0, n_ways + 1, dtype=float) * way_bytes
    miss = np.asarray(spec.mrc.miss_ratio(caps))
    return spec.access_intensity * (miss[:-1] - miss[1:])


def ucp_partition(
    specs: list[WorkloadSpec],
    total_ways: int,
    way_bytes: float,
    min_ways: int = 1,
) -> list[int]:
    """Greedy-lookahead way partition across workloads.

    Every workload first receives ``min_ways``; remaining ways go one at
    a time to whichever workload's *next* way has the highest marginal
    utility (ties to the earlier workload, as in hardware's fixed
    priority).
    """
    n = len(specs)
    if n < 1:
        raise ValueError("need at least one workload")
    if min_ways < 1:
        raise ValueError("min_ways must be >= 1")
    if total_ways < n * min_ways:
        raise ValueError(
            f"{total_ways} ways cannot give {n} workloads {min_ways} each"
        )
    utilities = [
        marginal_utility_curve(s, total_ways, way_bytes) for s in specs
    ]
    alloc = [min_ways] * n
    for _ in range(total_ways - n * min_ways):
        gains = [
            utilities[j][alloc[j]] if alloc[j] < total_ways else -np.inf
            for j in range(n)
        ]
        winner = int(np.argmax(gains))
        alloc[winner] += 1
    return alloc


def ucp_private_mb(
    specs: list[WorkloadSpec],
    total_ways: int,
    way_bytes: float,
    min_ways: int = 1,
) -> list[float]:
    """UCP partition expressed as per-service private megabytes, ready
    for :class:`~repro.testbed.collocation.CollocationConfig` with
    ``shared_mb=0``."""
    alloc = ucp_partition(specs, total_ways, way_bytes, min_ways=min_ways)
    return [w * way_bytes / (1024 * 1024) for w in alloc]
