"""Competing models and allocation policies from the evaluation section.

Models (Figure 6): linear regression, a single decision tree, a CNN
(NumPy implementation substituting for the paper's PyTorch model), and
a plain random forest ("simple ML").  Policies (Figure 8): no-sharing,
static-best, dCat [31], dynaSprint [12], and simple-ML-driven dynamic
allocation.
"""

from repro.baselines.linreg import RidgeRegression
from repro.baselines.dtree import DecisionTreeBaseline
from repro.baselines.mlp import MLPRegressor
from repro.baselines.cnn import CNNRegressor, tune_cnn
from repro.baselines.lstm import LSTMRegressor
from repro.baselines.resnet import ResidualMLPRegressor
from repro.baselines.ucp import marginal_utility_curve, ucp_partition, ucp_private_mb
from repro.baselines.policies import (
    PolicyDecision,
    RuntimeEvaluator,
    no_sharing_policy,
    static_best_policy,
    dcat_policy,
    dynasprint_policy,
)

__all__ = [
    "RidgeRegression",
    "DecisionTreeBaseline",
    "MLPRegressor",
    "CNNRegressor",
    "tune_cnn",
    "LSTMRegressor",
    "ResidualMLPRegressor",
    "PolicyDecision",
    "RuntimeEvaluator",
    "no_sharing_policy",
    "static_best_policy",
    "dcat_policy",
    "dynasprint_policy",
    "marginal_utility_curve",
    "ucp_partition",
    "ucp_private_mb",
]
