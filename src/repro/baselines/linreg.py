"""Ridge-stabilized linear regression (the Figure 6 'linear' baseline)."""

from __future__ import annotations

import numpy as np


class RidgeRegression:
    """Standardized linear least squares with L2 regularization.

    The paper's linear baseline conflates cache counters with the
    processes driving response time; its large error in Figure 6 is the
    motivation for deep features.
    """

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self._coef: np.ndarray | None = None

    def fit(self, X, y) -> "RidgeRegression":
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._y_mean = float(y.mean())
        Xs = (X - self._x_mean) / self._x_std
        ys = y - self._y_mean
        d = Xs.shape[1]
        A = Xs.T @ Xs + self.alpha * np.eye(d)
        b = Xs.T @ ys
        self._coef = np.linalg.solve(A, b)
        return self

    def predict(self, X) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("model is not fitted")
        X = np.ascontiguousarray(X, dtype=float)
        Xs = (X - self._x_mean) / self._x_std
        return Xs @ self._coef + self._y_mean

    @property
    def coef_(self) -> np.ndarray:
        if self._coef is None:
            raise RuntimeError("model is not fitted")
        return self._coef
