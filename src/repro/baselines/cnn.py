"""NumPy CNN regressor over counter traces, plus a random-search tuner.

Substitutes for the paper's PyTorch CNN (trained with TUNE/PipeTune):
an im2col 2-D convolution, ReLU, global pooling-free flatten and dense
head, trained with Adam on MSE.  Exhibits the back-prop run-to-run
variance Figure 5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro._util import as_rng, spawn_rngs
from repro.baselines.mlp import Adam, _Dense, _ReLU


class _Conv2D:
    """Valid-padding 2-D convolution via im2col (vectorized matmul)."""

    def __init__(self, n_filters: int, kernel: tuple[int, int], rng):
        self.kh, self.kw = kernel
        fan_in = self.kh * self.kw
        self.W = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, n_filters))
        self.b = np.zeros(n_filters)
        self._cols = None
        self._in_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """(n, H, W) -> (n, H-kh+1, W-kw+1, F)."""
        self._in_shape = x.shape
        views = sliding_window_view(x, (self.kh, self.kw), axis=(1, 2))
        n, oh, ow = views.shape[:3]
        cols = views.reshape(n * oh * ow, self.kh * self.kw)
        self._cols = cols
        out = cols @ self.W + self.b
        return out.reshape(n, oh, ow, -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, oh, ow, f = grad.shape
        g = grad.reshape(n * oh * ow, f)
        self.dW = self._cols.T @ g
        self.db = g.sum(axis=0)
        dcols = (g @ self.W.T).reshape(n, oh, ow, self.kh, self.kw)
        dx = np.zeros(self._in_shape)
        for i in range(self.kh):
            for j in range(self.kw):
                dx[:, i : i + oh, j : j + ow] += dcols[:, :, :, i, j]
        return dx

    def params_and_grads(self):
        yield self.W, self.dW
        yield self.b, self.db


@dataclass
class CNNHyperParams:
    """The hyper parameters the paper tunes: epochs, batch size, learning
    rate, neurons, drop rate (Section 5.1)."""

    n_filters: int = 8
    kernel: tuple[int, int] = (3, 3)
    hidden: int = 32
    epochs: int = 60
    batch_size: int = 32
    lr: float = 1e-3
    dropout: float = 0.0


class CNNRegressor:
    """Conv -> ReLU -> flatten -> dense -> ReLU -> dense, Adam on MSE."""

    def __init__(self, params: CNNHyperParams | None = None, rng=None):
        self.params = params or CNNHyperParams()
        self._rng = as_rng(rng)
        self._conv = None
        self.loss_history_: list[float] = []

    def _build(self, H: int, W: int, extra: int) -> None:
        p = self.params
        self._conv = _Conv2D(p.n_filters, p.kernel, self._rng)
        oh, ow = H - p.kernel[0] + 1, W - p.kernel[1] + 1
        if oh < 1 or ow < 1:
            raise ValueError(f"kernel {p.kernel} too large for trace {(H, W)}")
        flat = oh * ow * p.n_filters + extra
        self._relu1 = _ReLU()
        self._fc1 = _Dense(flat, p.hidden, self._rng)
        self._relu2 = _ReLU()
        self._fc2 = _Dense(p.hidden, 1, self._rng)

    def _forward(self, traces, flat_extra):
        c = self._relu1.forward(self._conv.forward(traces))
        n = c.shape[0]
        self._conv_out_shape = c.shape
        flat = c.reshape(n, -1)
        if flat_extra is not None:
            self._extra_width = flat_extra.shape[1]
            flat = np.concatenate([flat, flat_extra], axis=1)
        else:
            self._extra_width = 0
        h = self._relu2.forward(self._fc1.forward(flat))
        return self._fc2.forward(h)

    def _backward(self, grad):
        g = self._fc2.backward(grad)
        g = self._relu2.backward(g)
        g = self._fc1.backward(g)
        if self._extra_width:
            g = g[:, : -self._extra_width]
        g = g.reshape(self._conv_out_shape)
        g = self._relu1.backward(g)
        self._conv.backward(g)

    def _layers(self):
        return (self._conv, self._fc1, self._fc2)

    def _normalize(self, traces, X_flat, fit=False):
        t = np.ascontiguousarray(traces, dtype=float)
        if fit:
            self._t_mean = t.mean(axis=0, keepdims=True)
            self._t_std = t.std(axis=0, keepdims=True)
            self._t_std[self._t_std == 0] = 1.0
        t = (t - self._t_mean) / self._t_std
        xf = None
        if X_flat is not None:
            xf = np.ascontiguousarray(X_flat, dtype=float)
            if fit:
                self._f_mean = xf.mean(axis=0)
                self._f_std = xf.std(axis=0)
                self._f_std[self._f_std == 0] = 1.0
            xf = (xf - self._f_mean) / self._f_std
        return t, xf

    def fit(self, X_flat, traces, y) -> "CNNRegressor":
        """Train on (flat features, traces, targets); traces required."""
        if traces is None:
            raise ValueError("CNNRegressor requires traces")
        y = np.ascontiguousarray(y, dtype=float).reshape(-1, 1)
        t, xf = self._normalize(traces, X_flat, fit=True)
        if t.shape[0] != y.shape[0]:
            raise ValueError("traces and y must have matching first dims")
        self._y_mean, self._y_std = float(y.mean()), float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_std
        self._build(t.shape[1], t.shape[2], xf.shape[1] if xf is not None else 0)
        p = self.params
        opt = Adam(lr=p.lr)
        n = t.shape[0]
        self.loss_history_ = []
        for _ in range(p.epochs):
            perm = self._rng.permutation(n)
            loss = 0.0
            for s in range(0, n, p.batch_size):
                idx = perm[s : s + p.batch_size]
                pred = self._forward(t[idx], None if xf is None else xf[idx])
                diff = pred - ys[idx]
                loss += float((diff**2).sum())
                self._backward(2.0 * diff / idx.shape[0])
                for layer in self._layers():
                    opt.step(layer.params_and_grads())
            self.loss_history_.append(loss / n)
        return self

    def predict(self, X_flat, traces) -> np.ndarray:
        if self._conv is None:
            raise RuntimeError("model is not fitted")
        t, xf = self._normalize(traces, X_flat, fit=False)
        out = self._forward(t, xf)
        return out.ravel() * self._y_std + self._y_mean


def tune_cnn(
    X_flat,
    traces,
    y,
    n_trials: int = 8,
    val_fraction: float = 0.25,
    rng=None,
) -> tuple[CNNRegressor, CNNHyperParams]:
    """Random-search hyper-parameter tuning (the paper uses TUNE [17]).

    Returns the best model (refit on everything) and its parameters.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    rng = as_rng(rng)
    y = np.asarray(y, dtype=float)
    n = y.shape[0]
    n_val = max(1, int(n * val_fraction))
    perm = rng.permutation(n)
    val, train = perm[:n_val], perm[n_val:]
    t = np.asarray(traces, dtype=float)
    xf = None if X_flat is None else np.asarray(X_flat, dtype=float)

    def subset(idx):
        return (None if xf is None else xf[idx]), t[idx], y[idx]

    best_err = np.inf
    best_params = None
    trial_rngs = spawn_rngs(rng, n_trials)
    max_k = min(t.shape[1], t.shape[2], 5)
    for t_rng in trial_rngs:
        k = int(t_rng.integers(2, max_k + 1))
        params = CNNHyperParams(
            n_filters=int(t_rng.choice([4, 8, 16])),
            kernel=(k, k),
            hidden=int(t_rng.choice([16, 32, 64])),
            epochs=int(t_rng.choice([30, 60])),
            batch_size=int(t_rng.choice([16, 32])),
            lr=float(t_rng.choice([3e-4, 1e-3, 3e-3])),
            dropout=0.0,
        )
        model = CNNRegressor(params, rng=t_rng)
        xtr, ttr, ytr = subset(train)
        model.fit(xtr, ttr, ytr)
        xv, tv, yv = subset(val)
        err = float(np.mean((model.predict(xv, tv) - yv) ** 2))
        if err < best_err:
            best_err, best_params = err, params
    final = CNNRegressor(best_params, rng=rng)
    final.fit(xf, t, y)
    return final, best_params
