"""Minimal discrete-event simulation kernel.

A binary-heap event loop with deterministic tie-breaking (insertion
order), used by the collocation testbed runtime.  The Stage 3 G/G/k
simulator uses a specialized loop for speed but shares the same clock
discipline.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventLoop:
    """Priority-queue event loop.

    Events are ``(time, seq, callback)``; callbacks may schedule further
    events.  ``seq`` guarantees FIFO order among simultaneous events,
    keeping runs deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0
        self._events_processed = 0

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self.now + delay, callback)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Process one event; returns False when the heap is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self.now = time
        self._events_processed += 1
        callback()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain events, optionally stopping at time ``until`` or after
        ``max_events`` callbacks."""
        n = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            if max_events is not None and n >= max_events:
                return
            self.step()
            n += 1
