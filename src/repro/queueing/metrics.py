"""Response-time statistics and model-error metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ResponseTimeSummary:
    """The statistics the paper reports: mean, median, p95 (and p99)."""

    mean: float
    p50: float
    p95: float
    p99: float
    n: int

    def speedup_over(self, other: "ResponseTimeSummary") -> dict[str, float]:
        """Per-statistic speedup of *this* summary relative to ``other``
        (values > 1 mean this one is faster).

        Response times are only required non-negative, so a zero-valued
        quantile is legal (e.g. p50 of a mostly-instant service); a
        statistic of 0 here means "this side is infinitely faster" and
        yields ``float("inf")`` instead of a ``ZeroDivisionError``.
        """
        return {
            "mean": self._ratio(other.mean, self.mean),
            "p50": self._ratio(other.p50, self.p50),
            "p95": self._ratio(other.p95, self.p95),
            "p99": self._ratio(other.p99, self.p99),
        }

    @staticmethod
    def _ratio(num: float, den: float) -> float:
        if den == 0.0:
            return float("inf")
        return num / den


def summarize_response_times(response_times) -> ResponseTimeSummary:
    """Summarize a vector of response times."""
    rt = np.asarray(response_times, dtype=float)
    if rt.size == 0:
        raise ValueError("response_times is empty")
    if np.any(rt < 0):
        raise ValueError("response times must be non-negative")
    # One percentile call sorts the array once for all three quantiles.
    p50, p95, p99 = np.percentile(rt, (50, 95, 99))
    return ResponseTimeSummary(
        mean=float(rt.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        n=int(rt.size),
    )


def absolute_percentage_error(predicted, actual) -> np.ndarray:
    """|predicted - actual| / actual, elementwise (the paper's accuracy metric)."""
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if pred.shape != act.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {act.shape}")
    if np.any(act <= 0):
        raise ValueError("actual values must be positive")
    return np.abs(pred - act) / act
