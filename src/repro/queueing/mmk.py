"""Closed-form M/M/k results (Erlang C) for validating the simulator.

The paper notes traditional closed-form models diverge under short-term
allocation (the timeout couples queueing delay and service rate); these
formulas are exact only when the timeout never fires, which is exactly
how the tests use them.
"""

from __future__ import annotations

import math


def erlang_c(n_servers: int, offered_load: float) -> float:
    """Probability an arriving query waits (M/M/k).

    ``offered_load`` is a = lambda / mu; requires a < n_servers.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    if not 0 <= offered_load < n_servers:
        raise ValueError(
            f"offered load {offered_load} must be in [0, n_servers={n_servers})"
        )
    if offered_load == 0:
        return 0.0
    a = offered_load
    k = n_servers
    rho = a / k
    top = a**k / (math.factorial(k) * (1 - rho))
    bottom = sum(a**i / math.factorial(i) for i in range(k)) + top
    return top / bottom


def mmk_mean_wait(arrival_rate: float, service_rate: float, n_servers: int) -> float:
    """Expected queueing delay E[W] for M/M/k."""
    a = arrival_rate / service_rate
    c = erlang_c(n_servers, a)
    return c / (n_servers * service_rate - arrival_rate)


def mmk_mean_response(
    arrival_rate: float, service_rate: float, n_servers: int
) -> float:
    """Expected response time E[T] = E[W] + 1/mu for M/M/k."""
    return mmk_mean_wait(arrival_rate, service_rate, n_servers) + 1.0 / service_rate


def ggk_mean_wait_approx(
    arrival_rate: float,
    service_rate: float,
    n_servers: int,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """Allen-Cunneen approximation of E[W] for G/G/k.

    Scales the exact M/M/k wait by the squared coefficients of
    variation of inter-arrival (``ca2``) and service (``cs2``) times:

        E[W] ~= E[W_{M/M/k}] * (ca2 + cs2) / 2

    Exact for M/M/k; a standard engineering approximation otherwise
    (and exactly the kind of closed form that breaks once short-term
    allocation couples the service rate to queueing delay).
    """
    if ca2 < 0 or cs2 < 0:
        raise ValueError("squared CVs must be >= 0")
    return mmk_mean_wait(arrival_rate, service_rate, n_servers) * (ca2 + cs2) / 2.0


def ggk_mean_response_approx(
    arrival_rate: float,
    service_rate: float,
    n_servers: int,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """Allen-Cunneen E[T] = E[W] + 1/mu for G/G/k."""
    return (
        ggk_mean_wait_approx(arrival_rate, service_rate, n_servers, ca2, cs2)
        + 1.0 / service_rate
    )
