"""Discrete-event queueing substrate.

Contains the Stage 3 first-principles simulator of Section 3.3: a G/G/k
queue whose service rate switches to a boosted rate when a query's time
in system exceeds the short-term allocation timeout.
"""

from repro.queueing.events import EventLoop
from repro.queueing.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    Hyperexponential,
    Empirical,
)
from repro.queueing.ggk import (
    BatchQueueResult,
    StapQueueConfig,
    QueueResult,
    simulate_stap_queue,
    simulate_stap_queue_batch,
)
from repro.queueing.mmk import (
    erlang_c,
    ggk_mean_response_approx,
    ggk_mean_wait_approx,
    mmk_mean_wait,
    mmk_mean_response,
)
from repro.queueing.metrics import (
    ResponseTimeSummary,
    summarize_response_times,
    absolute_percentage_error,
)

__all__ = [
    "EventLoop",
    "Deterministic",
    "Exponential",
    "LogNormal",
    "Hyperexponential",
    "Empirical",
    "BatchQueueResult",
    "StapQueueConfig",
    "QueueResult",
    "simulate_stap_queue",
    "simulate_stap_queue_batch",
    "erlang_c",
    "ggk_mean_response_approx",
    "ggk_mean_wait_approx",
    "mmk_mean_wait",
    "mmk_mean_response",
    "ResponseTimeSummary",
    "summarize_response_times",
    "absolute_percentage_error",
]
