"""Stage 3: G/G/k queue with short-term-allocation service-rate switching.

Implements the discrete event simulator of Section 3.3.  A query's
time in system is compared to the response-time warning (timeout x
expected service time); once exceeded, the *remaining* execution runs at
the boosted rate implied by the policy's effective cache allocation:

    boosted_rate = effective_allocation * (l_a' / l_a)

(inverting Eq. 3: EA times the gross allocation increase is the speedup).
Because the warning instant is known at dispatch, each query's completion
time has a closed form, so the simulator advances query-by-query rather
than by fixed steps — the "jumps multiple steps at a time" optimization
the paper describes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng
from repro._util.validation import check_positive


@dataclass(frozen=True)
class StapQueueConfig:
    """Configuration of one service's queue under a short-term policy.

    Parameters
    ----------
    n_servers:
        Parallel executors (paper: 2 cores per service).
    mean_service_time:
        Expected service time at the default allocation; the timeout and
        demands are expressed relative to it.
    timeout:
        Response-time warning relative to ``mean_service_time`` (Eq. 4).
        ``np.inf`` disables short-term allocation.
    boost_speedup:
        Processing-rate multiplier while boosted (EA x l_a'/l_a).  1.0
        means boosting does not help.
    """

    n_servers: int = 2
    mean_service_time: float = 1.0
    timeout: float = np.inf
    boost_speedup: float = 1.0

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {self.n_servers}")
        check_positive("mean_service_time", self.mean_service_time)
        if self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")
        if self.boost_speedup <= 0:
            raise ValueError(f"boost_speedup must be > 0, got {self.boost_speedup}")

    @property
    def warning_delay(self) -> float:
        """Absolute response-time warning delay."""
        return self.timeout * self.mean_service_time


@dataclass
class QueueResult:
    """Per-query outcomes of one simulated run."""

    arrival_times: np.ndarray
    start_times: np.ndarray
    completion_times: np.ndarray
    boosted: np.ndarray  # bool: did short-term allocation trigger?
    boosted_time: np.ndarray  # seconds each query spent boosted

    @property
    def response_times(self) -> np.ndarray:
        return self.completion_times - self.arrival_times

    @property
    def wait_times(self) -> np.ndarray:
        return self.start_times - self.arrival_times

    @property
    def boost_fraction(self) -> float:
        """Fraction of queries that triggered short-term allocation."""
        return float(self.boosted.mean()) if self.boosted.size else 0.0

    @property
    def boost_busy_time(self) -> float:
        """Total time spent executing under short-term allocation."""
        return float(self.boosted_time.sum())

    def drop_warmup(self, fraction: float) -> "QueueResult":
        """Discard the first ``fraction`` of queries (transient warmup)."""
        if not 0 <= fraction < 1:
            raise ValueError("fraction must be in [0, 1)")
        k = int(len(self.arrival_times) * fraction)
        return QueueResult(
            self.arrival_times[k:],
            self.start_times[k:],
            self.completion_times[k:],
            self.boosted[k:],
            self.boosted_time[k:],
        )


def _service_duration(
    start: float, warn_at: float, work: float, boost_speedup: float
) -> tuple[float, float]:
    """Closed-form service duration with a mid-execution rate switch.

    Work is measured in seconds-at-default-rate.  Returns ``(duration,
    boosted_time)``.
    """
    if boost_speedup == 1.0 or warn_at >= start + work:
        return work, 0.0
    if warn_at <= start:
        dur = work / boost_speedup
        return dur, dur
    done_before = warn_at - start
    remaining = work - done_before
    boosted = remaining / boost_speedup
    return done_before + boosted, boosted


def simulate_stap_queue(
    arrival_times,
    demands,
    config: StapQueueConfig,
) -> QueueResult:
    """FCFS G/G/k simulation under a short-term allocation policy.

    Parameters
    ----------
    arrival_times:
        Sorted absolute arrival timestamps.
    demands:
        Per-query work multipliers (mean 1); actual default-rate work is
        ``demand * mean_service_time``.
    config:
        Queue and policy configuration.
    """
    arrivals = np.ascontiguousarray(arrival_times, dtype=float)
    demand = np.ascontiguousarray(demands, dtype=float)
    if arrivals.shape != demand.shape or arrivals.ndim != 1:
        raise ValueError("arrival_times and demands must be matching 1-D arrays")
    # NaN/inf would sail through the sortedness check below (comparisons
    # with NaN are False) and silently corrupt start/completion times.
    if not np.all(np.isfinite(arrivals)):
        raise ValueError("arrival_times must be finite (no NaN/inf)")
    if not np.all(np.isfinite(demand)):
        raise ValueError("demands must be finite (no NaN/inf)")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival_times must be sorted")
    n = arrivals.shape[0]
    works = demand * config.mean_service_time
    warn_delay = config.warning_delay

    starts = np.empty(n)
    completions = np.empty(n)
    boosted = np.zeros(n, dtype=bool)
    boosted_time = np.zeros(n)

    # Min-heap of server free times: FCFS dispatch to the earliest-free server.
    free_at = [0.0] * config.n_servers
    heapq.heapify(free_at)
    for i in range(n):
        a = arrivals[i]
        earliest = heapq.heappop(free_at)
        t0 = a if earliest < a else earliest
        warn_at = a + warn_delay
        dur, btime = _service_duration(t0, warn_at, works[i], config.boost_speedup)
        t1 = t0 + dur
        starts[i] = t0
        completions[i] = t1
        boosted[i] = btime > 0.0
        boosted_time[i] = btime
        heapq.heappush(free_at, t1)

    return QueueResult(
        arrival_times=arrivals,
        start_times=starts,
        completion_times=completions,
        boosted=boosted,
        boosted_time=boosted_time,
    )
