"""Stage 3: G/G/k queue with short-term-allocation service-rate switching.

Implements the discrete event simulator of Section 3.3.  A query's
time in system is compared to the response-time warning (timeout x
expected service time); once exceeded, the *remaining* execution runs at
the boosted rate implied by the policy's effective cache allocation:

    boosted_rate = effective_allocation * (l_a' / l_a)

(inverting Eq. 3: EA times the gross allocation increase is the speedup).
Because the warning instant is known at dispatch, each query's completion
time has a closed form, so the simulator advances query-by-query rather
than by fixed steps — the "jumps multiple steps at a time" optimization
the paper describes.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro._util import as_rng
from repro._util.validation import check_positive


@dataclass(frozen=True)
class StapQueueConfig:
    """Configuration of one service's queue under a short-term policy.

    Parameters
    ----------
    n_servers:
        Parallel executors (paper: 2 cores per service).
    mean_service_time:
        Expected service time at the default allocation; the timeout and
        demands are expressed relative to it.
    timeout:
        Response-time warning relative to ``mean_service_time`` (Eq. 4).
        ``np.inf`` disables short-term allocation.
    boost_speedup:
        Processing-rate multiplier while boosted (EA x l_a'/l_a).  1.0
        means boosting does not help.
    """

    n_servers: int = 2
    mean_service_time: float = 1.0
    timeout: float = np.inf
    boost_speedup: float = 1.0

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {self.n_servers}")
        check_positive("mean_service_time", self.mean_service_time)
        if self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")
        if self.boost_speedup <= 0:
            raise ValueError(f"boost_speedup must be > 0, got {self.boost_speedup}")

    @property
    def warning_delay(self) -> float:
        """Absolute response-time warning delay."""
        return self.timeout * self.mean_service_time


@dataclass
class QueueResult:
    """Per-query outcomes of one simulated run."""

    arrival_times: np.ndarray
    start_times: np.ndarray
    completion_times: np.ndarray
    boosted: np.ndarray  # bool: did short-term allocation trigger?
    boosted_time: np.ndarray  # seconds each query spent boosted

    @property
    def response_times(self) -> np.ndarray:
        return self.completion_times - self.arrival_times

    @property
    def wait_times(self) -> np.ndarray:
        return self.start_times - self.arrival_times

    @property
    def boost_fraction(self) -> float:
        """Fraction of queries that triggered short-term allocation."""
        return float(self.boosted.mean()) if self.boosted.size else 0.0

    @property
    def boost_busy_time(self) -> float:
        """Total time spent executing under short-term allocation."""
        return float(self.boosted_time.sum())

    def drop_warmup(self, fraction: float) -> "QueueResult":
        """Discard the first ``fraction`` of queries (transient warmup)."""
        if not 0 <= fraction < 1:
            raise ValueError("fraction must be in [0, 1)")
        k = int(len(self.arrival_times) * fraction)
        return QueueResult(
            self.arrival_times[k:],
            self.start_times[k:],
            self.completion_times[k:],
            self.boosted[k:],
            self.boosted_time[k:],
        )


@dataclass
class BatchQueueResult:
    """Per-query outcomes of ``C`` simultaneously simulated conditions.

    Every array is ``(C, n)``; row ``c`` is bit-identical to the
    corresponding :class:`QueueResult` of a serial
    :func:`simulate_stap_queue` run under ``configs[c]``.
    """

    arrival_times: np.ndarray
    start_times: np.ndarray
    completion_times: np.ndarray
    boosted: np.ndarray  # bool: did short-term allocation trigger?
    boosted_time: np.ndarray  # seconds each query spent boosted

    @property
    def n_conditions(self) -> int:
        return self.arrival_times.shape[0]

    @property
    def response_times(self) -> np.ndarray:
        return self.completion_times - self.arrival_times

    @property
    def wait_times(self) -> np.ndarray:
        return self.start_times - self.arrival_times

    @property
    def boost_fractions(self) -> np.ndarray:
        """Per-condition fraction of queries that triggered boosting."""
        if self.boosted.shape[1] == 0:
            return np.zeros(self.n_conditions)
        return self.boosted.mean(axis=1)

    def condition(self, c: int) -> QueueResult:
        """The serial-equivalent :class:`QueueResult` of condition ``c``.

        Rows of the C-contiguous batch arrays are themselves contiguous,
        so downstream reductions (means, percentiles) see exactly the
        memory layout a serial run would have produced.
        """
        return QueueResult(
            arrival_times=self.arrival_times[c],
            start_times=self.start_times[c],
            completion_times=self.completion_times[c],
            boosted=self.boosted[c],
            boosted_time=self.boosted_time[c],
        )

    def drop_warmup(self, fraction: float) -> "BatchQueueResult":
        """Discard the first ``fraction`` of queries in every condition."""
        if not 0 <= fraction < 1:
            raise ValueError("fraction must be in [0, 1)")
        k = int(self.arrival_times.shape[1] * fraction)
        return BatchQueueResult(
            np.ascontiguousarray(self.arrival_times[:, k:]),
            np.ascontiguousarray(self.start_times[:, k:]),
            np.ascontiguousarray(self.completion_times[:, k:]),
            np.ascontiguousarray(self.boosted[:, k:]),
            np.ascontiguousarray(self.boosted_time[:, k:]),
        )


def _service_duration(
    start: float, warn_at: float, work: float, boost_speedup: float
) -> tuple[float, float]:
    """Closed-form service duration with a mid-execution rate switch.

    Work is measured in seconds-at-default-rate.  Returns ``(duration,
    boosted_time)``.
    """
    if boost_speedup == 1.0 or warn_at >= start + work:
        return work, 0.0
    if warn_at <= start:
        dur = work / boost_speedup
        return dur, dur
    done_before = warn_at - start
    remaining = work - done_before
    boosted = remaining / boost_speedup
    return done_before + boosted, boosted


def simulate_stap_queue(
    arrival_times,
    demands,
    config: StapQueueConfig,
    event_sink=None,
) -> QueueResult:
    """FCFS G/G/k simulation under a short-term allocation policy.

    Parameters
    ----------
    arrival_times:
        Sorted absolute arrival timestamps.
    demands:
        Per-query work multipliers (mean 1); actual default-rate work is
        ``demand * mean_service_time``.
    config:
        Queue and policy configuration.
    event_sink:
        Optional :class:`~repro.telemetry.QueueEventSink` fed the run's
        arrival / service-start / STAP-boost-trigger / departure events
        (derived from the finished result arrays — the simulation loop
        itself is untouched).  When omitted, the telemetry subsystem's
        active sink (``--trace-queue-events``) is used if one exists.
    """
    # Telemetry: one enabled-flag check; never touches RNG or results.
    _tel = telemetry.enabled()
    _t0 = time.perf_counter() if _tel else 0.0
    arrivals = np.ascontiguousarray(arrival_times, dtype=float)
    demand = np.ascontiguousarray(demands, dtype=float)
    if arrivals.shape != demand.shape or arrivals.ndim != 1:
        raise ValueError("arrival_times and demands must be matching 1-D arrays")
    # NaN/inf would sail through the sortedness check below (comparisons
    # with NaN are False) and silently corrupt start/completion times.
    if not np.all(np.isfinite(arrivals)):
        raise ValueError("arrival_times must be finite (no NaN/inf)")
    if not np.all(np.isfinite(demand)):
        raise ValueError("demands must be finite (no NaN/inf)")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival_times must be sorted")
    n = arrivals.shape[0]
    works = demand * config.mean_service_time
    warn_delay = config.warning_delay

    starts = np.empty(n)
    completions = np.empty(n)
    boosted = np.zeros(n, dtype=bool)
    boosted_time = np.zeros(n)

    # Min-heap of server free times: FCFS dispatch to the earliest-free server.
    free_at = [0.0] * config.n_servers
    heapq.heapify(free_at)
    for i in range(n):
        a = arrivals[i]
        earliest = heapq.heappop(free_at)
        t0 = a if earliest < a else earliest
        warn_at = a + warn_delay
        dur, btime = _service_duration(t0, warn_at, works[i], config.boost_speedup)
        t1 = t0 + dur
        starts[i] = t0
        completions[i] = t1
        boosted[i] = btime > 0.0
        boosted_time[i] = btime
        heapq.heappush(free_at, t1)

    result = QueueResult(
        arrival_times=arrivals,
        start_times=starts,
        completion_times=completions,
        boosted=boosted,
        boosted_time=boosted_time,
    )
    if _tel:
        telemetry.counter_inc("queue.runs")
        telemetry.counter_inc("queue.queries_simulated", n)
        telemetry.histogram_observe(
            "queue.simulate_seconds", time.perf_counter() - _t0
        )
        if event_sink is None:
            event_sink = telemetry.queue_sink()
    if event_sink is not None:
        event_sink.record_run(result, config)
    return result


# The per-query service step shared by the three loop specializations
# below (inlined in each: at C ~ 25 the loops are ufunc-dispatch-bound,
# so the call frame and module-global lookups of a helper would cost
# ~15% of the whole kernel).  Each iteration evaluates, elementwise over
# conditions, the serial kernel's closed-form duration:
#
#     thr  = t0 + work
#     done = max(warn - t0, 0)          # default-rate work pre-warning
#     done = work         where warn >= thr   # no-boost branch
#     rem  = (work - done) / boost      # boosted-rate remainder
#     t1   = t0 + (done + rem)
#
# The no-boost *selector* is the serial one verbatim — ``warn_at >=
# start + work`` on the identical floating-point intermediates — so
# branch selection, and therefore every output bit, matches a
# per-condition serial run even where rounding puts ``warn_at`` within
# one ulp of the branch boundary.  The boosted-from-the-start branch
# needs no mask: ``warn_at <= start`` implies ``fl(warn_at - start)
# <= 0`` exactly (IEEE subtraction preserves sign), so clamping ``done``
# at zero selects it bit-identically.  ``boost == 1`` conditions are
# handled upstream by forcing ``warn_at = inf``, which lands them in the
# no-boost branch exactly as the serial kernel's first conditional does.


def _batch_loop_k1(arr_t, works_t, warn_t, boost, starts_t, comp_t, btime_t):
    """Single-server inner loop: the earliest-free 'heap' is one scalar
    per condition — the previous completion row."""
    n_conditions = boost.shape[0]
    free = np.zeros(n_conditions)
    done = np.empty(n_conditions)
    thr = np.empty(n_conditions)
    m1 = np.empty(n_conditions, dtype=bool)
    zeros = np.zeros(n_conditions)
    add, sub, div = np.add, np.subtract, np.divide
    vmax, ge, put = np.maximum, np.greater_equal, np.putmask
    for a, work, warn, t0, t1, rem in zip(
        arr_t, works_t, warn_t, starts_t, comp_t, btime_t
    ):
        vmax(a, free, out=t0)
        add(t0, work, out=thr)
        sub(warn, t0, out=done)
        vmax(done, zeros, out=done)
        ge(warn, thr, out=m1)
        put(done, m1, work)
        sub(work, done, out=rem)
        div(rem, boost, out=rem)
        add(done, rem, out=done)
        add(t0, done, out=t1)
        free = t1


def _batch_loop_k2(arr_t, works_t, warn_t, boost, starts_t, comp_t, btime_t):
    """Two-server inner loop (the paper's per-service core count).

    Server free times are kept sorted (``f0 <= f1``) so dispatch is a
    read of ``f0`` and re-insertion is one ``minimum``/``maximum`` pair —
    no per-condition heap, no argmin.
    """
    n_conditions = boost.shape[0]
    f0 = np.zeros(n_conditions)
    f1 = np.zeros(n_conditions)
    done = np.empty(n_conditions)
    thr = np.empty(n_conditions)
    m1 = np.empty(n_conditions, dtype=bool)
    zeros = np.zeros(n_conditions)
    add, sub, div = np.add, np.subtract, np.divide
    vmax, vmin, ge, put = np.maximum, np.minimum, np.greater_equal, np.putmask
    for a, work, warn, t0, t1, rem in zip(
        arr_t, works_t, warn_t, starts_t, comp_t, btime_t
    ):
        vmax(a, f0, out=t0)
        add(t0, work, out=thr)
        sub(warn, t0, out=done)
        vmax(done, zeros, out=done)
        ge(warn, thr, out=m1)
        put(done, m1, work)
        sub(work, done, out=rem)
        div(rem, boost, out=rem)
        add(done, rem, out=done)
        add(t0, done, out=t1)
        vmin(f1, t1, out=f0)
        vmax(f1, t1, out=f1)


def _batch_loop_general(
    arr_t, works_t, warn_t, boost, starts_t, comp_t, btime_t, configs
):
    """General inner loop: (C, k_max) free-time matrix with argmin
    dispatch; conditions with fewer servers pad with never-free inf
    slots that cannot win the argmin."""
    n_conditions = boost.shape[0]
    k_max = max(c.n_servers for c in configs)
    free = np.zeros((n_conditions, k_max))
    for c, cfg in enumerate(configs):
        free[c, cfg.n_servers :] = np.inf
    rows = np.arange(n_conditions)
    done = np.empty(n_conditions)
    thr = np.empty(n_conditions)
    m1 = np.empty(n_conditions, dtype=bool)
    zeros = np.zeros(n_conditions)
    add, sub, div, argmin = np.add, np.subtract, np.divide, np.argmin
    vmax, ge, put = np.maximum, np.greater_equal, np.putmask
    for a, work, warn, t0, t1, rem in zip(
        arr_t, works_t, warn_t, starts_t, comp_t, btime_t
    ):
        j = argmin(free, axis=1)
        vmax(a, free[rows, j], out=t0)
        add(t0, work, out=thr)
        sub(warn, t0, out=done)
        vmax(done, zeros, out=done)
        ge(warn, thr, out=m1)
        put(done, m1, work)
        sub(work, done, out=rem)
        div(rem, boost, out=rem)
        add(done, rem, out=done)
        add(t0, done, out=t1)
        free[rows, j] = t1


def _as_condition_rows(name: str, values, n_conditions: int) -> np.ndarray:
    """Coerce ``(n,)`` broadcast or ``(C, n)`` per-condition input."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = np.broadcast_to(arr, (n_conditions,) + arr.shape)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 1-D or 2-D array, got ndim={arr.ndim}")
    if arr.shape[0] != n_conditions:
        raise ValueError(
            f"{name} has {arr.shape[0]} condition rows, expected {n_conditions}"
        )
    return np.ascontiguousarray(arr)


def simulate_stap_queue_batch(
    arrival_times,
    demands,
    configs,
    event_sink=None,
) -> BatchQueueResult:
    """FCFS G/G/k simulation of ``C`` conditions simultaneously.

    One Python loop over the ``n`` queries with all per-condition state
    held in ``(C,)`` and ``(C, k)`` arrays: each iteration dispatches one
    query *per condition* to that condition's earliest-free server
    (``np.argmin`` along the server axis replaces the serial path's
    per-condition heap).  The arithmetic — ``max(a, min(free))``
    dispatch and the closed-form mid-execution rate switch — is the
    serial kernel's, applied elementwise, so every condition row is
    **bit-identical** (``np.array_equal``) to a serial
    :func:`simulate_stap_queue` run under the same config.

    Parameters
    ----------
    arrival_times:
        Sorted absolute arrival timestamps: ``(n,)`` to broadcast one
        arrival process across all conditions, or ``(C, n)`` with one
        row per condition (each row sorted).
    demands:
        Per-query work multipliers, ``(n,)`` broadcast or ``(C, n)``.
    configs:
        One :class:`StapQueueConfig` per condition.  Server counts may
        differ between conditions; the state matrix is padded to the
        largest ``n_servers`` with never-free (``inf``) slots.
    event_sink:
        Optional :class:`~repro.telemetry.QueueEventSink`; every
        condition row is recorded as its own run (events derived from
        the finished result arrays, the kernel loop is untouched).
        Defaults to the telemetry subsystem's active sink, if any.
    """
    # Telemetry: one enabled-flag check; never touches RNG or results.
    _tel = telemetry.enabled()
    _t0 = time.perf_counter() if _tel else 0.0
    configs = list(configs)
    n_conditions = len(configs)
    if n_conditions == 0:
        raise ValueError("configs must not be empty")
    for cfg in configs:
        if not isinstance(cfg, StapQueueConfig):
            raise TypeError(f"configs must be StapQueueConfig, got {type(cfg)!r}")
    arrivals = _as_condition_rows("arrival_times", arrival_times, n_conditions)
    demand = _as_condition_rows("demands", demands, n_conditions)
    if arrivals.shape != demand.shape:
        raise ValueError(
            "arrival_times and demands must have matching shapes, got "
            f"{arrivals.shape} vs {demand.shape}"
        )
    if not np.all(np.isfinite(arrivals)):
        raise ValueError("arrival_times must be finite (no NaN/inf)")
    if not np.all(np.isfinite(demand)):
        raise ValueError("demands must be finite (no NaN/inf)")
    if arrivals.shape[1] and np.any(np.diff(arrivals, axis=1) < 0):
        raise ValueError("arrival_times must be sorted within each condition")
    n = arrivals.shape[1]

    mean_service = np.array([c.mean_service_time for c in configs])
    warn_delay = np.array([c.warning_delay for c in configs])
    boost = np.array([c.boost_speedup for c in configs])
    # boost == 1 conditions never switch rates: the serial kernel's first
    # conditional returns (work, 0) whatever the warning instant, so an
    # infinite warning delay is bit-identical for them.
    warn_delay = np.where(boost == 1.0, np.inf, warn_delay)

    # Query-major (n, C) layout: the per-query inner loop then works on
    # contiguous rows, and each output row is written in place by the
    # ufunc chain (out=) with no per-query temporaries.
    arr_t = np.ascontiguousarray(arrivals.T)
    works_t = demand.T * mean_service
    warn_t = arr_t + warn_delay
    starts_t = np.empty((n, n_conditions))
    comp_t = np.empty((n, n_conditions))
    btime_t = np.empty((n, n_conditions))

    server_counts = {cfg.n_servers for cfg in configs}
    uniform_k = server_counts.pop() if len(server_counts) == 1 else None
    if n:
        loop_args = (arr_t, works_t, warn_t, boost, starts_t, comp_t, btime_t)
        if uniform_k == 1:
            _batch_loop_k1(*loop_args)
        elif uniform_k == 2:
            _batch_loop_k2(*loop_args)
        else:
            _batch_loop_general(*loop_args, configs)

    boosted_time = np.ascontiguousarray(btime_t.T)
    result = BatchQueueResult(
        arrival_times=arrivals,
        start_times=np.ascontiguousarray(starts_t.T),
        completion_times=np.ascontiguousarray(comp_t.T),
        boosted=boosted_time > 0.0,
        boosted_time=boosted_time,
    )
    if _tel:
        telemetry.counter_inc("queue.batch_runs")
        telemetry.counter_inc("queue.batch_conditions", n_conditions)
        telemetry.counter_inc("queue.queries_simulated", n * n_conditions)
        telemetry.histogram_observe(
            "queue.simulate_batch_seconds", time.perf_counter() - _t0
        )
        if event_sink is None:
            event_sink = telemetry.queue_sink()
    if event_sink is not None:
        event_sink.record_batch(result, configs)
    return result
