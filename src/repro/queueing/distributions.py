"""Service/inter-arrival time distributions for the G/G/k simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro._util.validation import check_positive


@dataclass(frozen=True)
class Deterministic:
    """Constant value."""

    value: float

    def __post_init__(self) -> None:
        check_positive("value", self.value)

    def mean(self) -> float:
        return self.value

    def cv(self) -> float:
        return 0.0

    def sample(self, n: int, rng=None) -> np.ndarray:
        return np.full(n, self.value)


@dataclass(frozen=True)
class Exponential:
    """Exponential with the given mean (M in Kendall notation)."""

    mean_value: float

    def __post_init__(self) -> None:
        check_positive("mean_value", self.mean_value)

    def mean(self) -> float:
        return self.mean_value

    def cv(self) -> float:
        return 1.0

    def sample(self, n: int, rng=None) -> np.ndarray:
        return as_rng(rng).exponential(self.mean_value, size=n)


@dataclass(frozen=True)
class LogNormal:
    """Lognormal parameterized by mean and coefficient of variation."""

    mean_value: float
    cv_value: float

    def __post_init__(self) -> None:
        check_positive("mean_value", self.mean_value)
        if self.cv_value <= 0:
            raise ValueError(f"cv_value must be > 0, got {self.cv_value}")

    def mean(self) -> float:
        return self.mean_value

    def cv(self) -> float:
        return self.cv_value

    def sample(self, n: int, rng=None) -> np.ndarray:
        sigma2 = np.log1p(self.cv_value**2)
        mu = np.log(self.mean_value) - 0.5 * sigma2
        return as_rng(rng).lognormal(mu, np.sqrt(sigma2), size=n)


@dataclass(frozen=True)
class Hyperexponential:
    """Two-phase hyperexponential (bursty services, CV > 1).

    With probability ``p`` a sample is drawn from an exponential of mean
    ``mean_short``, else from one of mean ``mean_long``.
    """

    p: float
    mean_short: float
    mean_long: float

    def __post_init__(self) -> None:
        if not 0 < self.p < 1:
            raise ValueError(f"p must be in (0, 1), got {self.p}")
        check_positive("mean_short", self.mean_short)
        check_positive("mean_long", self.mean_long)

    def mean(self) -> float:
        return self.p * self.mean_short + (1 - self.p) * self.mean_long

    def cv(self) -> float:
        m = self.mean()
        second = 2 * (
            self.p * self.mean_short**2 + (1 - self.p) * self.mean_long**2
        )
        return float(np.sqrt(second - m**2) / m)

    def sample(self, n: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        short = rng.random(n) < self.p
        out = np.where(
            short,
            rng.exponential(self.mean_short, size=n),
            rng.exponential(self.mean_long, size=n),
        )
        return out


@dataclass(frozen=True)
class Empirical:
    """Resample from observed values (e.g. Social DAG latencies)."""

    values: tuple

    def __post_init__(self) -> None:
        if len(self.values) == 0:
            raise ValueError("values must be non-empty")
        if any(v <= 0 for v in self.values):
            raise ValueError("values must be positive")

    @classmethod
    def from_array(cls, arr) -> "Empirical":
        return cls(tuple(float(x) for x in np.asarray(arr).ravel()))

    def mean(self) -> float:
        return float(np.mean(self.values))

    def cv(self) -> float:
        v = np.asarray(self.values)
        return float(v.std() / v.mean())

    def sample(self, n: int, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        idx = rng.integers(0, len(self.values), size=n)
        return np.asarray(self.values)[idx]
