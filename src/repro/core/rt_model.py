"""Stage 3: effective cache allocation -> response time via queueing.

Wraps the G/G/k STAP simulator: given a service's runtime condition and
its (predicted) effective allocation, simulate the queue and report the
response-time distribution plus the dynamic-condition feedback (wait
times, boost fraction) that Stage 2 consumes in the fixed-point loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.queueing.ggk import (
    StapQueueConfig,
    simulate_stap_queue,
    simulate_stap_queue_batch,
)
from repro.queueing.metrics import ResponseTimeSummary, summarize_response_times

#: Below this many conditions a batched kernel call is slower than the
#: serial per-condition loop (the batch inner loop is ufunc-dispatch
#: bound, costing roughly the same per query whether it carries 2
#: conditions or 50), so :meth:`ResponseTimeModel.simulate_many`
#: auto-dispatches to the serial path.  Results are bit-identical either
#: way; the threshold is purely a performance crossover.
MIN_BATCH_CONDITIONS = 8


@dataclass(frozen=True)
class QueueFeedback:
    """Dynamic-condition outputs of one simulated queue."""

    summary: ResponseTimeSummary
    mean_wait: float
    p95_wait: float
    boost_fraction: float


class ResponseTimeModel:
    """First-principles response-time predictor (normalized units)."""

    def __init__(
        self,
        n_servers: int = 2,
        n_queries: int = 4000,
        warmup_fraction: float = 0.1,
        rng=None,
    ):
        if n_servers < 1 or n_queries < 10:
            raise ValueError("need n_servers >= 1 and n_queries >= 10")
        self.n_servers = n_servers
        self.n_queries = n_queries
        self.warmup_fraction = warmup_fraction
        self._rng = as_rng(rng)
        self._seed = int(self._rng.integers(0, 2**31))
        self._base_samples: tuple[np.ndarray, np.ndarray] | None = None

    def _base(self) -> tuple[np.ndarray, np.ndarray]:
        """The shared unit-scale random draws behind every simulation.

        Because the predictor is seeded once, every condition reuses the
        same standard-exponential inter-arrival gaps and standard-normal
        demand variates; :meth:`simulate` only rescales them.  Policy
        exploration therefore shares one arrival/demand sample across
        all timeout combinations instead of regenerating it per combo,
        and the rescaling is bit-identical to drawing
        ``rng.exponential(1/rate)`` / ``rng.lognormal(...)`` afresh.
        """
        if self._base_samples is None:
            rng = np.random.default_rng(self._seed)
            self._base_samples = (
                rng.standard_exponential(self.n_queries),
                rng.standard_normal(self.n_queries),
            )
        return self._base_samples

    def simulate(
        self,
        utilization: float,
        timeout: float,
        gross_increase: float,
        effective_allocation: float,
        service_cv: float = 0.35,
        mean_service_time: float = 1.0,
    ) -> QueueFeedback:
        """One G/G/k run under the given condition and EA.

        The boosted processing rate inverts Eq. 3: EA times the gross
        allocation increase.  ``mean_service_time`` is the expected
        service time at the *default* allocation on the normalized
        clock — below 1.0 when the private reservation exceeds the
        workload's baseline capacity.
        """
        if not 0 < utilization < 1:
            raise ValueError("utilization must be in (0, 1)")
        if effective_allocation <= 0:
            raise ValueError("effective_allocation must be > 0")
        if mean_service_time <= 0:
            raise ValueError("mean_service_time must be > 0")
        # Fixed seed: the predictor must be deterministic for a condition.
        # The unit-scale draws are cached (see _base) and rescaled here.
        gaps, normals = self._base()
        rate = utilization * self.n_servers / mean_service_time
        arrivals = np.cumsum((1.0 / rate) * gaps)
        if service_cv > 0:
            sigma2 = np.log1p(service_cv**2)
            demands = np.exp(-0.5 * sigma2 + np.sqrt(sigma2) * normals)
        else:
            demands = np.ones(self.n_queries)
        boost_speedup = max(effective_allocation * gross_increase, 0.1)
        cfg = StapQueueConfig(
            n_servers=self.n_servers,
            mean_service_time=mean_service_time,
            # Eq. 4 defines the warning relative to the *baseline*
            # service time (1.0 on the normalized clock); rescale so
            # warning_delay = timeout x 1.0 regardless of the default
            # allocation's service time.
            timeout=timeout / mean_service_time,
            boost_speedup=boost_speedup,
        )
        res = simulate_stap_queue(arrivals, demands, cfg).drop_warmup(
            self.warmup_fraction
        )
        waits = res.wait_times
        return QueueFeedback(
            summary=summarize_response_times(res.response_times),
            mean_wait=float(waits.mean()),
            p95_wait=float(np.percentile(waits, 95)),
            boost_fraction=res.boost_fraction,
        )

    def simulate_many(
        self,
        conditions,
        use_batch: bool | None = None,
    ) -> list[QueueFeedback]:
        """Simulate ``C`` conditions against the one shared sample.

        Each entry of ``conditions`` is a mapping of :meth:`simulate`
        keyword arguments (``utilization``, ``timeout``,
        ``gross_increase``, ``effective_allocation`` and optionally
        ``service_cv``, ``mean_service_time``).  All conditions reuse
        the cached unit-scale draws, rescaled per condition exactly as
        :meth:`simulate` does, so every returned
        :class:`QueueFeedback` is bit-identical to a serial
        :meth:`simulate` call with the same arguments.

        ``use_batch=None`` picks the faster path automatically: the
        batched kernel (one Python loop over queries for all conditions
        at once) from :data:`MIN_BATCH_CONDITIONS` conditions up, the
        serial per-condition loop below that.  Forcing either value
        changes wall-clock only, never results.
        """
        conds = [dict(c) for c in conditions]
        if not conds:
            return []
        if use_batch is None:
            use_batch = len(conds) >= MIN_BATCH_CONDITIONS
        if not use_batch:
            return [self.simulate(**c) for c in conds]

        gaps, normals = self._base()
        n_conditions = len(conds)
        arrivals = np.empty((n_conditions, self.n_queries))
        demands = np.empty((n_conditions, self.n_queries))
        configs = []
        for c, cond in enumerate(conds):
            utilization = cond["utilization"]
            effective_allocation = cond["effective_allocation"]
            service_cv = cond.get("service_cv", 0.35)
            mean_service_time = cond.get("mean_service_time", 1.0)
            if not 0 < utilization < 1:
                raise ValueError("utilization must be in (0, 1)")
            if effective_allocation <= 0:
                raise ValueError("effective_allocation must be > 0")
            if mean_service_time <= 0:
                raise ValueError("mean_service_time must be > 0")
            # Per-condition 1-D rescale: the identical floating-point
            # operations, in the identical order, as simulate().
            rate = utilization * self.n_servers / mean_service_time
            arrivals[c] = np.cumsum((1.0 / rate) * gaps)
            if service_cv > 0:
                sigma2 = np.log1p(service_cv**2)
                demands[c] = np.exp(-0.5 * sigma2 + np.sqrt(sigma2) * normals)
            else:
                demands[c] = 1.0
            boost_speedup = max(
                effective_allocation * cond["gross_increase"], 0.1
            )
            configs.append(
                StapQueueConfig(
                    n_servers=self.n_servers,
                    mean_service_time=mean_service_time,
                    timeout=cond["timeout"] / mean_service_time,
                    boost_speedup=boost_speedup,
                )
            )
        res = simulate_stap_queue_batch(arrivals, demands, configs).drop_warmup(
            self.warmup_fraction
        )
        rts = res.response_times
        waits = res.wait_times
        out = []
        for c in range(n_conditions):
            w = waits[c]
            out.append(
                QueueFeedback(
                    summary=summarize_response_times(rts[c]),
                    mean_wait=float(w.mean()),
                    p95_wait=float(np.percentile(w, 95)),
                    boost_fraction=float(res.boosted[c].mean())
                    if res.boosted.shape[1]
                    else 0.0,
                )
            )
        return out

    def predict_response_time(
        self,
        utilization: float,
        timeout: float,
        gross_increase: float,
        effective_allocation: float,
        service_cv: float = 0.35,
        mean_service_time: float = 1.0,
    ) -> ResponseTimeSummary:
        """Convenience wrapper returning only the summary."""
        return self.simulate(
            utilization,
            timeout,
            gross_increase,
            effective_allocation,
            service_cv,
            mean_service_time=mean_service_time,
        ).summary
