"""Stage 2: learn effective cache allocation from profile data.

The learner is pluggable so the Figure 6 comparison can swap the deep
forest for simpler models while keeping the rest of the pipeline fixed.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.baselines.cnn import CNNHyperParams, CNNRegressor
from repro.baselines.dtree import DecisionTreeBaseline
from repro.baselines.linreg import RidgeRegression
from repro.core.profile_vec import ProfileDataset
from repro.forest.deep_forest import DeepForestRegressor
from repro.forest.ensemble import RandomForestRegressor

LEARNERS = (
    "deep_forest",  # full: MGS + cascade (the paper's model)
    "cascade",      # cascade without MGS ("queueing + concepts" variant)
    "random_forest",  # simple ML (Figure 8e)
    "tree",
    "linear",
    "cnn",
)


class EAModel:
    """Effective-cache-allocation predictor over profile rows.

    Parameters
    ----------
    learner:
        One of :data:`LEARNERS`.
    df_params:
        Keyword overrides for :class:`DeepForestRegressor` (windows,
        estimators, levels, ``n_jobs``, ``strategy``...).  The forest
        keys (``n_estimators``, ``min_samples_leaf``, ``max_depth``,
        ``n_jobs``, ``strategy``, ``n_bins``) also reach the
        ``random_forest`` learner; the remaining learners ignore them.
    """

    #: df_params keys forwarded to the plain random-forest learner.
    _RF_KEYS = (
        "n_estimators",
        "min_samples_leaf",
        "max_depth",
        "n_jobs",
        "strategy",
        "n_bins",
    )

    def __init__(self, learner: str = "deep_forest", rng=None, **df_params):
        if learner not in LEARNERS:
            raise ValueError(f"unknown learner {learner!r}; choose from {LEARNERS}")
        self.learner = learner
        self._rng = as_rng(rng)
        self._df_params = df_params
        self._model = None

    @staticmethod
    def _flatten(X_flat: np.ndarray, traces: np.ndarray | None) -> np.ndarray:
        if traces is None:
            return X_flat
        t = traces.reshape(traces.shape[0], -1)
        return np.concatenate([X_flat, t], axis=1)

    def fit(self, dataset: ProfileDataset) -> "EAModel":
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        X_flat = dataset.X_flat
        traces = dataset.traces
        y = dataset.y_ea
        if self.learner == "deep_forest":
            params = dict(
                windows=[(5, 5), (10, 10)],
                mgs_estimators=15,
                n_levels=2,
                forests_per_level=4,
                n_estimators=30,
                k_folds=3,
            )
            params.update(self._df_params)
            self._model = DeepForestRegressor(rng=self._rng, **params)
            self._model.fit(X_flat, traces, y)
        elif self.learner == "cascade":
            params = dict(
                windows=None,
                n_levels=2,
                forests_per_level=4,
                n_estimators=30,
                k_folds=3,
            )
            params.update(self._df_params)
            self._model = DeepForestRegressor(rng=self._rng, **params)
            self._model.fit(X_flat, None, y)
        elif self.learner == "random_forest":
            params = dict(n_estimators=40, min_samples_leaf=2)
            params.update(
                {k: v for k, v in self._df_params.items() if k in self._RF_KEYS}
            )
            self._model = RandomForestRegressor(rng=self._rng, **params)
            self._model.fit(self._flatten(X_flat, traces), y)
        elif self.learner == "tree":
            self._model = DecisionTreeBaseline(rng=self._rng)
            self._model.fit(self._flatten(X_flat, traces), y)
        elif self.learner == "linear":
            self._model = RidgeRegression(alpha=1.0)
            self._model.fit(self._flatten(X_flat, traces), y)
        elif self.learner == "cnn":
            self._model = CNNRegressor(
                CNNHyperParams(n_filters=8, kernel=(3, 3), hidden=32, epochs=40),
                rng=self._rng,
            )
            self._model.fit(X_flat, traces, y)
        return self

    def predict(self, X_flat: np.ndarray, traces: np.ndarray | None) -> np.ndarray:
        """Predicted EA, clipped to the physically meaningful range."""
        if self._model is None:
            raise RuntimeError("EAModel is not fitted")
        if self.learner in ("deep_forest",):
            raw = self._model.predict(X_flat, traces)
        elif self.learner == "cascade":
            raw = self._model.predict(X_flat, None)
        elif self.learner == "cnn":
            raw = self._model.predict(X_flat, traces)
        else:
            raw = self._model.predict(self._flatten(X_flat, traces))
        return np.clip(raw, 0.05, 2.0)

    def predict_dataset(self, dataset: ProfileDataset) -> np.ndarray:
        return self.predict(dataset.X_flat, dataset.traces)

    def concept_features(
        self, X_flat: np.ndarray, traces: np.ndarray | None
    ) -> np.ndarray:
        """Learned cascade concepts (deep_forest / cascade learners only)."""
        if self.learner not in ("deep_forest", "cascade"):
            raise ValueError(f"{self.learner!r} has no concept features")
        if self._model is None:
            raise RuntimeError("EAModel is not fitted")
        t = traces if self.learner == "deep_forest" else None
        return self._model.concept_features(X_flat, t)
