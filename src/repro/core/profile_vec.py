"""Profile vectors (Equation 2) and the profiling dataset container.

Each profile row describes one (runtime condition, window, target
service): static condition features, dynamic (measured or simulated)
features, the collocated counter trace, and the measured effective
cache allocation plus ground-truth response-time statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.base import MB, WorkloadSpec

#: Static runtime-condition features, per service (own block then
#: partner block; partner block zeroed when running solo).
_PER_SERVICE_STATIC = (
    "timeout",
    "utilization",
    "gross_increase",
    "mrc_m0",
    "mrc_m_inf",
    "mrc_footprint_mb",
    "memory_boundedness",
    "service_cv",
    "access_intensity_m",
    "n_processes",
)
STATIC_FEATURE_NAMES: tuple[str, ...] = tuple(
    f"own_{n}" for n in _PER_SERVICE_STATIC
) + tuple(f"partner_{n}" for n in _PER_SERVICE_STATIC)

#: Dynamic runtime conditions.  Deliberately *not* wait/response-time
#: derived — queue length and boost occupancy describe system state
#: without leaking the prediction target to direct-regression baselines.
#: ``concurrent_boost_fraction`` is the time fraction both sharers hold
#: their short-term allocation simultaneously — the direct driver of
#: shared-way contention.
DYNAMIC_FEATURE_NAMES: tuple[str, ...] = (
    "mean_queue_length",
    "own_boost_fraction",
    "partner_boost_fraction",
    "concurrent_boost_fraction",
)

_TIMEOUT_CAP = 10.0  # finite encoding for "never boost" (inf timeouts)


def _spec_static(spec: WorkloadSpec, timeout: float, util: float, gross: float):
    return [
        min(float(timeout), _TIMEOUT_CAP),
        float(util),
        float(gross),
        spec.mrc.m0,
        spec.mrc.m_inf,
        spec.mrc.footprint_bytes / MB,
        spec.memory_boundedness,
        spec.service_cv,
        spec.access_intensity / 1e6,
        float(spec.n_processes),
    ]


def static_features(
    own: WorkloadSpec,
    own_timeout: float,
    own_util: float,
    own_gross: float,
    partner: WorkloadSpec | None = None,
    partner_timeout: float = np.inf,
    partner_util: float = 0.0,
    partner_gross: float = 1.0,
) -> np.ndarray:
    """Assemble the 20-dim static condition vector for one target service."""
    own_block = _spec_static(own, own_timeout, own_util, own_gross)
    if partner is None:
        partner_block = [0.0] * len(_PER_SERVICE_STATIC)
    else:
        partner_block = _spec_static(partner, partner_timeout, partner_util, partner_gross)
    return np.asarray(own_block + partner_block, dtype=float)


def dynamic_features(
    mean_queue_length: float,
    own_boost_fraction: float,
    partner_boost_fraction: float,
    concurrent_boost_fraction: float = 0.0,
) -> np.ndarray:
    """Assemble the dynamic-condition vector (queueing feedback)."""
    return np.asarray(
        [
            mean_queue_length,
            own_boost_fraction,
            partner_boost_fraction,
            concurrent_boost_fraction,
        ],
        dtype=float,
    )


@dataclass(frozen=True)
class RuntimeCondition:
    """One Stage 1 experiment setting (a Table 2 point).

    ``workloads`` are the collocated pair's names (target service
    first is not implied — rows are emitted per service).
    """

    workloads: tuple[str, ...]
    utilizations: tuple[float, ...]
    timeouts: tuple[float, ...]
    sampling_hz: float = 1.0

    def __post_init__(self) -> None:
        k = len(self.workloads)
        if k < 1:
            raise ValueError("need at least one workload")
        if len(self.utilizations) != k or len(self.timeouts) != k:
            raise ValueError("utilizations/timeouts must match workloads")
        if any(not 0 < u < 1 for u in self.utilizations):
            raise ValueError("utilizations must be in (0, 1)")
        if any(t < 0 for t in self.timeouts):
            raise ValueError("timeouts must be >= 0")
        if self.sampling_hz <= 0:
            raise ValueError("sampling_hz must be > 0")


@dataclass
class ProfileRow:
    """One training/testing sample for the EA model."""

    condition: RuntimeCondition
    service_idx: int  # which collocated service this row targets
    window_idx: int
    x_static: np.ndarray
    x_dynamic: np.ndarray
    trace: np.ndarray  # (n_counter_rows, n_ticks)
    ea: float  # measured effective allocation (target)
    rt_mean: float  # ground-truth mean response time (normalized)
    rt_p95: float

    @property
    def service_name(self) -> str:
        return self.condition.workloads[self.service_idx]


@dataclass
class ProfileDataset:
    """Column-oriented view over profile rows, ready for model training."""

    rows: list[ProfileRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def extend(self, rows) -> None:
        self.rows.extend(rows)

    @property
    def X_flat(self) -> np.ndarray:
        """(n, d_static + d_dynamic) condition features."""
        return np.stack(
            [np.concatenate([r.x_static, r.x_dynamic]) for r in self.rows]
        )

    @property
    def traces(self) -> np.ndarray:
        """(n, H, W) counter traces."""
        return np.stack([r.trace for r in self.rows])

    @property
    def y_ea(self) -> np.ndarray:
        return np.asarray([r.ea for r in self.rows], dtype=float)

    @property
    def y_rt_mean(self) -> np.ndarray:
        return np.asarray([r.rt_mean for r in self.rows], dtype=float)

    @property
    def y_rt_p95(self) -> np.ndarray:
        return np.asarray([r.rt_p95 for r in self.rows], dtype=float)

    def subset(self, indices) -> "ProfileDataset":
        return ProfileDataset(rows=[self.rows[i] for i in np.asarray(indices)])

    def split(self, train_fraction: float, rng=None) -> tuple:
        """Random (train, test) split by rows."""
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(rng) if not hasattr(rng, "permutation") else rng
        perm = rng.permutation(len(self.rows))
        k = int(len(self.rows) * train_fraction)
        return self.subset(perm[:k]), self.subset(perm[k:])

    def split_by_condition(self, predicate) -> tuple:
        """(matching, rest) split by a condition predicate — used for the
        leave-collocation-out generalization test (Figure 7a)."""
        yes = [i for i, r in enumerate(self.rows) if predicate(r.condition)]
        no = [i for i, r in enumerate(self.rows) if not predicate(r.condition)]
        return self.subset(yes), self.subset(no)

    def conditions(self) -> list[RuntimeCondition]:
        """Distinct conditions, in first-appearance order."""
        seen: dict[int, RuntimeCondition] = {}
        for r in self.rows:
            seen.setdefault(id(r.condition), r.condition)
        return list(seen.values())

    def split_conditions(self, train_fraction: float, rng=None) -> tuple:
        """Random (train, test) split at *condition* granularity.

        Windows of one run never straddle the split, matching the
        paper's protocol ("testing data was not used during training to
        ensure models accurately extrapolated to new, unseen
        conditions").
        """
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(rng) if not hasattr(rng, "permutation") else rng
        conds = self.conditions()
        perm = rng.permutation(len(conds))
        k = max(1, int(len(conds) * train_fraction))
        train_ids = {id(conds[i]) for i in perm[:k]}
        tr = [i for i, r in enumerate(self.rows) if id(r.condition) in train_ids]
        te = [i for i, r in enumerate(self.rows) if id(r.condition) not in train_ids]
        return self.subset(tr), self.subset(te)

    def condition_groups(self) -> dict:
        """Row indices grouped by (condition, target service).

        Returns ``{(condition_id, service_idx): [row indices]}`` —
        condition-level aggregation keys for evaluation.
        """
        groups: dict = {}
        for i, r in enumerate(self.rows):
            groups.setdefault((id(r.condition), r.service_idx), []).append(i)
        return groups
