"""Stage 1: profile collocated workloads under sampled runtime conditions.

Each condition is executed on the testbed runtime; the run is split
into windows, and every (service, window) yields one profile row with
static/dynamic features, the collocated counter trace and measured
effective cache allocation.  Conditions are independent, so profiling
parallelizes across a process pool.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro._util import as_rng, spawn_rngs
from repro.counters.sampler import CounterSampler, _segment_means
from repro.counters.trace import CacheUsageTrace
from repro.core.profile_vec import (
    ProfileDataset,
    ProfileRow,
    RuntimeCondition,
    dynamic_features,
    static_features,
)
from repro.testbed.collocation import CollocatedService, CollocationConfig
from repro.testbed.machine import XeonSpec, default_machine
from repro.testbed.runtime import CollocationRuntime
from repro.workloads.suite import get_workload


@dataclass(frozen=True)
class ProfilerSettings:
    """Knobs of one profiling campaign."""

    n_queries: int = 800
    n_windows: int = 4
    trace_ticks: int = 20
    counter_noise: float = 0.05
    private_mb: float = 2.0
    shared_mb: float = 2.0
    warmup_fraction: float = 0.1


def _boost_overlap(
    own_segments, partner_segments, t0: float, t1: float
) -> float:
    """Fraction of [t0, t1) during which *both* services are boosted.

    Segments are piecewise-constant state snapshots; the sweep walks
    the merged boundary list, so the measurement is exact.
    """
    if t1 <= t0:
        raise ValueError("need t1 > t0")

    def boosted_at(segments, times, t):
        idx = int(np.searchsorted(times, t, side="right")) - 1
        return bool(segments[max(idx, 0)][4])

    own_times = [s[0] for s in own_segments]
    partner_times = [s[0] for s in partner_segments]
    bounds = sorted(
        {t0, t1}
        | {t for t in own_times if t0 < t < t1}
        | {t for t in partner_times if t0 < t < t1}
    )
    overlap = 0.0
    for a, b in zip(bounds[:-1], bounds[1:]):
        if boosted_at(own_segments, own_times, a) and boosted_at(
            partner_segments, partner_times, a
        ):
            overlap += b - a
    return overlap / (t1 - t0)


def _profile_one_condition(args):
    """Worker: run one condition and emit its profile rows."""
    condition, settings, machine, seed = args
    specs = [get_workload(n) for n in condition.workloads]
    cfg = CollocationConfig(
        machine=machine,
        services=[
            CollocatedService(spec, timeout=t, utilization=u)
            for spec, t, u in zip(specs, condition.timeouts, condition.utilizations)
        ],
        private_mb=settings.private_mb,
        shared_mb=settings.shared_mb,
    )
    runtime = CollocationRuntime(cfg, rng=seed)
    run = runtime.run(
        n_queries=settings.n_queries, warmup_fraction=settings.warmup_fraction
    )
    sampler = CounterSampler(
        sampling_hz=condition.sampling_hz, noise=settings.counter_noise
    )
    rng = np.random.default_rng(seed + 1)
    rows = []
    n_svc = len(specs)
    for i in range(n_svc):
        own = run.services[i]
        # The relevant partner is the chain neighbour sharing this
        # service's shared region (the last service's neighbour is the
        # one before it).
        if n_svc > 1:
            partner_idx = i + 1 if i < n_svc - 1 else i - 1
        else:
            partner_idx = None
        partner = run.services[partner_idx] if partner_idx is not None else None
        own_spec = specs[i]
        partner_spec = specs[partner_idx] if partner_idx is not None else None
        x_static = static_features(
            own_spec,
            condition.timeouts[i],
            condition.utilizations[i],
            own.gross_increase,
            partner=partner_spec,
            partner_timeout=(
                condition.timeouts[partner_idx] if partner is not None else np.inf
            ),
            partner_util=(
                condition.utilizations[partner_idx] if partner is not None else 0.0
            ),
            partner_gross=partner.gross_increase if partner is not None else 1.0,
        )
        for w, sl in enumerate(own.window_slices(settings.n_windows)):
            wv = own.window_view(sl)
            if wv.n_queries < 3:
                continue
            t0 = float(wv.arrival_times[0])
            t1 = float(wv.completion_times.max())
            if t1 <= t0:
                continue
            _, _, own_boost, own_qlen = _segment_means(own.segments, t0, t1, 1)
            partner_boost = 0.0
            concurrent = 0.0
            mats = [
                sampler.sample(own, own_spec, machine, t0, t1, rng=rng)
            ]
            names = [own_spec.name]
            if partner is not None:
                _, _, partner_boost, _ = _segment_means(
                    partner.segments, t0, t1, 1
                )
                concurrent = _boost_overlap(
                    own.segments, partner.segments, t0, t1
                )
                mats.append(
                    sampler.sample(partner, partner_spec, machine, t0, t1, rng=rng)
                )
                names.append(partner_spec.name)
            trace = CacheUsageTrace.from_counters(
                mats, names, n_ticks=settings.trace_ticks
            )
            x_dynamic = dynamic_features(
                mean_queue_length=own_qlen,
                own_boost_fraction=own_boost,
                partner_boost_fraction=partner_boost,
                concurrent_boost_fraction=concurrent,
            )
            rows.append(
                ProfileRow(
                    condition=condition,
                    service_idx=i,
                    window_idx=w,
                    x_static=x_static,
                    x_dynamic=x_dynamic,
                    trace=trace.data,
                    ea=wv.effective_allocation(),
                    rt_mean=float(wv.response_times_norm.mean()),
                    rt_p95=float(np.percentile(wv.response_times_norm, 95)),
                )
            )
    return rows


class Profiler:
    """Stage 1 profiling campaign driver."""

    def __init__(
        self,
        machine: XeonSpec | None = None,
        settings: ProfilerSettings | None = None,
        n_jobs: int = 1,
        rng=None,
    ):
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.machine = machine or default_machine()
        self.settings = settings or ProfilerSettings()
        self.n_jobs = n_jobs
        self._rng = as_rng(rng)

    def profile(self, conditions: list[RuntimeCondition]) -> ProfileDataset:
        """Run every condition and collect the profile dataset."""
        if not conditions:
            raise ValueError("need at least one condition")
        seeds = [
            int(r.integers(0, 2**31)) for r in spawn_rngs(self._rng, len(conditions))
        ]
        jobs = [
            (c, self.settings, self.machine, s) for c, s in zip(conditions, seeds)
        ]
        dataset = ProfileDataset()
        with telemetry.span(
            "stage1.profile", n_conditions=len(jobs), n_jobs=self.n_jobs
        ):
            if self.n_jobs > 1 and len(jobs) > 1:
                with ProcessPoolExecutor(max_workers=self.n_jobs) as pool:
                    for rows in pool.map(_profile_one_condition, jobs):
                        dataset.extend(rows)
            else:
                for job in jobs:
                    with telemetry.span("stage1.profile.condition"):
                        dataset.extend(_profile_one_condition(job))
        telemetry.counter_inc("stage1.profile_rows", len(dataset))
        return dataset

    def quick_ea(self, condition: RuntimeCondition, n_queries: int = 200) -> np.ndarray:
        """Cheap seed measurement of per-service EA (stratified sampling)."""
        settings = ProfilerSettings(
            n_queries=n_queries,
            n_windows=1,
            trace_ticks=4,
            counter_noise=self.settings.counter_noise,
            private_mb=self.settings.private_mb,
            shared_mb=self.settings.shared_mb,
        )
        seed = int(self._rng.integers(0, 2**31))
        rows = _profile_one_condition((condition, settings, self.machine, seed))
        n_svc = len(condition.workloads)
        eas = np.full(n_svc, np.nan)
        for r in rows:
            eas[r.service_idx] = r.ea
        return eas
