"""Persistence for profile datasets and packed forests.

Profiling campaigns are the expensive stage (Section 5.1 budgets 30
minutes), so datasets must outlive a process.  Everything serializes to
a single ``.npz`` (plus a JSON header embedded in it) with no pickling,
so files are portable and safe to load.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.profile_vec import ProfileDataset, ProfileRow, RuntimeCondition
from repro.forest.fast_inference import PackedForest


def save_dataset(path, dataset: ProfileDataset) -> None:
    """Write a profile dataset to ``path`` (.npz)."""
    if len(dataset) == 0:
        raise ValueError("refusing to save an empty dataset")
    conditions = dataset.conditions()
    cond_index = {id(c): i for i, c in enumerate(conditions)}
    header = {
        "version": 1,
        "conditions": [
            {
                "workloads": list(c.workloads),
                "utilizations": list(c.utilizations),
                "timeouts": [
                    "inf" if np.isinf(t) else float(t) for t in c.timeouts
                ],
                "sampling_hz": c.sampling_hz,
            }
            for c in conditions
        ],
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        x_static=np.stack([r.x_static for r in dataset.rows]),
        x_dynamic=np.stack([r.x_dynamic for r in dataset.rows]),
        traces=dataset.traces,
        y_ea=dataset.y_ea,
        y_rt_mean=dataset.y_rt_mean,
        y_rt_p95=dataset.y_rt_p95,
        service_idx=np.array([r.service_idx for r in dataset.rows]),
        window_idx=np.array([r.window_idx for r in dataset.rows]),
        cond_idx=np.array([cond_index[id(r.condition)] for r in dataset.rows]),
    )


def load_dataset(path) -> ProfileDataset:
    """Read a profile dataset written by :func:`save_dataset`.

    Rows of the same original condition share one
    :class:`RuntimeCondition` instance, preserving
    ``split_conditions``/``condition_groups`` semantics.
    """
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode())
        if header.get("version") != 1:
            raise ValueError(f"unsupported dataset version {header.get('version')}")
        conditions = [
            RuntimeCondition(
                workloads=tuple(c["workloads"]),
                utilizations=tuple(c["utilizations"]),
                timeouts=tuple(
                    np.inf if t == "inf" else float(t) for t in c["timeouts"]
                ),
                sampling_hz=c["sampling_hz"],
            )
            for c in header["conditions"]
        ]
        rows = []
        for i in range(data["y_ea"].shape[0]):
            rows.append(
                ProfileRow(
                    condition=conditions[int(data["cond_idx"][i])],
                    service_idx=int(data["service_idx"][i]),
                    window_idx=int(data["window_idx"][i]),
                    x_static=data["x_static"][i].copy(),
                    x_dynamic=data["x_dynamic"][i].copy(),
                    trace=data["traces"][i].copy(),
                    ea=float(data["y_ea"][i]),
                    rt_mean=float(data["y_rt_mean"][i]),
                    rt_p95=float(data["y_rt_p95"][i]),
                )
            )
    return ProfileDataset(rows=rows)


def save_packed_forest(path, packed: PackedForest) -> None:
    """Write a packed forest to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        feature=packed.feature,
        threshold=packed.threshold,
        left=packed.left,
        right=packed.right,
        value=packed.value,
        roots=packed.roots,
        meta=np.array([packed.n_features, packed.max_depth], dtype=np.int64),
    )


def load_packed_forest(path) -> PackedForest:
    """Read a packed forest written by :func:`save_packed_forest`."""
    with np.load(path, allow_pickle=False) as data:
        n_features, max_depth = (int(x) for x in data["meta"])
        return PackedForest(
            feature=data["feature"],
            threshold=data["threshold"],
            left=data["left"],
            right=data["right"],
            value=data["value"],
            roots=data["roots"],
            n_features=n_features,
            max_depth=max_depth,
        )
