"""Model-driven timeout-vector exploration (Section 5.2).

The model predicts response time for every combination of candidate
timeouts (the paper explores 5 settings per workload, 25 combinations
per pair) and the SLO-driven matching policy picks a vector that is
near-optimal for *every* collocated service simultaneously.

The exploration is embarrassingly parallel across combinations, so
:func:`explore_timeouts` follows the :class:`~repro.core.profiler.Profiler`
precedent and fans out over a process pool when ``n_jobs > 1``.  Three
properties keep parallel and serial searches bit-identical:

- the response-time simulator is seeded per model instance, so every
  combination's prediction is a pure function of (model, combination) —
  deterministic regardless of which worker runs it or in what order;
- one arrival/demand sample is shared across the whole exploration
  (cached inside :class:`~repro.core.rt_model.ResponseTimeModel`)
  instead of being regenerated per combo;
- warm-starting flows only *within* a run — the block of consecutive
  combinations in which only the last service's timeout varies — and
  runs never straddle chunk boundaries, so the EA fixed point sees the
  same initialization chain under any worker count.

Two more levers compose with the fan-out: without warm-starting,
every combination a worker owns is simulated through the *batched*
queueing kernel (:func:`~repro.queueing.ggk.simulate_stap_queue_batch`
via :meth:`StacModel.predict_conditions`), collapsing ~combos x
queries Python iterations per fixed-point round into ~queries; and
work is distributed as contiguous *chunks* of runs, so the pickled
model crosses each process boundary once per worker instead of once
per run.  Both are bit-identity-preserving rearrangements.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import telemetry
from repro.baselines.policies import PolicyDecision
from repro.core.pipeline import StacModel
from repro.core.profile_vec import RuntimeCondition

#: The default candidate grid: 5 settings spanning "always share" to
#: "rarely boost" (Table 2's 0%-600% timeout range).
DEFAULT_TIMEOUT_GRID: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0)

#: Statistics :func:`explore_timeouts` can rank combinations by.
_STATISTICS = ("mean", "p50", "p95", "p99")


def slo_matching(
    rt_matrix: np.ndarray, tolerance: float = 0.05
) -> int:
    """Pick the combination satisfying the paper's two-step policy.

    Step 1: for each service, mark combinations whose predicted response
    time is within ``tolerance`` of that service's best.  Step 2: choose
    a combination marked by *every* service; when the intersection is
    empty the tolerance is relaxed geometrically until one exists (the
    minimax-regret combination wins ties).

    Parameters
    ----------
    rt_matrix:
        (n_combinations, n_services) predicted response times.
    """
    rt = np.asarray(rt_matrix, dtype=float)
    if rt.ndim != 2 or rt.shape[0] == 0:
        raise ValueError("rt_matrix must be a non-empty 2-D array")
    if np.any(rt <= 0):
        raise ValueError("response times must be positive")
    best = rt.min(axis=0)  # per-service optimum
    tol = tolerance
    for _ in range(32):
        ok = rt <= best * (1.0 + tol)
        candidates = np.nonzero(ok.all(axis=1))[0]
        if candidates.size:
            # Among candidates, minimize the worst relative regret.
            regret = (rt[candidates] / best).max(axis=1)
            return int(candidates[np.argmin(regret)])
        tol *= 2.0
    # Unreachable in practice; fall back to global minimax regret.
    return int(np.argmin((rt / best).max(axis=1)))


def _conditions(workloads, utilizations, combos) -> list[RuntimeCondition]:
    return [
        RuntimeCondition(
            workloads=workloads,
            utilizations=utilizations,
            timeouts=combo,
        )
        for combo in combos
    ]


def _predict_chunk(args) -> tuple[np.ndarray, dict | None]:
    """Worker: predict a chunk of consecutive grid runs.

    Whole chunks are the unit of work distribution, so the (pickled)
    model crosses the process boundary once per chunk rather than once
    per run.  Without warm-starting every combination is independent
    and the chunk is predicted as one batched lockstep
    (:meth:`StacModel.predict_conditions`); with warm-starting each
    run's combinations chain sequentially — each combination's
    converged EAs seed the next one's fixed point, the first always
    starting from the model's first-principles guess — so a run's
    output depends only on (model, run), never on worker assignment.

    Returns ``(rt_matrix, telemetry_snapshot)``.  The snapshot is
    ``None`` unless ``collect_telemetry`` is set, which pool workers use
    to ship an isolated child registry/span-log/event-sink back for the
    parent to merge (pure observation riding the existing result
    channel: seeding and chunk order are untouched).
    """
    (model, workloads, utilizations, runs, statistic,
     warm_start, ea_tol, batch, collect_telemetry, trace_queue_events) = args
    if collect_telemetry:
        # Fresh worker-local state: fork-started pools inherit the
        # parent's telemetry objects, and mutating those in a child
        # would be lost — and snapshotting them would double-count the
        # parent's own records.
        telemetry.begin_worker(trace_queue_events=trace_queue_events)
    n_combos = sum(len(run) for run in runs)
    with telemetry.span(
        "policy.chunk", n_runs=len(runs), n_combos=n_combos
    ):
        if not warm_start:
            combos = [combo for run in runs for combo in run]
            preds = model.predict_conditions(
                _conditions(workloads, utilizations, combos),
                use_batch=None if batch else False,
            )
            rt = np.array(
                [[getattr(s, statistic) for s in p.summaries] for p in preds]
            )
        else:
            parts = []
            for run in runs:
                part = np.empty((len(run), len(workloads)))
                eas = None
                for k, cond in enumerate(
                    _conditions(workloads, utilizations, run)
                ):
                    pred = model.predict_condition(
                        cond, ea_init=eas, ea_tol=ea_tol
                    )
                    part[k] = [getattr(s, statistic) for s in pred.summaries]
                    eas = pred.effective_allocations
                parts.append(part)
            rt = np.vstack(parts)
    telemetry.counter_inc("policy.combos_evaluated", n_combos)
    if collect_telemetry:
        snap = telemetry.worker_snapshot()
        telemetry.disable()
        return rt, snap
    return rt, None


def explore_timeouts(
    model: StacModel,
    workloads: tuple[str, ...],
    utilizations: tuple[float, ...],
    timeout_grid=DEFAULT_TIMEOUT_GRID,
    statistic: str = "p95",
    n_jobs: int = 1,
    warm_start: bool = False,
    ea_tol: float = 1e-3,
    batch: bool = True,
) -> tuple[list[tuple[float, ...]], np.ndarray]:
    """Predict response times for every timeout combination.

    Returns the list of combinations and an (n_combos, n_services)
    matrix of the chosen response-time statistic.

    Parameters
    ----------
    n_jobs:
        Worker processes to fan the exploration out over.  Results are
        bit-identical for every ``n_jobs`` (see the module docstring);
        1 keeps everything in-process.
    warm_start:
        Seed each combination's EA fixed point with the previous
        combination's converged EAs (within a grid run) and allow the
        iteration to exit early once EA updates fall within ``ea_tol``.
        Cuts simulation count roughly in half on typical grids; off by
        default because it changes predictions by up to ``ea_tol``.
    ea_tol:
        Early-exit tolerance for warm-started fixed points.
    batch:
        Simulate each worker's combinations through the batched
        queueing kernel (one vectorized pass per fixed-point round)
        instead of combo-by-combo.  Bit-identical results either way;
        ``False`` forces the serial kernel.  Ignored under
        ``warm_start``, whose sequential EA chaining is incompatible
        with cross-combination batching.
    """
    if statistic not in _STATISTICS:
        raise ValueError(f"unknown statistic {statistic!r}")
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    grid = tuple(timeout_grid)
    if len(grid) == 0:
        raise ValueError("timeout_grid must not be empty")
    combos = list(itertools.product(grid, repeat=len(workloads)))
    # A "run" = consecutive combos in which only the last service's
    # timeout varies: the warm-start unit and the smallest unit of
    # work distribution.
    runs = [combos[i : i + len(grid)] for i in range(0, len(combos), len(grid))]
    # Contiguous chunks of runs, one per worker: the model is pickled
    # once per chunk instead of once per run.
    n_chunks = min(n_jobs, len(runs)) if n_jobs > 1 else 1
    bounds = np.linspace(0, len(runs), n_chunks + 1).astype(int)
    chunks = [runs[a:b] for a, b in zip(bounds[:-1], bounds[1:])]
    # Pool workers collect into isolated child telemetry states and
    # ship snapshots back with their results; the in-process path
    # records straight into the parent state (collect stays False).
    pooled = len(chunks) > 1
    collect = telemetry.enabled() and pooled
    trace_q = collect and telemetry.queue_sink() is not None
    jobs = [
        (model, tuple(workloads), tuple(utilizations), chunk, statistic,
         warm_start, ea_tol, batch, collect, trace_q)
        for chunk in chunks
    ]
    with telemetry.span(
        "policy.explore_timeouts",
        n_combos=len(combos),
        n_jobs=n_jobs,
        statistic=statistic,
        warm_start=warm_start,
    ):
        if pooled:
            with ProcessPoolExecutor(max_workers=len(jobs)) as pool:
                results = list(pool.map(_predict_chunk, jobs))
        else:
            results = [_predict_chunk(job) for job in jobs]
        parts = []
        for w, (rt, snap) in enumerate(results):
            parts.append(rt)
            telemetry.merge_worker(snap, worker=f"explore-{w}")
    return combos, np.vstack(parts)


def model_driven_policy(
    model: StacModel,
    workloads: tuple[str, ...],
    utilizations: tuple[float, ...],
    timeout_grid=DEFAULT_TIMEOUT_GRID,
    tolerance: float = 0.05,
    statistic: str = "p95",
    name: str = "model-driven",
    n_jobs: int = 1,
    warm_start: bool = False,
    batch: bool = True,
) -> PolicyDecision:
    """The paper's policy: explore with the model, match with the SLO rule.

    ``n_jobs``/``warm_start``/``batch`` tune :func:`explore_timeouts`;
    the chosen timeout vector is identical for every ``n_jobs`` and
    either ``batch`` setting.
    """
    combos, rt = explore_timeouts(
        model,
        workloads,
        utilizations,
        timeout_grid,
        statistic,
        n_jobs=n_jobs,
        warm_start=warm_start,
        batch=batch,
    )
    chosen = slo_matching(rt, tolerance=tolerance)
    return PolicyDecision(name, combos[chosen])
