"""Model-driven timeout-vector exploration (Section 5.2).

The model predicts response time for every combination of candidate
timeouts (the paper explores 5 settings per workload, 25 combinations
per pair) and the SLO-driven matching policy picks a vector that is
near-optimal for *every* collocated service simultaneously.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.baselines.policies import PolicyDecision
from repro.core.pipeline import StacModel
from repro.core.profile_vec import RuntimeCondition

#: The default candidate grid: 5 settings spanning "always share" to
#: "rarely boost" (Table 2's 0%-600% timeout range).
DEFAULT_TIMEOUT_GRID: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0)


def slo_matching(
    rt_matrix: np.ndarray, tolerance: float = 0.05
) -> int:
    """Pick the combination satisfying the paper's two-step policy.

    Step 1: for each service, mark combinations whose predicted response
    time is within ``tolerance`` of that service's best.  Step 2: choose
    a combination marked by *every* service; when the intersection is
    empty the tolerance is relaxed geometrically until one exists (the
    minimax-regret combination wins ties).

    Parameters
    ----------
    rt_matrix:
        (n_combinations, n_services) predicted response times.
    """
    rt = np.asarray(rt_matrix, dtype=float)
    if rt.ndim != 2 or rt.shape[0] == 0:
        raise ValueError("rt_matrix must be a non-empty 2-D array")
    if np.any(rt <= 0):
        raise ValueError("response times must be positive")
    best = rt.min(axis=0)  # per-service optimum
    tol = tolerance
    for _ in range(32):
        ok = rt <= best * (1.0 + tol)
        candidates = np.nonzero(ok.all(axis=1))[0]
        if candidates.size:
            # Among candidates, minimize the worst relative regret.
            regret = (rt[candidates] / best).max(axis=1)
            return int(candidates[np.argmin(regret)])
        tol *= 2.0
    # Unreachable in practice; fall back to global minimax regret.
    return int(np.argmin((rt / best).max(axis=1)))


def explore_timeouts(
    model: StacModel,
    workloads: tuple[str, ...],
    utilizations: tuple[float, ...],
    timeout_grid=DEFAULT_TIMEOUT_GRID,
    statistic: str = "p95",
) -> tuple[list[tuple[float, ...]], np.ndarray]:
    """Predict response times for every timeout combination.

    Returns the list of combinations and an (n_combos, n_services)
    matrix of the chosen response-time statistic.
    """
    if statistic not in ("mean", "p50", "p95", "p99"):
        raise ValueError(f"unknown statistic {statistic!r}")
    combos = list(itertools.product(timeout_grid, repeat=len(workloads)))
    rt = np.empty((len(combos), len(workloads)))
    for c_idx, combo in enumerate(combos):
        cond = RuntimeCondition(
            workloads=workloads,
            utilizations=utilizations,
            timeouts=combo,
        )
        pred = model.predict_condition(cond)
        rt[c_idx] = [getattr(s, statistic) for s in pred.summaries]
    return combos, rt


def model_driven_policy(
    model: StacModel,
    workloads: tuple[str, ...],
    utilizations: tuple[float, ...],
    timeout_grid=DEFAULT_TIMEOUT_GRID,
    tolerance: float = 0.05,
    statistic: str = "p95",
    name: str = "model-driven",
) -> PolicyDecision:
    """The paper's policy: explore with the model, match with the SLO rule."""
    combos, rt = explore_timeouts(
        model, workloads, utilizations, timeout_grid, statistic
    )
    chosen = slo_matching(rt, tolerance=tolerance)
    return PolicyDecision(name, combos[chosen])
