"""Condition sampling: uniform random vs stratified (Section 4).

The first implementation used uniform random sampling, which
over-samples some settings.  Stratified sampling runs cheap seed
experiments, clusters them by measured effective cache allocation, and
generates new conditions near cluster centroids — covering the EA space
with ~3x fewer profiling runs.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.analysis.clustering import KMeans
from repro.core.profile_vec import RuntimeCondition

#: Table 2 ranges.
UTIL_RANGE = (0.25, 0.95)
TIMEOUT_RANGE = (0.0, 6.0)


def _random_condition(pair, rng, sampling_hz) -> RuntimeCondition:
    u = rng.uniform(*UTIL_RANGE, size=len(pair))
    # Timeouts above ~200% of service time rarely trigger (they encode
    # "(almost) never boost"), so sampling weights the active region:
    # 75% of draws in [0, 2), 25% covering the tail out to 600%.
    active = rng.random(len(pair)) < 0.75
    t = np.where(
        active,
        rng.uniform(TIMEOUT_RANGE[0], 2.0, size=len(pair)),
        rng.uniform(2.0, TIMEOUT_RANGE[1], size=len(pair)),
    )
    return RuntimeCondition(
        workloads=tuple(pair),
        utilizations=tuple(float(x) for x in u),
        timeouts=tuple(float(x) for x in t),
        sampling_hz=sampling_hz,
    )


def uniform_conditions(
    pair,
    n: int,
    sampling_hz: float = 1.0,
    rng=None,
) -> list[RuntimeCondition]:
    """Uniform random sampling over the Table 2 condition space."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = as_rng(rng)
    return [_random_condition(pair, rng, sampling_hz) for _ in range(n)]


def grid_anchor_conditions(
    pair,
    utilization: float,
    timeout_grid=(0.0, 0.5, 1.0, 2.0, 4.0),
    sampling_hz: float = 1.0,
) -> list[RuntimeCondition]:
    """Conditions anchoring the corners of a policy-search grid.

    Random sampling rarely lands both services at extreme timeouts
    simultaneously, leaving exactly the settings a timeout search will
    evaluate (e.g. "everyone always shares") out of the training data.
    Since Stage 1 controls static conditions, profiling the grid's
    corner and diagonal points directly closes that coverage hole:
    all-minimum, all-maximum, the symmetric diagonal, and each service
    alone at the extremes.
    """
    if not 0 < utilization < 1:
        raise ValueError("utilization must be in (0, 1)")
    if len(timeout_grid) == 0:
        raise ValueError("timeout_grid must be non-empty")
    lo, hi = min(timeout_grid), max(timeout_grid)
    mid = sorted(timeout_grid)[len(timeout_grid) // 2]
    k = len(pair)
    vectors = {
        (lo,) * k,
        (hi,) * k,
        (mid,) * k,
    }
    for i in range(k):
        vectors.add(tuple(lo if j == i else hi for j in range(k)))
        vectors.add(tuple(hi if j == i else lo for j in range(k)))
    utils = (utilization,) * k
    return [
        RuntimeCondition(
            workloads=tuple(pair),
            utilizations=utils,
            timeouts=v,
            sampling_hz=sampling_hz,
        )
        for v in sorted(vectors)
    ]


def _condition_params(c: RuntimeCondition) -> np.ndarray:
    return np.asarray(list(c.utilizations) + list(c.timeouts), dtype=float)


def _params_to_condition(pair, params, sampling_hz) -> RuntimeCondition:
    k = len(pair)
    u = np.clip(params[:k], UTIL_RANGE[0], UTIL_RANGE[1])
    t = np.clip(params[k:], TIMEOUT_RANGE[0], TIMEOUT_RANGE[1])
    return RuntimeCondition(
        workloads=tuple(pair),
        utilizations=tuple(float(x) for x in u),
        timeouts=tuple(float(x) for x in t),
        sampling_hz=sampling_hz,
    )


def stratified_conditions(
    pair,
    n: int,
    measure_ea,
    n_seeds: int | None = None,
    n_clusters: int = 4,
    pool_factor: int = 20,
    sampling_hz: float = 1.0,
    rng=None,
) -> list[RuntimeCondition]:
    """Stratified sampling driven by seed-experiment EA clustering.

    Seed experiments are clustered by measured effective cache
    allocation.  A large uniform candidate pool is then assigned to
    clusters via the nearest seed in condition space, and the remaining
    budget is drawn *balanced across clusters*, so every EA regime is
    represented regardless of how much of the condition space it covers.
    (Uniform sampling over-samples the large inactive regime — the
    problem Section 4 describes.)

    Parameters
    ----------
    pair:
        Workload names to collocate.
    n:
        Total conditions to return (seeds included).
    measure_ea:
        Callable ``condition -> array of per-service EA`` (cheap seed
        run, e.g. :meth:`Profiler.quick_ea`).
    n_seeds:
        Seed experiments to run (default: ``max(n_clusters, n // 3)``).
    n_clusters:
        Number of EA clusters.
    pool_factor:
        Candidate-pool size as a multiple of the remaining budget.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = as_rng(rng)
    n_seeds = n_seeds if n_seeds is not None else max(n_clusters, n // 3)
    n_seeds = min(n_seeds, n)
    seeds = [_random_condition(pair, rng, sampling_hz) for _ in range(n_seeds)]
    if n_seeds == n:
        return seeds

    eas = np.stack([np.nan_to_num(measure_ea(c), nan=0.5) for c in seeds])
    k = min(n_clusters, len(seeds))
    km = KMeans(k=k, rng=rng).fit(eas)
    seed_labels = km.labels_

    # Map candidate conditions to EA clusters through the nearest seed
    # in (normalized) condition space.
    span = np.array(
        [UTIL_RANGE[1] - UTIL_RANGE[0]] * len(pair)
        + [TIMEOUT_RANGE[1] - TIMEOUT_RANGE[0]] * len(pair)
    )
    seed_params = np.stack([_condition_params(c) for c in seeds]) / span

    remaining = n - n_seeds
    pool = [
        _random_condition(pair, rng, sampling_hz)
        for _ in range(pool_factor * remaining)
    ]
    pool_params = np.stack([_condition_params(c) for c in pool]) / span
    nearest_seed = np.argmin(
        ((pool_params[:, None, :] - seed_params[None]) ** 2).sum(-1), axis=1
    )
    pool_labels = seed_labels[nearest_seed]

    # Draw the budget round-robin across clusters for balanced coverage.
    by_cluster = [
        [i for i in range(len(pool)) if pool_labels[i] == j] for j in range(k)
    ]
    for members in by_cluster:
        rng.shuffle(members)
    out = list(seeds)
    j = 0
    while len(out) < n:
        members = by_cluster[j % k]
        if members:
            out.append(pool[members.pop()])
        j += 1
        if j > k * (pool_factor * remaining + 1):  # pool exhausted
            out.append(_random_condition(pair, rng, sampling_hz))
    return out
