"""The paper's primary contribution: the three-stage modeling pipeline.

Stage 1 (:mod:`repro.core.profiler`) profiles collocated workloads and
measures effective cache allocation; Stage 2 (:mod:`repro.core.ea_model`)
trains deep-forest models of EA; Stage 3 (:mod:`repro.core.rt_model`)
converts EA into response time through queueing simulation.  The
:class:`~repro.core.pipeline.StacModel` facade composes the stages and
:mod:`repro.core.policy_search` explores timeout vectors.
"""

from repro.core.ea import window_effective_allocation, ideal_effective_allocation
from repro.core.profile_vec import (
    RuntimeCondition,
    ProfileRow,
    ProfileDataset,
    STATIC_FEATURE_NAMES,
    DYNAMIC_FEATURE_NAMES,
)
from repro.core.sampling import uniform_conditions, stratified_conditions
from repro.core.profiler import Profiler
from repro.core.ea_model import EAModel
from repro.core.rt_model import ResponseTimeModel
from repro.core.pipeline import StacModel
from repro.core.policy_search import (
    explore_timeouts,
    model_driven_policy,
    slo_matching,
)
from repro.core.io import (
    load_dataset,
    load_packed_forest,
    save_dataset,
    save_packed_forest,
)

__all__ = [
    "window_effective_allocation",
    "ideal_effective_allocation",
    "RuntimeCondition",
    "ProfileRow",
    "ProfileDataset",
    "STATIC_FEATURE_NAMES",
    "DYNAMIC_FEATURE_NAMES",
    "uniform_conditions",
    "stratified_conditions",
    "Profiler",
    "EAModel",
    "ResponseTimeModel",
    "StacModel",
    "explore_timeouts",
    "model_driven_policy",
    "slo_matching",
    "load_dataset",
    "load_packed_forest",
    "save_dataset",
    "save_packed_forest",
]
