"""StacModel: the end-to-end short-term-allocation performance model.

Composes the three stages:

1. a :class:`~repro.core.profiler.Profiler` produces a profile dataset,
2. an :class:`~repro.core.ea_model.EAModel` learns effective cache
   allocation from it,
3. a :class:`~repro.core.rt_model.ResponseTimeModel` converts EA to
   response time.

Two prediction paths are offered:

- :meth:`predict_rows` scores held-out *profiled* rows (measured traces,
  hidden response times) — how Figure 6/7 evaluate accuracy;
- :meth:`predict_condition` scores *hypothetical* conditions with no
  measurements, synthesizing nominal traces from a queueing fixed point
  — how policy exploration works (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro._util import as_rng
from repro.cache.contention import SharedWayContention
from repro.core.ea import ideal_effective_allocation
from repro.core.ea_model import EAModel
from repro.core.profile_vec import (
    ProfileDataset,
    RuntimeCondition,
    dynamic_features,
    static_features,
)
from repro.core.rt_model import QueueFeedback, ResponseTimeModel
from repro.counters.events import synthesize_ticks
from repro.queueing.metrics import ResponseTimeSummary
from repro.testbed.machine import XeonSpec, default_machine
from repro.workloads.suite import get_workload


@dataclass
class ConditionPrediction:
    """Per-service outcome of one hypothetical-condition prediction.

    ``X_flat``/``traces`` are the final-iteration *nominal* model inputs
    (simulator-derived, no measurements) — exposed so competing models
    can be evaluated on identical information.
    """

    summaries: list[ResponseTimeSummary]
    effective_allocations: np.ndarray
    boost_fractions: np.ndarray
    X_flat: np.ndarray
    traces: np.ndarray


class StacModel:
    """Short-Term Allocation performance model (the paper's approach)."""

    def __init__(
        self,
        machine: XeonSpec | None = None,
        learner: str = "deep_forest",
        private_mb: float = 2.0,
        shared_mb: float = 2.0,
        trace_ticks: int = 20,
        sampling_hz: float = 1.0,
        n_servers: int = 2,
        n_iterations: int = 2,
        sim_queries: int = 4000,
        n_jobs: int = 1,
        forest_strategy: str = "exact",
        rng=None,
        **ea_params,
    ):
        """``n_jobs`` and ``forest_strategy`` plumb Stage 2 training
        parallelism / histogram split finding into the forest learners
        (deep_forest, cascade, random_forest; the rest ignore them).
        ``forest_strategy="exact"`` (default) keeps trees bit-identical
        to previous releases for every ``n_jobs``."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if forest_strategy not in ("exact", "hist"):
            raise ValueError(f"unknown forest_strategy {forest_strategy!r}")
        ea_params.setdefault("n_jobs", n_jobs)
        ea_params.setdefault("strategy", forest_strategy)
        self.machine = machine or default_machine()
        self.private_mb = private_mb
        self.shared_mb = shared_mb
        self.trace_ticks = trace_ticks
        self.sampling_hz = sampling_hz
        self.n_iterations = n_iterations
        self._rng = as_rng(rng)
        self.ea_model = EAModel(learner=learner, rng=self._rng, **ea_params)
        self.rt_model = ResponseTimeModel(
            n_servers=n_servers, n_queries=sim_queries, rng=self._rng
        )
        self._contention = SharedWayContention()

    # -- training --------------------------------------------------------------

    def fit(self, dataset: ProfileDataset) -> "StacModel":
        """Stage 2 training on a Stage 1 profile dataset.

        The nominal-trace synthesizer adopts the training traces' tick
        count so hypothetical-condition inputs match the fitted MGS.
        """
        if len(dataset) > 0:
            self.trace_ticks = int(dataset.traces.shape[2])
        with telemetry.span(
            "stage2.fit", n_rows=len(dataset), learner=self.ea_model.learner
        ):
            self.ea_model.fit(dataset)
        return self

    # -- evaluation on profiled rows ---------------------------------------------

    def predict_rows(self, dataset: ProfileDataset) -> dict[str, np.ndarray]:
        """Predict response time for profiled (held-out) rows.

        Returns dict with ``ea``, ``rt_mean`` and ``rt_p95`` arrays.
        """
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        with telemetry.span("stage2.predict_rows", n_rows=len(dataset)):
            ea = self.ea_model.predict_dataset(dataset)
        # Every row is an independent queue condition: simulate them all
        # through one batched kernel call (bit-identical to the serial
        # per-row loop this replaced).
        conds = []
        for i, row in enumerate(dataset.rows):
            c = row.condition
            spec = get_workload(row.service_name)
            conds.append(
                dict(
                    utilization=c.utilizations[row.service_idx],
                    timeout=c.timeouts[row.service_idx],
                    gross_increase=self._gross_increase(
                        len(c.workloads), row.service_idx
                    ),
                    effective_allocation=float(ea[i]),
                    service_cv=spec.service_cv,
                    mean_service_time=self._default_service_time(spec),
                )
            )
        with telemetry.span("stage3.simulate_rows", n_conditions=len(conds)):
            feedback = self.rt_model.simulate_many(conds)
        rt_mean = np.array([f.summary.mean for f in feedback])
        rt_p95 = np.array([f.summary.p95 for f in feedback])
        return {"ea": ea, "rt_mean": rt_mean, "rt_p95": rt_p95}

    def _default_service_time(self, spec) -> float:
        """Expected service time at the default (private) allocation on
        the normalized clock — below 1.0 when the private reservation
        exceeds the workload's baseline capacity."""
        mb = 1024 * 1024
        return float(
            spec.service_time(self.private_mb * mb) / spec.baseline_service_time
        )

    def _gross_increase(self, n_services: int, idx: int) -> float:
        """l_a'/l_a implied by the chain layout on this machine."""
        p = self.machine.mb_to_ways(self.private_mb)
        s = self.machine.mb_to_ways(self.shared_mb)
        if n_services == 1:
            return 1.0
        sides = 2 if 0 < idx < n_services - 1 else 1
        return (p + sides * s) / p

    # -- prediction for hypothetical conditions -----------------------------------

    @staticmethod
    def _chain_neighbor(n: int, idx: int) -> int | None:
        """The chain neighbour whose shared region ``idx`` borrows (the
        same convention the profiler uses)."""
        if n <= 1:
            return None
        return idx + 1 if idx < n - 1 else idx - 1

    def _boosted_capacity(self, specs, j: int, boost_fractions) -> float:
        """Expected LLC bytes for service ``j`` while it holds its boost,
        accounting for each adjacent sharer boosting concurrently."""
        mb = 1024 * 1024
        private = self.private_mb * mb
        shared = self.shared_mb * mb
        n = len(specs)
        adjacent = [k for k in (j - 1, j + 1) if 0 <= k < n]
        cap = private
        w_own = specs[j].fill_intensity(specs[j].baseline_capacity)
        for k in adjacent:
            pb = float(boost_fractions[k])
            w_k = specs[k].fill_intensity(specs[k].baseline_capacity)
            both = self._contention.effective_shared_ways(
                shared, np.array([w_own, w_k])
            )
            cap += (1 - pb) * shared + pb * both[0]
        return cap

    def _nominal_trace(
        self,
        specs: list,
        target: int,
        utils,
        boost_fractions: np.ndarray,
    ) -> np.ndarray:
        """Synthesize the expected counter trace for one service.

        Emits the (own, chain-neighbour) counter blocks the profiler
        records; boosted ticks are spread evenly through the window at
        each service's predicted boost fraction, with capacities
        accounting for concurrent sharers.
        """
        mb = 1024 * 1024
        private = self.private_mb * mb
        dt = 1.0 / self.sampling_hz
        neighbor = self._chain_neighbor(len(specs), target)
        order = [target] if neighbor is None else [target, neighbor]
        blocks = []
        for j in order:
            spec = specs[j]
            cap_boost = self._boosted_capacity(specs, j, boost_fractions)
            bf = float(boost_fractions[j])
            # Spread boosted ticks evenly (deterministic, seed-free).
            boosted_ticks = {
                int(round(k * self.trace_ticks / max(1, round(bf * self.trace_ticks))))
                for k in range(int(round(bf * self.trace_ticks)))
            }
            boosted = np.zeros(self.trace_ticks, dtype=bool)
            boosted[[t for t in boosted_ticks if t < self.trace_ticks]] = True
            cap = np.where(boosted, cap_boost, private)
            # One batched synthesis over the whole window instead of a
            # Python per-tick loop (noise-free, so bit-identical).
            ticks = synthesize_ticks(
                spec,
                capacity_bytes=cap,
                busy_fraction=float(utils[j]),
                boost_fraction=boosted.astype(float),
                dt=dt,
                ways_allocated=cap / self.machine.way_bytes,
                noise=0.0,
            )
            blocks.append(ticks.T)
        return np.vstack(blocks)

    def _init_eas(self, specs, grosses, ea_init) -> np.ndarray:
        """Starting EAs for one condition's fixed point."""
        n = len(specs)
        mb = 1024 * 1024
        if ea_init is not None:
            eas = np.asarray(ea_init, dtype=float).copy()
            if eas.shape != (n,):
                raise ValueError(f"ea_init must have shape ({n},), got {eas.shape}")
            if np.any(eas <= 0):
                raise ValueError("ea_init entries must be > 0")
            return eas
        # Initial guess: no-contention first-principles EA.
        return np.array(
            [
                ideal_effective_allocation(
                    specs[i],
                    self.private_mb * mb,
                    self.shared_mb * mb,
                    grosses[i],
                )
                for i in range(n)
            ]
        )

    def _condition_round(self, condition, specs, grosses, feedback):
        """One fixed-point round's model inputs for one condition.

        Turns the services' queue feedback into the stacked static +
        dynamic feature rows and nominal traces the EA model consumes.
        """
        n = len(specs)
        boost_fracs = np.array([f.boost_fraction for f in feedback])
        X_flat, traces = [], []
        for i in range(n):
            # Chain-neighbour convention, matching the profiler.
            if n > 1:
                partner = i + 1 if i < n - 1 else i - 1
            else:
                partner = None
            xs = static_features(
                specs[i],
                condition.timeouts[i],
                condition.utilizations[i],
                grosses[i],
                partner=specs[partner] if partner is not None else None,
                partner_timeout=(
                    condition.timeouts[partner] if partner is not None else np.inf
                ),
                partner_util=(
                    condition.utilizations[partner]
                    if partner is not None
                    else 0.0
                ),
                partner_gross=grosses[partner] if partner is not None else 1.0,
            )
            # Little's law: mean queue length = lambda x mean wait.
            lam = condition.utilizations[i] * self.rt_model.n_servers
            partner_bf = (
                boost_fracs[partner] if partner is not None else 0.0
            )
            xd = dynamic_features(
                mean_queue_length=lam * feedback[i].mean_wait,
                own_boost_fraction=boost_fracs[i],
                partner_boost_fraction=partner_bf,
                # Independence estimate of concurrent boosting.
                concurrent_boost_fraction=boost_fracs[i] * partner_bf,
            )
            X_flat.append(np.concatenate([xs, xd]))
            traces.append(
                self._nominal_trace(
                    specs, i, condition.utilizations, boost_fracs
                )
            )
        return np.stack(X_flat), np.stack(traces)

    def predict_condition(
        self,
        condition: RuntimeCondition,
        ea_init: np.ndarray | None = None,
        ea_tol: float = 0.0,
    ) -> ConditionPrediction:
        """Predict response time for a hypothetical runtime condition.

        Runs the Stage 3 queueing simulator and Stage 2 EA model to a
        fixed point: the simulator's queue feedback shapes the dynamic
        features and nominal traces, whose EA predictions update the
        simulator's boosted rate.  (Thin wrapper over
        :meth:`predict_conditions` with a single condition.)

        Parameters
        ----------
        ea_init:
            Optional per-service starting EAs for the fixed point.  When
            omitted the no-contention first-principles EA seeds the loop;
            policy exploration passes the converged EAs of a neighbouring
            timeout combination to warm-start the iteration.
        ea_tol:
            Early-exit tolerance: when > 0 the loop stops as soon as the
            largest per-service EA update falls within ``ea_tol`` (at
            most ``n_iterations`` iterations either way).  The default 0
            always runs all iterations.
        """
        return self.predict_conditions(
            [condition], ea_inits=[ea_init], ea_tol=ea_tol
        )[0]

    def predict_conditions(
        self,
        conditions,
        ea_inits=None,
        ea_tol: float = 0.0,
        use_batch: bool | None = None,
    ) -> list[ConditionPrediction]:
        """Predict many hypothetical conditions in lockstep.

        Runs every condition's EA fixed point simultaneously so that
        each round simulates all collocated services of all conditions
        through one batched kernel call
        (:meth:`ResponseTimeModel.simulate_many`).  Conditions are
        mutually independent, so each result is bit-identical to a
        standalone :meth:`predict_condition` call; with ``ea_tol > 0``
        conditions leave the lockstep individually as they converge,
        exactly where their serial loop would have stopped.

        Parameters
        ----------
        conditions:
            :class:`RuntimeCondition` instances (service counts may
            differ between them).
        ea_inits:
            Optional per-condition starting EAs (entries may be
            ``None``); one entry per condition.
        use_batch:
            Forwarded to :meth:`ResponseTimeModel.simulate_many`:
            ``None`` auto-selects the batched kernel by condition
            count, ``True``/``False`` force a path (results are
            identical either way).
        """
        conditions = list(conditions)
        if ea_inits is None:
            ea_inits = [None] * len(conditions)
        ea_inits = list(ea_inits)
        if len(ea_inits) != len(conditions):
            raise ValueError(
                f"got {len(ea_inits)} ea_inits for {len(conditions)} conditions"
            )
        specs_per = [
            [get_workload(n) for n in cond.workloads] for cond in conditions
        ]
        grosses_per = [
            [self._gross_increase(len(specs), i) for i in range(len(specs))]
            for specs in specs_per
        ]
        eas_per = [
            self._init_eas(specs, grosses, init)
            for specs, grosses, init in zip(specs_per, grosses_per, ea_inits)
        ]
        feedback_per: list[list[QueueFeedback]] = [None] * len(conditions)
        X_per: list[np.ndarray] = [None] * len(conditions)
        traces_per: list[np.ndarray] = [None] * len(conditions)
        active = list(range(len(conditions)))
        fp_span = telemetry.span(
            "stage3.fixed_point", n_conditions=len(conditions)
        )
        with fp_span:
            rounds = 0
            for it in range(self.n_iterations):
                rounds = it + 1
                with telemetry.span(
                    "stage3.fixed_point.round", round=it, active=len(active)
                ):
                    sim_conds = []
                    for ci in active:
                        cond, specs, grosses, eas = (
                            conditions[ci], specs_per[ci], grosses_per[ci],
                            eas_per[ci],
                        )
                        for i in range(len(specs)):
                            sim_conds.append(
                                dict(
                                    utilization=cond.utilizations[i],
                                    timeout=cond.timeouts[i],
                                    gross_increase=grosses[i],
                                    effective_allocation=float(eas[i]),
                                    service_cv=specs[i].service_cv,
                                    mean_service_time=self._default_service_time(
                                        specs[i]
                                    ),
                                )
                            )
                    all_feedback = self.rt_model.simulate_many(
                        sim_conds, use_batch=use_batch
                    )
                    pos = 0
                    still_active = []
                    for ci in active:
                        n = len(specs_per[ci])
                        feedback_per[ci] = all_feedback[pos : pos + n]
                        pos += n
                        X_per[ci], traces_per[ci] = self._condition_round(
                            conditions[ci], specs_per[ci], grosses_per[ci],
                            feedback_per[ci],
                        )
                        # One EA-model call per condition — identical input
                        # stacking to the serial path, so identical predictions
                        # for every learner.
                        new_eas = self.ea_model.predict(X_per[ci], traces_per[ci])
                        converged = (
                            float(np.max(np.abs(new_eas - eas_per[ci]))) <= ea_tol
                        )
                        eas_per[ci] = new_eas
                        if not (ea_tol > 0 and converged):
                            still_active.append(ci)
                    active = still_active
                if not active:
                    break
            fp_span.set_attr("rounds", rounds)
        telemetry.counter_inc("stage3.conditions_predicted", len(conditions))
        return [
            ConditionPrediction(
                summaries=[f.summary for f in feedback_per[ci]],
                effective_allocations=eas_per[ci],
                boost_fractions=np.array(
                    [f.boost_fraction for f in feedback_per[ci]]
                ),
                X_flat=X_per[ci],
                traces=traces_per[ci],
            )
            for ci in range(len(conditions))
        ]
