"""Effective cache allocation (Equation 3) measurement helpers."""

from __future__ import annotations

import numpy as np

from repro.testbed.runtime import ServiceResult
from repro.workloads.base import WorkloadSpec


def window_effective_allocation(
    result: ServiceResult, sl: slice
) -> float:
    """EA measured over one query window of a service's run.

    Splitting long runs into windows multiplies the number of profile
    rows (Section 3.1: "split long running tests into multiple smaller
    measurements of effective cache allocation").
    """
    return result.window_view(sl).effective_allocation()


def ideal_effective_allocation(
    spec: WorkloadSpec,
    private_bytes: float,
    shared_bytes: float,
    gross_increase: float,
) -> float:
    """The no-contention EA a first-principles model would assume.

    EA is the *instantaneous* boosted speedup per unit gross allocation
    increase; with no sharer contending, the boosted capacity is the
    whole shared region plus private cache, and the speedup (relative
    to the default = private allocation) follows the workload's own
    miss-ratio curve.  This is the assumption behind the Figure 6
    "queueing model" baseline variants, which ignore shared-way
    contention entirely.
    """
    boosted_speed = float(
        spec.service_time(private_bytes)
        / spec.service_time(private_bytes + shared_bytes)
    )
    return boosted_speed / gross_increase
