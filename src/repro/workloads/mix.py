"""Query mixes: heterogeneous query classes within one service.

Table 2 lists "query mix" among the static runtime conditions a
profiling run controls.  A mix is a weighted set of query classes with
distinct service demands (e.g. YCSB reads vs writes, Spark short vs
long tasks); overall demands remain normalized to mean 1 so arrival
rates stay comparable across mixes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro._util.validation import check_positive


@dataclass(frozen=True)
class QueryClass:
    """One class of queries inside a mix.

    ``demand_scale`` is the class's mean demand relative to the other
    classes (the mix normalizes the overall mean to 1); ``cv`` is the
    class's internal lognormal coefficient of variation.
    """

    name: str
    weight: float
    demand_scale: float
    cv: float = 0.25

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)
        check_positive("demand_scale", self.demand_scale)
        if self.cv < 0:
            raise ValueError("cv must be >= 0")


@dataclass(frozen=True)
class QueryMix:
    """A weighted mixture of query classes with unit overall mean."""

    classes: tuple

    def __post_init__(self) -> None:
        if len(self.classes) == 0:
            raise ValueError("a mix needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError("class names must be unique")

    @property
    def weights(self) -> np.ndarray:
        w = np.array([c.weight for c in self.classes], dtype=float)
        return w / w.sum()

    @property
    def mean_scale(self) -> float:
        """Mixture mean before normalization."""
        return float(
            (self.weights * [c.demand_scale for c in self.classes]).sum()
        )

    def effective_cv(self) -> float:
        """Coefficient of variation of the normalized mixture."""
        w = self.weights
        scales = np.array([c.demand_scale for c in self.classes]) / self.mean_scale
        cvs = np.array([c.cv for c in self.classes])
        # Within-class second moment: E[X^2] = mean^2 (1 + cv^2).
        second = (w * scales**2 * (1 + cvs**2)).sum()
        var = second - 1.0
        return float(np.sqrt(max(var, 0.0)))

    def sample_demands(
        self, n: int, rng=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(demands, class indices) for ``n`` queries; overall mean 1."""
        rng = as_rng(rng)
        w = self.weights
        labels = rng.choice(len(self.classes), size=n, p=w)
        demands = np.empty(n)
        norm = self.mean_scale
        for j, cls in enumerate(self.classes):
            members = labels == j
            k = int(members.sum())
            if k == 0:
                continue
            mean_j = cls.demand_scale / norm
            if cls.cv == 0:
                demands[members] = mean_j
            else:
                sigma2 = np.log1p(cls.cv**2)
                mu = np.log(mean_j) - 0.5 * sigma2
                demands[members] = rng.lognormal(mu, np.sqrt(sigma2), size=k)
        return demands, labels


#: Ready-made mixes for the suite's online services.
YCSB_SESSION_MIX = QueryMix(
    classes=(
        QueryClass("read", weight=0.95, demand_scale=1.0, cv=0.2),
        QueryClass("update", weight=0.05, demand_scale=2.5, cv=0.4),
    )
)

SPARK_TASK_MIX = QueryMix(
    classes=(
        QueryClass("map-stage", weight=0.8, demand_scale=0.7, cv=0.3),
        QueryClass("reduce-stage", weight=0.2, demand_scale=2.2, cv=0.5),
    )
)

SOCIAL_REQUEST_MIX = QueryMix(
    classes=(
        QueryClass("read-timeline", weight=0.7, demand_scale=0.8, cv=0.4),
        QueryClass("compose-post", weight=0.25, demand_scale=1.3, cv=0.5),
        QueryClass("upload-media", weight=0.05, demand_scale=2.4, cv=0.7),
    )
)
