"""Synthetic memory access stream generators.

These streams feed the set-associative simulator (for MRC measurement)
and the counter synthesizer.  Each generator produces byte addresses
whose reuse structure matches a Table 1 cache access pattern.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng

LINE = 64


def zipf_stream(n: int, n_lines: int, skew: float = 1.2, rng=None) -> np.ndarray:
    """Zipf-distributed line popularity: moderate data reuse with a hot set.

    ``skew`` > 1 concentrates accesses on few lines (higher reuse).
    """
    if n_lines <= 0:
        raise ValueError("n_lines must be > 0")
    rng = as_rng(rng)
    ranks = rng.zipf(skew, size=n)
    lines = (ranks - 1) % n_lines
    return lines.astype(np.int64) * LINE


def sequential_stream(n: int, n_lines: int, rng=None) -> np.ndarray:
    """Streaming access: each line touched once in order (no reuse).

    Models I/O-intensive workloads like Spark windowed word count.
    """
    if n_lines <= 0:
        raise ValueError("n_lines must be > 0")
    lines = np.arange(n, dtype=np.int64) % n_lines
    return lines * LINE


def strided_stream(n: int, n_lines: int, stride: int = 8, rng=None) -> np.ndarray:
    """Strided sweep (Jacobi-style stencil): moderate reuse across sweeps."""
    if n_lines <= 0 or stride <= 0:
        raise ValueError("n_lines and stride must be > 0")
    idx = (np.arange(n, dtype=np.int64) * stride) % n_lines
    return idx * LINE


def loop_stream(n: int, n_lines: int, hot_fraction: float = 0.1, rng=None) -> np.ndarray:
    """Tight loop over a small hot set with occasional cold accesses.

    Models high-data-reuse kernels (KNN, Kmeans).
    """
    if not 0 < hot_fraction <= 1:
        raise ValueError("hot_fraction must be in (0, 1]")
    rng = as_rng(rng)
    hot_lines = max(1, int(n_lines * hot_fraction))
    is_hot = rng.random(n) < 0.9
    lines = np.where(
        is_hot,
        rng.integers(0, hot_lines, size=n),
        rng.integers(0, n_lines, size=n),
    )
    return lines.astype(np.int64) * LINE


_GENERATORS = {
    "zipf": zipf_stream,
    "sequential": sequential_stream,
    "strided": strided_stream,
    "loop": loop_stream,
}


def workload_stream(kind: str, n: int, n_lines: int, rng=None) -> np.ndarray:
    """Dispatch to the generator named ``kind``."""
    try:
        gen = _GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown stream kind {kind!r}; choose from {sorted(_GENERATORS)}"
        ) from None
    return gen(n, n_lines, rng=rng)
