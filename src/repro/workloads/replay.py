"""Trace recording and replay.

The paper's workload generator drives live benchmarks; production
deployments often must replay *recorded* traffic instead (arrival
timestamps and per-query demands captured earlier).  This module
records traces from testbed runs, persists them, and replays them
through the Stage 3 queueing simulator under alternative policies —
"what would this exact traffic have looked like with timeout T?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.queueing.ggk import QueueResult, StapQueueConfig, simulate_stap_queue

if TYPE_CHECKING:  # avoid a workloads <-> testbed import cycle
    from repro.testbed.runtime import ServiceResult


@dataclass(frozen=True)
class ArrivalTrace:
    """A recorded stream: absolute arrival times + demand multipliers."""

    arrival_times: np.ndarray
    demands: np.ndarray
    service_name: str = ""

    def __post_init__(self) -> None:
        a = np.asarray(self.arrival_times, dtype=float)
        d = np.asarray(self.demands, dtype=float)
        if a.ndim != 1 or a.shape != d.shape or a.size == 0:
            raise ValueError("need matching non-empty 1-D arrays")
        if np.any(np.diff(a) < 0):
            raise ValueError("arrival_times must be sorted")
        if np.any(d <= 0):
            raise ValueError("demands must be positive")
        object.__setattr__(self, "arrival_times", a)
        object.__setattr__(self, "demands", d)

    @property
    def n_queries(self) -> int:
        return int(self.arrival_times.size)

    @property
    def duration(self) -> float:
        return float(self.arrival_times[-1] - self.arrival_times[0])

    @property
    def mean_rate(self) -> float:
        if self.duration == 0:
            return float("inf")
        return (self.n_queries - 1) / self.duration

    @classmethod
    def from_service_result(cls, result: "ServiceResult") -> "ArrivalTrace":
        """Record the traffic a testbed run actually saw (normalized clock)."""
        return cls(
            arrival_times=result.arrival_times.copy(),
            demands=result.demands.copy(),
            service_name=result.name,
        )

    def save(self, path) -> None:
        np.savez_compressed(
            path,
            arrival_times=self.arrival_times,
            demands=self.demands,
            name=np.frombuffer(self.service_name.encode(), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path) -> "ArrivalTrace":
        with np.load(path, allow_pickle=False) as data:
            return cls(
                arrival_times=data["arrival_times"],
                demands=data["demands"],
                service_name=bytes(data["name"].tobytes()).decode(),
            )

    def scaled(self, rate_factor: float) -> "ArrivalTrace":
        """Speed the trace up (>1) or slow it down (<1) while keeping the
        same demand sequence — standard load-scaling replay."""
        if rate_factor <= 0:
            raise ValueError("rate_factor must be > 0")
        t0 = self.arrival_times[0]
        return ArrivalTrace(
            arrival_times=t0 + (self.arrival_times - t0) / rate_factor,
            demands=self.demands,
            service_name=self.service_name,
        )


def replay_through_queue(
    trace: ArrivalTrace,
    timeout: float,
    boost_speedup: float,
    n_servers: int = 2,
    mean_service_time: float = 1.0,
    warmup_fraction: float = 0.1,
) -> QueueResult:
    """Replay a recorded trace under an alternative short-term policy.

    The exact recorded arrivals and demands run through the Stage 3
    simulator with the new (timeout, boosted-rate) setting.
    """
    cfg = StapQueueConfig(
        n_servers=n_servers,
        mean_service_time=mean_service_time,
        timeout=timeout,
        boost_speedup=boost_speedup,
    )
    res = simulate_stap_queue(trace.arrival_times, trace.demands, cfg)
    return res.drop_warmup(warmup_fraction)
