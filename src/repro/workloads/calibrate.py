"""Calibrate workload miss-ratio curves against the cache substrate.

Table 1's qualitative cache access patterns are encoded twice in this
repository: as analytic MRC parameters on each :class:`WorkloadSpec`
and as synthetic access-stream generators.  This module closes the
loop: it *measures* a workload's MRC by running its stream through the
set-associative simulator, fits the exponential form, and can return a
spec recalibrated to the measurement — the workflow the paper's offline
profiling stage performs against real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import as_rng
from repro.cache.geometry import CacheGeometry
from repro.cache.mrc import MissRatioCurve, fit_exponential_mrc, measure_mrc
from repro.workloads.access import workload_stream
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of measuring one workload's MRC on the simulator."""

    workload: str
    capacities: np.ndarray
    measured_miss_ratios: np.ndarray
    fitted: MissRatioCurve
    declared: MissRatioCurve

    def max_fit_residual(self) -> float:
        """Worst |fit - measurement| over the measured capacities."""
        fit_vals = self.fitted.miss_ratio(self.capacities)
        return float(np.abs(fit_vals - self.measured_miss_ratios).max())

    def shape_agreement(self) -> float:
        """Correlation between declared and fitted curves over the
        measured capacity range (1.0 = identical shape)."""
        grid = np.linspace(
            self.capacities.min(), self.capacities.max(), 32
        )
        a = np.asarray(self.declared.miss_ratio(grid))
        b = np.asarray(self.fitted.miss_ratio(grid))
        if a.std() == 0 or b.std() == 0:
            return 1.0 if np.allclose(a, b, atol=0.05) else 0.0
        return float(np.corrcoef(a, b)[0, 1])


def calibrate_workload(
    spec: WorkloadSpec,
    geometry: CacheGeometry | None = None,
    n_accesses: int = 20000,
    footprint_lines: int | None = None,
    rng=None,
) -> CalibrationReport:
    """Measure and fit a workload's MRC from its synthetic stream.

    Parameters
    ----------
    spec:
        The workload whose ``stream_kind`` drives the measurement.
    geometry:
        Cache geometry to sweep (defaults to a 16-way scaled-down LLC).
    footprint_lines:
        Working-set size of the generated stream; defaults to four times
        the cache capacity so the sweep spans the interesting region.
    """
    rng = as_rng(rng)
    geometry = geometry or CacheGeometry(n_sets=64, n_ways=16)
    total_lines = geometry.n_sets * geometry.n_ways
    n_lines = footprint_lines or 4 * total_lines
    stream = workload_stream(spec.stream_kind, n_accesses, n_lines, rng=rng)
    way_counts = sorted({1, 2, 4, geometry.n_ways // 2, geometry.n_ways})
    caps, ratios = measure_mrc(stream, geometry, way_counts=way_counts)
    fitted = fit_exponential_mrc(caps, ratios)
    return CalibrationReport(
        workload=spec.name,
        capacities=caps,
        measured_miss_ratios=ratios,
        fitted=fitted,
        declared=spec.mrc,
    )


def recalibrated_spec(
    spec: WorkloadSpec, report: CalibrationReport, scale_to: float
) -> WorkloadSpec:
    """A copy of ``spec`` whose MRC uses the measured *shape*, rescaled
    so its footprint matches ``scale_to`` bytes (measurements run on a
    scaled-down cache; real footprints are scaled back up)."""
    if scale_to <= 0:
        raise ValueError("scale_to must be > 0")
    measured_span = report.capacities.max()
    factor = scale_to / measured_span
    fitted = report.fitted
    rescaled = MissRatioCurve(
        m0=fitted.m0,
        m_inf=fitted.m_inf,
        footprint_bytes=fitted.footprint_bytes * factor,
    )
    return replace(spec, mrc=rescaled)


def calibrate_suite(specs, rng=None) -> dict[str, CalibrationReport]:
    """Calibrate several workloads with independent streams."""
    rng = as_rng(rng)
    return {
        spec.name: calibrate_workload(spec, rng=rng) for spec in specs
    }
