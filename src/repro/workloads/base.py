"""Workload specification: how service time responds to cache allocation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng
from repro.cache.mrc import MissRatioCurve

MB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadSpec:
    """A collocatable online service.

    Parameters
    ----------
    name:
        Short identifier (Table 1 "Wrk ID").
    description:
        Table 1 description.
    cache_pattern:
        Table 1 qualitative cache access pattern.
    mrc:
        Miss-ratio curve mapping allocated LLC capacity to miss ratio.
    baseline_service_time:
        Mean service time (seconds) at the baseline allocation
        (``baseline_capacity`` LLC + 2 cores, per Section 5).
    baseline_capacity:
        LLC bytes reserved for baseline performance (paper: 2 MB).
    memory_boundedness:
        Fraction of baseline execution time spent in memory stalls; the
        stall component scales with the miss ratio, so this controls how
        much extra cache helps.
    service_cv:
        Coefficient of variation of per-query service demand (lognormal).
    access_intensity:
        LLC fill pressure in accesses/second; drives contention weighting
        and counter magnitudes.
    store_fraction:
        Fraction of memory accesses that are stores (counter attribution).
    n_processes:
        OS processes/threads mapped to this workload's allocation setting.
    stream_kind:
        Which synthetic access-stream generator models this workload
        (see :mod:`repro.workloads.access`).
    """

    name: str
    description: str
    cache_pattern: str
    mrc: MissRatioCurve
    baseline_service_time: float
    memory_boundedness: float
    service_cv: float = 0.35
    access_intensity: float = 1e6
    store_fraction: float = 0.3
    n_processes: int = 16
    baseline_capacity: float = 2 * MB
    stream_kind: str = "zipf"
    query_mix: "object | None" = None  # optional QueryMix (Table 2 "query mix")

    def __post_init__(self) -> None:
        if self.baseline_service_time <= 0:
            raise ValueError("baseline_service_time must be > 0")
        if not 0.0 <= self.memory_boundedness <= 1.0:
            raise ValueError("memory_boundedness must be in [0, 1]")
        if self.service_cv < 0:
            raise ValueError("service_cv must be >= 0")
        if self.access_intensity <= 0:
            raise ValueError("access_intensity must be > 0")

    # -- service-time response to cache -----------------------------------

    def service_time(self, capacity_bytes) -> np.ndarray | float:
        """Expected service time when allocated ``capacity_bytes`` of LLC.

        The compute component is capacity-independent; the memory-stall
        component scales with the miss ratio relative to baseline:

            T(c) = T_b * [(1 - beta) + beta * m(c) / m(c_b)]
        """
        m_base = self.mrc.miss_ratio(self.baseline_capacity)
        if m_base <= 0:
            return self.baseline_service_time
        m = self.mrc.miss_ratio(capacity_bytes)
        factor = (1.0 - self.memory_boundedness) + self.memory_boundedness * (
            np.asarray(m) / m_base
        )
        out = self.baseline_service_time * factor
        return float(out) if np.ndim(out) == 0 else out

    def speedup(self, capacity_bytes: float) -> float:
        """Baseline service time divided by service time at ``capacity_bytes``."""
        return self.baseline_service_time / float(self.service_time(capacity_bytes))

    def fill_intensity(self, capacity_bytes: float) -> float:
        """LLC fill (miss) pressure at the given capacity: accesses x miss ratio.

        Used by the contention model to split shared ways.
        """
        return self.access_intensity * float(self.mrc.miss_ratio(capacity_bytes))

    # -- stochastic per-query demand ---------------------------------------

    def _lognormal_params(self) -> tuple[float, float]:
        """(mu, sigma) of a lognormal with mean 1 and the configured CV."""
        cv2 = self.service_cv**2
        sigma2 = np.log1p(cv2)
        mu = -0.5 * sigma2
        return mu, float(np.sqrt(sigma2))

    def sample_demands(self, n: int, rng=None) -> np.ndarray:
        """Per-query service demands, normalized to mean 1.

        Demands are *work* multipliers: actual service time is demand x
        :meth:`service_time` at the instantaneous allocation.  When a
        :class:`~repro.workloads.mix.QueryMix` is attached, demands come
        from the mixture instead of the single lognormal.
        """
        rng = as_rng(rng)
        if self.query_mix is not None:
            demands, _ = self.query_mix.sample_demands(n, rng=rng)
            return demands
        if self.service_cv == 0:
            return np.ones(n)
        mu, sigma = self._lognormal_params()
        return rng.lognormal(mu, sigma, size=n)

    def with_mix(self, mix) -> "WorkloadSpec":
        """A copy of this spec using ``mix`` for query demands, with
        ``service_cv`` updated to the mixture's effective CV."""
        from dataclasses import replace

        return replace(self, query_mix=mix, service_cv=mix.effective_cv())
