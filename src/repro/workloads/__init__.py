"""Workload substrate: synthetic analogues of the Table 1 benchmarks.

Each workload is described by a miss-ratio curve, a memory-boundedness
factor, and a service-time distribution; together these determine how
response time reacts to cache allocation — the behaviour the paper's
models must learn.
"""

from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import (
    WORKLOADS,
    get_workload,
    all_workloads,
    workload_pairs,
    table1_rows,
)
from repro.workloads.social import SocialGraph, build_social_workload
from repro.workloads.mix import (
    QueryClass,
    QueryMix,
    YCSB_SESSION_MIX,
    SPARK_TASK_MIX,
    SOCIAL_REQUEST_MIX,
)
from repro.workloads.access import (
    zipf_stream,
    sequential_stream,
    strided_stream,
    loop_stream,
    workload_stream,
)
from repro.workloads.arrivals import (
    PoissonArrivals,
    DeterministicArrivals,
    MarkovModulatedArrivals,
    arrivals_for_utilization,
)
from repro.workloads.replay import ArrivalTrace, replay_through_queue

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "get_workload",
    "all_workloads",
    "workload_pairs",
    "table1_rows",
    "SocialGraph",
    "build_social_workload",
    "QueryClass",
    "QueryMix",
    "YCSB_SESSION_MIX",
    "SPARK_TASK_MIX",
    "SOCIAL_REQUEST_MIX",
    "zipf_stream",
    "sequential_stream",
    "strided_stream",
    "loop_stream",
    "workload_stream",
    "PoissonArrivals",
    "DeterministicArrivals",
    "MarkovModulatedArrivals",
    "arrivals_for_utilization",
    "ArrivalTrace",
    "replay_through_queue",
]
