"""The Social macro-benchmark: 36 microservices in 30 containers.

Mirrors DeathStarBench's social network [Gan et al., ASPLOS'19] at the
level the paper uses it: a request fans out across a layered microservice
DAG; end-to-end latency is the critical path.  The DAG gives Social the
heavier-tailed service distribution that (per Section 5.2) defeats
dynaSprint's low-arrival-rate calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro._util import as_rng
from repro.cache.mrc import MissRatioCurve
from repro.workloads.base import MB, WorkloadSpec

N_MICROSERVICES = 36
N_CONTAINERS = 30


@dataclass(frozen=True)
class _Tier:
    name: str
    n_services: int
    mean_latency_share: float  # fraction of end-to-end budget per service


#: Frontend -> logic -> caching -> storage tiers; sizes sum to 36.
_TIERS = (
    _Tier("frontend", 3, 0.10),
    _Tier("compose", 9, 0.25),
    _Tier("logic", 12, 0.30),
    _Tier("cache", 6, 0.15),
    _Tier("storage", 6, 0.20),
)


class SocialGraph:
    """Layered microservice DAG with critical-path latency sampling."""

    def __init__(self, rng=None):
        rng = as_rng(rng)
        self.graph = nx.DiGraph()
        layers: list[list[str]] = []
        for tier in _TIERS:
            nodes = [f"{tier.name}-{i}" for i in range(tier.n_services)]
            for node in nodes:
                self.graph.add_node(
                    node,
                    tier=tier.name,
                    latency_share=tier.mean_latency_share / tier.n_services,
                    container=None,
                )
            layers.append(nodes)
        # Each service calls 1-3 services of the next tier.
        for upstream, downstream in zip(layers, layers[1:]):
            for u in upstream:
                n_out = int(rng.integers(1, min(3, len(downstream)) + 1))
                targets = rng.choice(len(downstream), size=n_out, replace=False)
                for t in targets:
                    self.graph.add_edge(u, downstream[int(t)])
            # Guarantee every downstream service has a caller.
            for d in downstream:
                if self.graph.in_degree(d) == 0:
                    u = upstream[int(rng.integers(0, len(upstream)))]
                    self.graph.add_edge(u, d)
        self._layers = layers
        self._assign_containers(rng)
        self._calibration: dict[float, float] = {}

    def _assign_containers(self, rng) -> None:
        """Pack 36 services into 30 containers (some share a container)."""
        nodes = list(self.graph.nodes)
        containers = list(range(N_CONTAINERS)) + list(
            rng.integers(0, N_CONTAINERS, size=len(nodes) - N_CONTAINERS)
        )
        rng.shuffle(containers)
        for node, c in zip(nodes, containers):
            self.graph.nodes[node]["container"] = int(c)

    @property
    def n_services(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_containers(self) -> int:
        return len({d["container"] for _, d in self.graph.nodes(data=True)})

    def entry_nodes(self) -> list[str]:
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def sample_latency(
        self, n: int, mean_total: float = 1.0, cv: float = 0.6, rng=None
    ) -> np.ndarray:
        """End-to-end latency of ``n`` requests (critical path over the DAG).

        Per-service latencies are lognormal; the max-over-paths
        composition produces the right-skewed, heavy-tailed aggregate
        typical of microservice fanout.  Latencies are calibrated so the
        *end-to-end mean* equals ``mean_total`` (the 7.5 ms baseline the
        paper quotes is an end-to-end figure).
        """
        raw = self._raw_latency(n, cv, as_rng(rng))
        return raw * (mean_total / self._mean_scale(cv))

    def _mean_scale(self, cv: float) -> float:
        """Expected raw critical-path latency at unit budget (cached)."""
        if cv not in self._calibration:
            probe = self._raw_latency(2000, cv, np.random.default_rng(987654321))
            self._calibration[cv] = float(probe.mean())
        return self._calibration[cv]

    def _raw_latency(self, n: int, cv: float, rng) -> np.ndarray:
        order = list(nx.topological_sort(self.graph))
        node_idx = {node: i for i, node in enumerate(order)}
        shares = np.array(
            [self.graph.nodes[node]["latency_share"] for node in order]
        )
        sigma2 = np.log1p(cv**2)
        mu = np.log(shares) - 0.5 * sigma2
        sigma = np.sqrt(sigma2)
        # (n, n_nodes) matrix of per-node latencies for all requests at once.
        lat = rng.lognormal(mu[None, :], sigma, size=(n, len(order)))
        finish = np.zeros_like(lat)
        preds = [
            [node_idx[p] for p in self.graph.predecessors(node)] for node in order
        ]
        for j, pp in enumerate(preds):
            start = finish[:, pp].max(axis=1) if pp else 0.0
            finish[:, j] = start + lat[:, j]
        return finish.max(axis=1)

    def empirical_cv(
        self, mean_total: float = 1.0, n: int = 4000, cv: float = 0.6, rng=None
    ) -> float:
        """Coefficient of variation of the end-to-end latency."""
        samples = self.sample_latency(n, mean_total=mean_total, cv=cv, rng=rng)
        return float(samples.std() / samples.mean())


def build_social_workload(
    baseline_service_time: float = 7.5e-3, rng=None
) -> WorkloadSpec:
    """Table 1's Social workload with a DAG-derived service-time CV.

    The paper reports 7.5 ms baseline response time and up to 2000 req/s.
    """
    graph = SocialGraph(rng=rng)
    # Per-service latency CV of 2.0 reflects the bursty container-level
    # interference the paper attributes to Social; the DAG's max-over-paths
    # composition turns it into the suite's heaviest end-to-end tail.
    cv = graph.empirical_cv(
        mean_total=baseline_service_time, cv=2.0, rng=as_rng(rng)
    )
    return WorkloadSpec(
        name="social",
        description="Social network implemented with loosely-coupled microservices",
        cache_pattern="Moderate data reuse, moderate cache misses",
        mrc=MissRatioCurve(m0=0.50, m_inf=0.18, footprint_bytes=5 * MB),
        baseline_service_time=baseline_service_time,
        memory_boundedness=0.45,
        service_cv=cv,
        access_intensity=2.2e6,
        store_fraction=0.35,
        n_processes=N_MICROSERVICES,
        stream_kind="zipf",
    )
