"""The Table 1 benchmark suite, calibrated to its qualitative patterns.

MRC and memory-boundedness parameters are chosen so that each workload's
response to cache allocation matches the paper's description: high-reuse
kernels (KNN, Kmeans) have small footprints and gain little from extra
ways; streaming workloads (Spstream) have high compulsory miss floors;
Redis is highly memory-bound so extra cache lines speed it up a lot
(Section 5.2); baseline service times come from Section 5.
"""

from __future__ import annotations

import itertools

from repro.cache.mrc import MissRatioCurve
from repro.workloads.base import MB, WorkloadSpec
from repro.workloads.social import build_social_workload


def _make_suite() -> dict[str, WorkloadSpec]:
    specs = [
        WorkloadSpec(
            name="jacobi",
            description="Solves the Helmholtz equation",
            cache_pattern="Memory intensive, moderate cache misses",
            mrc=MissRatioCurve(m0=0.55, m_inf=0.16, footprint_bytes=8 * MB),
            baseline_service_time=2.0,
            memory_boundedness=0.68,
            service_cv=0.25,
            access_intensity=3.0e6,
            store_fraction=0.4,
            n_processes=16,
            stream_kind="strided",
        ),
        WorkloadSpec(
            name="knn",
            description="K-nearest neighbors",
            cache_pattern="High data reuse, low cache misses",
            mrc=MissRatioCurve(m0=0.40, m_inf=0.02, footprint_bytes=0.6 * MB),
            baseline_service_time=0.5,
            memory_boundedness=0.30,
            service_cv=0.20,
            access_intensity=1.2e6,
            store_fraction=0.15,
            n_processes=16,
            stream_kind="loop",
        ),
        WorkloadSpec(
            name="kmeans",
            description="Cluster analysis in data mining",
            cache_pattern="High data reuse, low cache misses",
            mrc=MissRatioCurve(m0=0.45, m_inf=0.03, footprint_bytes=0.8 * MB),
            baseline_service_time=1.2,
            memory_boundedness=0.35,
            service_cv=0.22,
            access_intensity=1.4e6,
            store_fraction=0.2,
            n_processes=16,
            stream_kind="loop",
        ),
        WorkloadSpec(
            name="spkmeans",
            description="Spark cluster analysis",
            cache_pattern="Higher cache misses b/c of tasks execution",
            mrc=MissRatioCurve(m0=0.60, m_inf=0.12, footprint_bytes=6 * MB),
            baseline_service_time=81.0,
            memory_boundedness=0.55,
            service_cv=0.40,
            access_intensity=2.5e6,
            store_fraction=0.3,
            n_processes=16,
            stream_kind="zipf",
        ),
        WorkloadSpec(
            name="spstream",
            description="Spark extract words from stream",
            cache_pattern="I/O intensive, high cache misses",
            mrc=MissRatioCurve(m0=0.80, m_inf=0.48, footprint_bytes=12 * MB),
            baseline_service_time=1.0,
            memory_boundedness=0.45,
            service_cv=0.45,
            access_intensity=3.5e6,
            store_fraction=0.45,
            n_processes=16,
            stream_kind="sequential",
        ),
        WorkloadSpec(
            name="bfs",
            description="Breadth-first-search",
            cache_pattern="Limited data reuse, moderate cache misses",
            mrc=MissRatioCurve(m0=0.55, m_inf=0.26, footprint_bytes=10 * MB),
            baseline_service_time=1.5,
            memory_boundedness=0.60,
            service_cv=0.30,
            access_intensity=2.8e6,
            store_fraction=0.2,
            n_processes=16,
            stream_kind="zipf",
        ),
        build_social_workload(rng=2022),
        WorkloadSpec(
            name="redis",
            description="YCSB: session store recording recent actions",
            cache_pattern="Low data reuse, high cache misses",
            mrc=MissRatioCurve(m0=0.85, m_inf=0.22, footprint_bytes=4 * MB),
            baseline_service_time=1.0e-3,
            memory_boundedness=0.78,
            service_cv=0.30,
            access_intensity=4.0e6,
            store_fraction=0.5,
            n_processes=4,
            stream_kind="zipf",
        ),
    ]
    return {s.name: s for s in specs}


#: Registry keyed by workload id (Table 1 names, lowercased).
WORKLOADS: dict[str, WorkloadSpec] = _make_suite()


def get_workload(name: str) -> WorkloadSpec:
    """Look up one workload; raises ``KeyError`` with the valid names."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def all_workloads() -> list[WorkloadSpec]:
    """All eight Table 1 workloads."""
    return list(WORKLOADS.values())


def workload_pairs() -> list[tuple[WorkloadSpec, WorkloadSpec]]:
    """Every ordered pairwise collocation (as profiled in Section 5.1)."""
    return [
        (a, b)
        for a, b in itertools.permutations(all_workloads(), 2)
    ]


def table1_rows() -> list[dict[str, str]]:
    """Table 1 as structured rows (for the bench harness)."""
    return [
        {
            "wrk_id": s.name,
            "description": s.description,
            "cache_access_pattern": s.cache_pattern,
        }
        for s in all_workloads()
    ]
