"""Query arrival processes.

The paper defines arrival rate relative to service time (Table 2:
25%-95% utilization) with exponential inter-arrival times (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro._util.validation import check_positive


@dataclass(frozen=True)
class PoissonArrivals:
    """Exponential inter-arrival times at the given rate (queries/sec)."""

    rate: float

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)

    def sample(self, n: int, rng=None) -> np.ndarray:
        """Arrival timestamps for ``n`` queries, starting after t=0."""
        rng = as_rng(rng)
        gaps = rng.exponential(1.0 / self.rate, size=n)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class DeterministicArrivals:
    """Evenly spaced arrivals (closed-loop load generators)."""

    rate: float

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)

    def sample(self, n: int, rng=None) -> np.ndarray:
        period = 1.0 / self.rate
        return period * np.arange(1, n + 1, dtype=float)


@dataclass(frozen=True)
class MarkovModulatedArrivals:
    """Two-state MMPP: bursty arrivals with the same long-run rate.

    The process alternates between a calm and a burst state with
    exponentially distributed dwell times; arrivals are Poisson at
    ``rate * calm_factor`` and ``rate * burst_factor`` respectively.
    Online services exhibit exactly this burstiness, and it is what
    breaks timeout settings calibrated at a steady low rate
    (Section 5.2's dynaSprint discussion).
    """

    rate: float
    burst_factor: float = 4.0
    burst_fraction: float = 0.2
    mean_dwell: float = 10.0  # mean state dwell time in service-time units

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        if self.burst_factor <= 1.0:
            raise ValueError("burst_factor must be > 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        check_positive("mean_dwell", self.mean_dwell)

    @property
    def calm_factor(self) -> float:
        """Calm-state rate multiplier keeping the long-run rate at ``rate``."""
        return (1.0 - self.burst_factor * self.burst_fraction) / (
            1.0 - self.burst_fraction
        )

    def sample(self, n: int, rng=None) -> np.ndarray:
        calm = self.calm_factor
        if calm <= 0:
            raise ValueError(
                "burst_factor x burst_fraction too large: calm rate would be <= 0"
            )
        rng = as_rng(rng)
        out = np.empty(n)
        t = 0.0
        i = 0
        # Dwell times chosen so the long-run burst-state fraction matches.
        dwell_burst = self.mean_dwell * self.burst_fraction * 2
        dwell_calm = self.mean_dwell * (1 - self.burst_fraction) * 2
        in_burst = rng.random() < self.burst_fraction
        state_end = t + rng.exponential(dwell_burst if in_burst else dwell_calm)
        while i < n:
            lam = self.rate * (self.burst_factor if in_burst else calm)
            gap = rng.exponential(1.0 / lam)
            if t + gap > state_end:
                t = state_end
                in_burst = not in_burst
                state_end = t + rng.exponential(
                    dwell_burst if in_burst else dwell_calm
                )
                continue
            t += gap
            out[i] = t
            i += 1
        return out


def arrivals_for_utilization(
    utilization: float,
    mean_service_time: float,
    n_servers: int = 1,
    kind: str = "poisson",
) -> "PoissonArrivals | DeterministicArrivals":
    """Arrival process achieving the target utilization.

    ``utilization`` is the paper's "query inter-arrival rate relative to
    service time": rho = lambda * E[S] / k.
    """
    if not 0 < utilization < 1:
        raise ValueError(f"utilization must be in (0, 1), got {utilization}")
    check_positive("mean_service_time", mean_service_time)
    rate = utilization * n_servers / mean_service_time
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "deterministic":
        return DeterministicArrivals(rate)
    raise ValueError(f"unknown arrival kind {kind!r}")
