"""Cache Allocation Technology (CAT) substrate.

Implements the data path of Figure 1 in the paper: a set-associative
last-level cache whose fill (write-enable) logic is constrained by
contiguous way masks, plus the class-of-service bookkeeping that Intel
CAT exposes, analytic miss-ratio curves, and the shared-way contention
model used by the collocation testbed.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.cat import (
    WayMask,
    AllocationSetting,
    ShortTermPolicy,
    CatController,
    private_region,
)
from repro.cache.setassoc import SetAssociativeCache, AccessResult
from repro.cache.hierarchy import CacheHierarchy, HierarchyCounters, CacheLevelSpec
from repro.cache.mrc import MissRatioCurve, fit_exponential_mrc, measure_mrc
from repro.cache.contention import SharedWayContention
from repro.cache.monitor import CacheMonitor, MonitorReading

__all__ = [
    "CacheGeometry",
    "WayMask",
    "AllocationSetting",
    "ShortTermPolicy",
    "CatController",
    "private_region",
    "SetAssociativeCache",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyCounters",
    "CacheLevelSpec",
    "MissRatioCurve",
    "fit_exponential_mrc",
    "measure_mrc",
    "SharedWayContention",
    "CacheMonitor",
    "MonitorReading",
]
