"""Set-associative cache simulator with CAT-style per-way write enables.

Faithful to the Figure 1 data path: lookups search every way of the
indexed set (a hit can land on any way), while fills are restricted to
the ways enabled for the accessing class of service.  Replacement is LRU
among the enabled ways.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.cat import WayMask
from repro.cache.geometry import CacheGeometry


@dataclass
class AccessResult:
    """Outcome of a batch of accesses."""

    hits: np.ndarray  # bool per access
    n_hits: int
    n_misses: int
    n_evictions: int

    @property
    def n_accesses(self) -> int:
        return self.n_hits + self.n_misses

    @property
    def miss_ratio(self) -> float:
        n = self.n_accesses
        return self.n_misses / n if n else 0.0


class SetAssociativeCache:
    """One cache level.

    State is held in dense NumPy arrays (``tags``, ``valid``, ``owner``,
    ``last_use``) so the per-access loop touches contiguous rows; the
    batch API amortizes address decomposition across the whole stream.
    """

    INVALID_OWNER = -1

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        g = geometry
        self.tags = np.zeros((g.n_sets, g.n_ways), dtype=np.int64)
        self.valid = np.zeros((g.n_sets, g.n_ways), dtype=bool)
        self.owner = np.full((g.n_sets, g.n_ways), self.INVALID_OWNER, dtype=np.int32)
        self.last_use = np.zeros((g.n_sets, g.n_ways), dtype=np.int64)
        self._clock = 0
        # Per-class-of-service event counts (feeds CMT/MBM monitoring).
        self.installs_by_owner: dict[int, int] = {}
        self.evictions_by_owner: dict[int, int] = {}

    def reset(self) -> None:
        """Invalidate all lines."""
        self.valid[:] = False
        self.owner[:] = self.INVALID_OWNER
        self.last_use[:] = 0
        self._clock = 0
        self.installs_by_owner.clear()
        self.evictions_by_owner.clear()

    @property
    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        return float(self.valid.mean())

    def occupancy_by_owner(self) -> dict[int, int]:
        """Number of valid lines per class-of-service id."""
        owners = self.owner[self.valid]
        ids, counts = np.unique(owners, return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}

    def flush_ways(self, mask: WayMask) -> int:
        """Invalidate all lines in the given ways; returns lines flushed."""
        cols = mask.ways()
        cols = cols[cols < self.geometry.n_ways]
        flushed = int(self.valid[:, cols].sum())
        self.valid[:, cols] = False
        self.owner[:, cols] = self.INVALID_OWNER
        return flushed

    def access(
        self,
        addresses,
        mask: WayMask | None = None,
        cos_id: int = 0,
    ) -> AccessResult:
        """Run a stream of byte addresses through the cache.

        Parameters
        ----------
        addresses:
            1-D array of byte addresses, in program order.
        mask:
            Ways this class of service may *fill*.  ``None`` enables all
            ways.  Hits are honoured regardless of the mask, exactly as
            CAT behaves.
        cos_id:
            Class-of-service id recorded as line owner on fill.
        """
        g = self.geometry
        if mask is None:
            mask = WayMask(0, g.n_ways)
        if mask.end > g.n_ways:
            raise ValueError(f"mask {mask} exceeds {g.n_ways} ways")
        tags, sets = g.split_address(addresses)
        n = tags.shape[0]
        hits = np.zeros(n, dtype=bool)
        n_evictions = 0

        fill_lo, fill_hi = mask.offset, mask.end
        tags_arr, valid_arr, owner_arr, last_use = (
            self.tags,
            self.valid,
            self.owner,
            self.last_use,
        )
        clock = self._clock
        for i in range(n):
            s = sets[i]
            t = tags[i]
            clock += 1
            row_tags = tags_arr[s]
            row_valid = valid_arr[s]
            match = np.nonzero(row_valid & (row_tags == t))[0]
            if match.size:
                w = match[0]
                hits[i] = True
                last_use[s, w] = clock
                continue
            # Miss: fill into the enabled ways, preferring an invalid way,
            # otherwise evicting the LRU line among the enabled ways.
            window_valid = row_valid[fill_lo:fill_hi]
            empty = np.nonzero(~window_valid)[0]
            if empty.size:
                w = fill_lo + empty[0]
            else:
                w = fill_lo + int(np.argmin(last_use[s, fill_lo:fill_hi]))
                n_evictions += 1
                victim = int(owner_arr[s, w])
                self.evictions_by_owner[victim] = (
                    self.evictions_by_owner.get(victim, 0) + 1
                )
            tags_arr[s, w] = t
            valid_arr[s, w] = True
            owner_arr[s, w] = cos_id
            last_use[s, w] = clock
            self.installs_by_owner[cos_id] = (
                self.installs_by_owner.get(cos_id, 0) + 1
            )

        self._clock = clock
        n_hits = int(hits.sum())
        return AccessResult(
            hits=hits,
            n_hits=n_hits,
            n_misses=n - n_hits,
            n_evictions=n_evictions,
        )
