"""Three-level cache hierarchy (L1D/L1I, L2, LLC) used by the profiler.

The hierarchy routes an access stream through successive levels: a miss
at level *i* is forwarded to level *i+1*.  Only the LLC honours CAT way
masks.  Per-level hit/miss counts feed the synthetic architectural
counters in :mod:`repro.counters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.cat import WayMask
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache


@dataclass(frozen=True)
class CacheLevelSpec:
    """Size/associativity spec for one level."""

    name: str
    size_bytes: int
    n_ways: int
    line_size: int = 64

    def geometry(self) -> CacheGeometry:
        return CacheGeometry.from_size(self.size_bytes, self.n_ways, self.line_size)


#: Per-core private levels loosely modeled on a Broadwell Xeon.
DEFAULT_L1D = CacheLevelSpec("L1D", 32 * 1024, 8)
DEFAULT_L1I = CacheLevelSpec("L1I", 32 * 1024, 8)
DEFAULT_L2 = CacheLevelSpec("L2", 256 * 1024, 8)


@dataclass
class HierarchyCounters:
    """Raw event counts produced by one simulated access batch.

    Field names mirror the architectural counters sampled in Section 5
    (loads, stores and misses per level).
    """

    l1d_loads: int = 0
    l1d_load_misses: int = 0
    l1d_stores: int = 0
    l1d_store_misses: int = 0
    l1i_loads: int = 0
    l1i_load_misses: int = 0
    l2_requests: int = 0
    l2_misses: int = 0
    l2_stores: int = 0
    llc_loads: int = 0
    llc_load_misses: int = 0
    llc_stores: int = 0
    llc_store_misses: int = 0
    llc_evictions: int = 0

    def merge(self, other: "HierarchyCounters") -> "HierarchyCounters":
        out = HierarchyCounters()
        for f in vars(out):
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class CacheHierarchy:
    """L1 + L2 private caches in front of a shared, CAT-managed LLC.

    The LLC instance is shared between hierarchies of collocated
    workloads; each workload wraps it with its own L1/L2.
    """

    llc: SetAssociativeCache
    l1d_spec: CacheLevelSpec = DEFAULT_L1D
    l2_spec: CacheLevelSpec = DEFAULT_L2
    cos_id: int = 0
    l1d: SetAssociativeCache = field(init=False)
    l2: SetAssociativeCache = field(init=False)

    def __post_init__(self) -> None:
        self.l1d = SetAssociativeCache(self.l1d_spec.geometry())
        self.l2 = SetAssociativeCache(self.l2_spec.geometry())

    def access(
        self,
        addresses,
        llc_mask: WayMask | None = None,
        store_fraction: float = 0.3,
        rng: np.random.Generator | None = None,
    ) -> HierarchyCounters:
        """Route a load/store stream through L1D -> L2 -> LLC.

        ``store_fraction`` of the accesses are accounted as stores (the
        simulator is write-allocate, so the routing is identical; only
        the counter attribution differs).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = addresses.shape[0]
        c = HierarchyCounters()
        if n == 0:
            return c
        if rng is None:
            rng = np.random.default_rng(0)
        is_store = rng.random(n) < store_fraction

        r1 = self.l1d.access(addresses)
        c.l1d_loads = int((~is_store).sum())
        c.l1d_stores = int(is_store.sum())
        miss1 = ~r1.hits
        c.l1d_load_misses = int((miss1 & ~is_store).sum())
        c.l1d_store_misses = int((miss1 & is_store).sum())

        a2 = addresses[miss1]
        s2 = is_store[miss1]
        r2 = self.l2.access(a2)
        c.l2_requests = a2.shape[0]
        c.l2_stores = int(s2.sum())
        miss2 = ~r2.hits
        c.l2_misses = int(miss2.sum())

        a3 = a2[miss2]
        s3 = s2[miss2]
        r3 = self.llc.access(a3, mask=llc_mask, cos_id=self.cos_id)
        miss3 = ~r3.hits
        c.llc_loads = int((~s3).sum())
        c.llc_stores = int(s3.sum())
        c.llc_load_misses = int((miss3 & ~s3).sum())
        c.llc_store_misses = int((miss3 & s3).sum())
        c.llc_evictions = r3.n_evictions
        return c
