"""Analytic miss-ratio curves (MRCs).

The testbed needs a fast mapping from *allocated LLC capacity* to *miss
ratio* for each workload.  We use the classic exponential-footprint
form

    m(c) = m_inf + (m0 - m_inf) * exp(-c / footprint)

which captures the qualitative cache access patterns of Table 1: high
data reuse means a small ``footprint`` (misses fall quickly with
capacity); streaming/I/O-bound workloads have ``m_inf`` close to ``m0``
(extra cache barely helps).  Curves can be specified directly or fitted
from the set-associative simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from repro.cache.cat import WayMask
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache


@dataclass(frozen=True)
class MissRatioCurve:
    """Exponential-footprint miss-ratio curve.

    Parameters
    ----------
    m0:
        Miss ratio at (near) zero cache.
    m_inf:
        Compulsory miss floor as capacity grows unbounded.
    footprint_bytes:
        Capacity scale over which the curve decays.
    """

    m0: float
    m_inf: float
    footprint_bytes: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.m_inf <= self.m0 <= 1.0:
            raise ValueError(
                f"need 0 <= m_inf <= m0 <= 1, got m0={self.m0}, m_inf={self.m_inf}"
            )
        if self.footprint_bytes <= 0:
            raise ValueError(f"footprint_bytes must be > 0, got {self.footprint_bytes}")

    def miss_ratio(self, capacity_bytes) -> np.ndarray | float:
        """Miss ratio at the given capacity (scalar or array, bytes)."""
        c = np.asarray(capacity_bytes, dtype=float)
        out = self.m_inf + (self.m0 - self.m_inf) * np.exp(-c / self.footprint_bytes)
        return float(out) if out.ndim == 0 else out

    def miss_ratio_ways(self, n_ways, way_size_bytes: float) -> np.ndarray | float:
        """Miss ratio when allocated ``n_ways`` ways of the given size."""
        return self.miss_ratio(np.asarray(n_ways, dtype=float) * way_size_bytes)

    def marginal_utility(self, capacity_bytes: float) -> float:
        """-d(miss ratio)/d(capacity): how much an extra byte helps."""
        return (
            (self.m0 - self.m_inf)
            / self.footprint_bytes
            * float(np.exp(-capacity_bytes / self.footprint_bytes))
        )


def fit_exponential_mrc(capacities, miss_ratios) -> MissRatioCurve:
    """Least-squares fit of the exponential form to measured points."""
    c = np.asarray(capacities, dtype=float)
    m = np.asarray(miss_ratios, dtype=float)
    if c.shape != m.shape or c.ndim != 1 or c.size < 3:
        raise ValueError("need matching 1-D arrays with at least 3 points")

    def model(x, m0, m_inf, fp):
        return m_inf + (m0 - m_inf) * np.exp(-x / fp)

    m0_guess = float(m.max())
    minf_guess = float(m.min())
    fp_guess = float(np.median(c)) or 1.0
    popt, _ = curve_fit(
        model,
        c,
        m,
        p0=[m0_guess, max(minf_guess, 1e-6), fp_guess],
        bounds=([0.0, 0.0, 1e-9], [1.0, 1.0, np.inf]),
        maxfev=20000,
    )
    m0, m_inf, fp = popt
    if m_inf > m0:  # degenerate fit on flat data
        m0 = m_inf = float(m.mean())
    return MissRatioCurve(m0=float(m0), m_inf=float(m_inf), footprint_bytes=float(fp))


def measure_mrc(
    address_stream: np.ndarray,
    geometry: CacheGeometry,
    way_counts=None,
    warmup_fraction: float = 0.25,
) -> tuple[np.ndarray, np.ndarray]:
    """Measure miss ratio vs allocated ways with the set-associative sim.

    Returns ``(capacities_bytes, miss_ratios)`` suitable for
    :func:`fit_exponential_mrc`.
    """
    stream = np.asarray(address_stream, dtype=np.int64)
    if way_counts is None:
        way_counts = np.arange(1, geometry.n_ways + 1)
    way_counts = np.asarray(way_counts, dtype=int)
    warm = int(stream.shape[0] * warmup_fraction)
    caps = []
    ratios = []
    for w in way_counts:
        cache = SetAssociativeCache(geometry)
        mask = WayMask(0, int(w))
        cache.access(stream[:warm], mask=mask)
        res = cache.access(stream[warm:], mask=mask)
        caps.append(w * geometry.way_size_bytes)
        ratios.append(res.miss_ratio)
    return np.asarray(caps, dtype=float), np.asarray(ratios, dtype=float)
