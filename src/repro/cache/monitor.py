"""Cache Monitoring Technology (CMT) and Memory Bandwidth Monitoring.

Intel ships CAT alongside CMT/MBM (reference [5] of the paper is
intel.com's "cache monitoring technology" page): per-class-of-service
LLC occupancy and memory-bandwidth readings.  ``CacheMonitor`` provides
the same two observables over the set-associative simulator — the
runtime counterpart of the offline counter profiler, and what a
production deployment of dCat-style managers polls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.setassoc import SetAssociativeCache


@dataclass(frozen=True)
class MonitorReading:
    """One CMT/MBM sample for a class of service."""

    cos_id: int
    occupancy_bytes: int
    occupancy_fraction: float
    installs: int
    evictions_suffered: int
    local_bandwidth_bytes: int  # MBM-style: lines installed x line size

    @property
    def churn_ratio(self) -> float:
        """Evictions suffered per line installed — a contention signal."""
        return self.evictions_suffered / self.installs if self.installs else 0.0


class CacheMonitor:
    """Per-COS occupancy and bandwidth monitor for one cache instance.

    Bandwidth readings are deltas since the previous ``read`` of the
    same COS, mirroring MBM's monotonically increasing MSR counters.
    """

    def __init__(self, cache: SetAssociativeCache):
        self.cache = cache
        self._last_installs: dict[int, int] = {}
        self._last_evictions: dict[int, int] = {}

    def occupancy_bytes(self, cos_id: int) -> int:
        """Bytes currently resident for the class of service."""
        lines = self.cache.occupancy_by_owner().get(cos_id, 0)
        return lines * self.cache.geometry.line_size

    def read(self, cos_id: int) -> MonitorReading:
        """Sample one COS; bandwidth is since this COS's previous read."""
        installs_total = self.cache.installs_by_owner.get(cos_id, 0)
        evict_total = self.cache.evictions_by_owner.get(cos_id, 0)
        d_installs = installs_total - self._last_installs.get(cos_id, 0)
        d_evict = evict_total - self._last_evictions.get(cos_id, 0)
        self._last_installs[cos_id] = installs_total
        self._last_evictions[cos_id] = evict_total
        occ = self.occupancy_bytes(cos_id)
        return MonitorReading(
            cos_id=cos_id,
            occupancy_bytes=occ,
            occupancy_fraction=occ / self.cache.geometry.size_bytes,
            installs=d_installs,
            evictions_suffered=d_evict,
            local_bandwidth_bytes=d_installs * self.cache.geometry.line_size,
        )

    def read_all(self) -> dict[int, MonitorReading]:
        """Sample every COS that has ever installed a line."""
        seen = set(self.cache.installs_by_owner) | set(
            self.cache.occupancy_by_owner()
        )
        seen.discard(SetAssociativeCache.INVALID_OWNER)
        return {cos: self.read(cos) for cos in sorted(seen)}

    def reset(self) -> None:
        """Forget previous read positions (bandwidth baselines)."""
        self._last_installs.clear()
        self._last_evictions.clear()
