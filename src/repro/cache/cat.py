"""Intel CAT semantics: contiguous way masks, classes of service, and the
private/shared-region structure proved in Section 2 of the paper.

A *short-term allocation policy* is a triple ``(a, a', t)``: default
setting ``a``, boosted setting ``a'`` and timeout ``t``.  The paper proves
two structural conjectures under contiguous allocation, which this module
both computes and verifies:

1. private regions of distinct policies are disjoint, and
2. a short-term allocation shares cache with at most two other settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, order=True)
class WayMask:
    """A contiguous range of cache ways ``[offset, offset + length)``.

    Intel CAT capacity bitmasks (CBMs) must be contiguous; representing
    them as (offset, length) pairs makes that invariant structural.
    """

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")
        if self.length <= 0:
            raise ValueError(f"length must be > 0, got {self.length}")

    @property
    def end(self) -> int:
        """One past the last way in the mask."""
        return self.offset + self.length

    def ways(self) -> np.ndarray:
        """Indices of the ways enabled by this mask."""
        return np.arange(self.offset, self.end, dtype=np.intp)

    def bitmask(self) -> int:
        """The CBM as an integer (bit ``i`` set when way ``i`` is enabled)."""
        return ((1 << self.length) - 1) << self.offset

    def contains(self, way: int) -> bool:
        return self.offset <= way < self.end

    def covers(self, other: "WayMask") -> bool:
        """True when every way of ``other`` is inside this mask."""
        return self.offset <= other.offset and other.end <= self.end

    def overlaps(self, other: "WayMask") -> bool:
        return self.offset < other.end and other.offset < self.end

    def intersection(self, other: "WayMask") -> "WayMask | None":
        lo = max(self.offset, other.offset)
        hi = min(self.end, other.end)
        if hi <= lo:
            return None
        return WayMask(lo, hi - lo)

    @classmethod
    def from_bitmask(cls, bits: int) -> "WayMask":
        """Parse an integer CBM; raises if the set bits are not contiguous."""
        if bits <= 0:
            raise ValueError("bitmask must have at least one bit set")
        offset = (bits & -bits).bit_length() - 1
        length = bits.bit_length() - offset
        if bits != ((1 << length) - 1) << offset:
            raise ValueError(f"bitmask {bits:#b} is not contiguous")
        return cls(offset, length)


# An allocation setting in the paper *is* a contiguous way range.
AllocationSetting = WayMask


@dataclass(frozen=True)
class ShortTermPolicy:
    """A short-term allocation policy ``(a, a', t)``.

    ``default`` is the allocation used during normal execution, ``boost``
    the temporary allocation granted when a query's time in system exceeds
    ``timeout`` (expressed relative to expected service time, Eq. 4;
    ``timeout`` of e.g. 1.5 means trigger at 150% of service time).
    """

    default: WayMask
    boost: WayMask
    timeout: float

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {self.timeout}")
        if not self.boost.covers(self.default):
            raise ValueError(
                "boost mask must cover the default mask so private ways stay "
                f"accessible during short-term allocation: {self.default} vs {self.boost}"
            )

    @property
    def gross_increase(self) -> float:
        """Ratio l_a' / l_a used to normalize effective allocation (Eq. 3)."""
        return self.boost.length / self.default.length

    def active_mask(self, boosted: bool) -> WayMask:
        return self.boost if boosted else self.default


def private_region(
    policy: ShortTermPolicy, others: "list[ShortTermPolicy]"
) -> WayMask | None:
    """The private cache region ``V_(a, a')`` of Equation 1.

    A way is private to ``policy`` when it is enabled in both the default
    and boosted settings and not enabled in any setting of any other
    policy.  Under contiguous masks the result is itself contiguous (or
    empty).
    """
    base = policy.default.intersection(policy.boost)
    if base is None:
        return None
    lo, hi = base.offset, base.end
    for other in others:
        for mask in (other.default, other.boost):
            inter = WayMask(lo, hi - lo).intersection(mask) if hi > lo else None
            if inter is None:
                continue
            # Shrink the candidate region away from the intrusion. Because
            # masks are contiguous the surviving region stays contiguous:
            # keep the larger of the two residual sides.
            left = inter.offset - lo
            right = hi - inter.end
            if left >= right:
                hi = inter.offset
            else:
                lo = inter.end
            if hi <= lo:
                return None
    return WayMask(lo, hi - lo)


@dataclass
class CatController:
    """Registry of short-term policies for collocated workloads on one LLC.

    Tracks which workloads are currently boosted and exposes the
    write-enabled ways for each, mirroring the WE logic in Figure 1.
    """

    n_ways: int
    _policies: dict[str, ShortTermPolicy] = field(default_factory=dict)
    _boosted: set = field(default_factory=set)

    def register(self, workload: str, policy: ShortTermPolicy) -> None:
        """Attach a policy to a workload name, validating it fits the LLC."""
        if policy.boost.end > self.n_ways or policy.default.end > self.n_ways:
            raise ValueError(
                f"policy for {workload!r} uses ways beyond the {self.n_ways}-way LLC"
            )
        self._policies[workload] = policy
        self._boosted.discard(workload)

    def unregister(self, workload: str) -> None:
        self._policies.pop(workload, None)
        self._boosted.discard(workload)

    @property
    def workloads(self) -> list[str]:
        return list(self._policies)

    def policy(self, workload: str) -> ShortTermPolicy:
        return self._policies[workload]

    def set_boosted(self, workload: str, boosted: bool) -> None:
        """Switch a workload between its default and boosted class of service."""
        if workload not in self._policies:
            raise KeyError(f"unknown workload {workload!r}")
        if boosted:
            self._boosted.add(workload)
        else:
            self._boosted.discard(workload)

    def is_boosted(self, workload: str) -> bool:
        return workload in self._boosted

    def active_mask(self, workload: str) -> WayMask:
        return self._policies[workload].active_mask(workload in self._boosted)

    def private_region(self, workload: str) -> WayMask | None:
        """Ways only this workload can ever fill (Eq. 1)."""
        others = [p for w, p in self._policies.items() if w != workload]
        return private_region(self._policies[workload], others)

    # -- Section 2 conjectures, checkable at configuration time ----------

    def private_regions_disjoint(self) -> bool:
        """Conjecture 1: private regions of registered policies are disjoint."""
        regions = [
            r
            for w in self._policies
            if (r := self.private_region(w)) is not None
        ]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                if a.overlaps(b):
                    return False
        return True

    def sharer_counts(self) -> dict[str, int]:
        """For each workload, how many *other* settings overlap its boost mask."""
        counts: dict[str, int] = {}
        for w, p in self._policies.items():
            n = 0
            for w2, p2 in self._policies.items():
                if w2 == w:
                    continue
                if p.boost.overlaps(p2.boost) or p.boost.overlaps(p2.default):
                    n += 1
            counts[w] = n
        return counts

    def max_sharers(self) -> int:
        """Conjecture 2 bound: should be <= 2 when all policies keep private cache."""
        counts = self.sharer_counts()
        return max(counts.values(), default=0)

    def all_have_private_cache(self) -> bool:
        return all(self.private_region(w) is not None for w in self._policies)


def pairwise_layout(
    n_ways: int,
    private_ways: int,
    shared_ways: int,
    timeouts: tuple[float, float],
) -> tuple[ShortTermPolicy, ShortTermPolicy]:
    """Build the paper's pairwise collocation layout (Section 5).

    Matches the paper's example (Jacobi private ways #1-2, BFS private
    ways #5-6, shared ways #3-4 between them): workload A reserves ways
    ``[0, private)``, the ``shared_ways`` immediately after are granted to
    either workload during short-term allocation, and workload B reserves
    the ways immediately after the shared region.
    """
    if 2 * private_ways + shared_ways > n_ways:
        raise ValueError(
            f"layout needs {2 * private_ways + shared_ways} ways, LLC has {n_ways}"
        )
    a_default = WayMask(0, private_ways)
    a_boost = WayMask(0, private_ways + shared_ways)
    b_default = WayMask(private_ways + shared_ways, private_ways)
    b_boost = WayMask(private_ways, private_ways + shared_ways)
    return (
        ShortTermPolicy(a_default, a_boost, timeouts[0]),
        ShortTermPolicy(b_default, b_boost, timeouts[1]),
    )
