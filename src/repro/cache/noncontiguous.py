"""Non-contiguous cache allocation (Section 2's closing remark).

The paper's structural results — private regions disjoint, at most two
sharers per short-term setting — are consequences of Intel CAT's
*contiguous* capacity bitmasks.  Section 2 notes the shared-cache
analysis "is also relevant to non-contiguous cache allocation"; this
module provides arbitrary way sets and shows what changes: with
non-contiguous masks a short-term allocation can share cache with any
number of other settings while every workload still keeps private ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.cat import WayMask


@dataclass(frozen=True)
class WaySet:
    """An arbitrary (possibly non-contiguous) set of cache ways."""

    ways: frozenset

    def __post_init__(self) -> None:
        if not self.ways:
            raise ValueError("a way set must be non-empty")
        if any((not isinstance(w, (int, np.integer))) or w < 0 for w in self.ways):
            raise ValueError("ways must be non-negative integers")
        object.__setattr__(self, "ways", frozenset(int(w) for w in self.ways))

    @classmethod
    def from_mask(cls, mask: WayMask) -> "WaySet":
        return cls(frozenset(int(w) for w in mask.ways()))

    @classmethod
    def from_bitmask(cls, bits: int) -> "WaySet":
        if bits <= 0:
            raise ValueError("bitmask must have at least one bit set")
        return cls(frozenset(i for i in range(bits.bit_length()) if bits >> i & 1))

    def bitmask(self) -> int:
        return sum(1 << w for w in self.ways)

    @property
    def size(self) -> int:
        return len(self.ways)

    @property
    def is_contiguous(self) -> bool:
        lo, hi = min(self.ways), max(self.ways)
        return hi - lo + 1 == len(self.ways)

    def covers(self, other: "WaySet") -> bool:
        return other.ways <= self.ways

    def overlaps(self, other: "WaySet") -> bool:
        return bool(self.ways & other.ways)

    def union(self, other: "WaySet") -> "WaySet":
        return WaySet(self.ways | other.ways)

    def intersection(self, other: "WaySet") -> "WaySet | None":
        inter = self.ways & other.ways
        return WaySet(inter) if inter else None

    def difference(self, other: "WaySet") -> "WaySet | None":
        diff = self.ways - other.ways
        return WaySet(diff) if diff else None


@dataclass(frozen=True)
class NonContiguousPolicy:
    """A short-term policy over arbitrary way sets."""

    default: WaySet
    boost: WaySet
    timeout: float

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError("timeout must be >= 0")
        if not self.boost.covers(self.default):
            raise ValueError("boost set must cover the default set")

    @property
    def gross_increase(self) -> float:
        return self.boost.size / self.default.size


@dataclass
class NonContiguousController:
    """Class-of-service registry without the contiguity constraint."""

    n_ways: int
    _policies: dict = field(default_factory=dict)

    def register(self, workload: str, policy: NonContiguousPolicy) -> None:
        top = max(policy.boost.ways)
        if top >= self.n_ways:
            raise ValueError(
                f"policy for {workload!r} uses way {top} on a {self.n_ways}-way LLC"
            )
        self._policies[workload] = policy

    @property
    def workloads(self) -> list[str]:
        return list(self._policies)

    def private_region(self, workload: str) -> WaySet | None:
        """Ways in both the default and boost sets that no other policy
        ever enables (Eq. 1 generalized to arbitrary sets)."""
        pol = self._policies[workload]
        base = pol.default.ways & pol.boost.ways
        for name, other in self._policies.items():
            if name == workload:
                continue
            base = base - other.default.ways - other.boost.ways
        return WaySet(base) if base else None

    def sharer_counts(self) -> dict[str, int]:
        counts = {}
        for name, pol in self._policies.items():
            n = 0
            for other_name, other in self._policies.items():
                if other_name == name:
                    continue
                if pol.boost.overlaps(other.boost) or pol.boost.overlaps(
                    other.default
                ):
                    n += 1
            counts[name] = n
        return counts

    def max_sharers(self) -> int:
        return max(self.sharer_counts().values(), default=0)

    def all_have_private_cache(self) -> bool:
        return all(
            self.private_region(w) is not None for w in self._policies
        )


def star_layout(
    n_workloads: int,
    private_ways_each: int,
    shared_ways: int,
    timeout: float = 1.0,
) -> list[NonContiguousPolicy]:
    """A layout impossible under contiguous CAT: one shared pool that
    *every* workload can borrow during short-term allocation, while each
    keeps disjoint private ways.

    Ways ``[0, shared_ways)`` form the pool; workload *i* owns the
    private ways ``[shared + i*p, shared + (i+1)*p)``.  Under contiguous
    allocation this requires >2 sharers of one region, which Section 2
    proves impossible; non-contiguous masks allow it directly.
    """
    if n_workloads < 1 or private_ways_each < 1 or shared_ways < 1:
        raise ValueError("need positive workload count, private and shared ways")
    pool = WaySet(frozenset(range(shared_ways)))
    out = []
    for i in range(n_workloads):
        lo = shared_ways + i * private_ways_each
        private = WaySet(frozenset(range(lo, lo + private_ways_each)))
        out.append(
            NonContiguousPolicy(
                default=private, boost=private.union(pool), timeout=timeout
            )
        )
    return out
