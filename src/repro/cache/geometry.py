"""Cache geometry: sets x ways x line size, and address decomposition."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Physical organization of one cache level.

    Parameters
    ----------
    n_sets:
        Number of sets (must be a power of two so set indexing is a bit
        slice of the address, as in real hardware).
    n_ways:
        Associativity. CAT way masks partition this dimension.
    line_size:
        Cache line size in bytes (power of two).
    """

    n_sets: int
    n_ways: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.n_sets):
            raise ValueError(f"n_sets must be a power of two, got {self.n_sets}")
        if self.n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {self.n_ways}")
        if not _is_power_of_two(self.line_size):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.n_sets * self.n_ways * self.line_size

    @property
    def way_size_bytes(self) -> int:
        """Capacity of a single way in bytes (the CAT allocation unit)."""
        return self.n_sets * self.line_size

    @property
    def offset_bits(self) -> int:
        return int(self.line_size).bit_length() - 1

    @property
    def index_bits(self) -> int:
        return int(self.n_sets).bit_length() - 1

    def split_address(self, addresses) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized (tag, set index) decomposition of byte addresses.

        Returns
        -------
        tags, set_indices:
            Integer arrays of the same shape as ``addresses``.
        """
        addr = np.asarray(addresses, dtype=np.int64)
        if np.any(addr < 0):
            raise ValueError("addresses must be non-negative")
        line = addr >> self.offset_bits
        set_idx = line & (self.n_sets - 1)
        tag = line >> self.index_bits
        return tag, set_idx

    @classmethod
    def from_size(
        cls, size_bytes: int, n_ways: int, line_size: int = 64
    ) -> "CacheGeometry":
        """Build a geometry with the given total size, rounding sets down
        to the nearest power of two."""
        raw_sets = size_bytes // (n_ways * line_size)
        if raw_sets < 1:
            raise ValueError(
                f"size {size_bytes} too small for {n_ways} ways of {line_size}B lines"
            )
        n_sets = 1 << (int(raw_sets).bit_length() - 1)
        return cls(n_sets=n_sets, n_ways=n_ways, line_size=line_size)
