"""Shared-way contention model.

When two collocated workloads are *both* in short-term allocation their
fills compete for the shared ways.  Following the occupancy model of
LRU-managed shared caches, each sharer's steady-state share of the
shared region is proportional to its miss (fill) intensity.  The module
also offers an equal-split variant for the ablation called out in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SharedWayContention:
    """Split ``shared_ways`` among concurrent sharers.

    Parameters
    ----------
    mode:
        ``"occupancy"`` (proportional to fill intensity) or ``"equal"``.
    churn:
        Extra capacity loss when multiple sharers fill concurrently.
        Interleaved fills in an LRU-shared region evict each other's
        lines before reuse, so each sharer's *useful* capacity is below
        its occupancy share — the superlinear interference that makes
        contention hard to predict from capacity alone (and that static
        partitioning work like dCat exists to avoid).  ``churn`` scales
        the loss: sharer *i* keeps ``share_i * (1 - churn * (1 -
        share_i/shared))``.  0 disables the effect.
    """

    mode: str = "occupancy"
    churn: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in ("occupancy", "equal"):
            raise ValueError(f"unknown contention mode {self.mode!r}")
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError(f"churn must be in [0, 1], got {self.churn}")

    def effective_shared_ways(
        self, shared_ways: float, intensities
    ) -> np.ndarray:
        """Effective share of the shared region per sharer.

        Parameters
        ----------
        shared_ways:
            Size of the shared region (ways; fractional allowed because
            the testbed works in expected values).
        intensities:
            Per-sharer fill intensity (e.g. misses/second).  Entries of 0
            mean the sharer is not currently using the shared region and
            receive 0 ways.
        """
        lam = np.asarray(intensities, dtype=float)
        if np.any(lam < 0):
            raise ValueError("intensities must be non-negative")
        active = lam > 0
        n_active = int(active.sum())
        out = np.zeros_like(lam)
        if n_active == 0 or shared_ways <= 0:
            return out
        if n_active == 1:
            out[active] = shared_ways
            return out
        if self.mode == "equal":
            out[active] = shared_ways / n_active
        else:
            out[active] = shared_ways * lam[active] / lam[active].sum()
        if self.churn > 0:
            frac = out[active] / shared_ways
            out[active] *= 1.0 - self.churn * (1.0 - frac)
        return out

    def slowdown_factor(
        self,
        baseline_miss_ratio: float,
        contended_miss_ratio: float,
        memory_boundedness: float,
    ) -> float:
        """Multiplicative service-time inflation from extra misses.

        ``memory_boundedness`` in [0, 1] is the fraction of execution
        time attributable to memory stalls at the baseline miss ratio;
        the stall component scales with the miss ratio.
        """
        if baseline_miss_ratio <= 0:
            return 1.0
        if not 0.0 <= memory_boundedness <= 1.0:
            raise ValueError("memory_boundedness must be in [0, 1]")
        ratio = contended_miss_ratio / baseline_miss_ratio
        return (1.0 - memory_boundedness) + memory_boundedness * ratio
