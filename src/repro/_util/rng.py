"""Deterministic random-number-generator plumbing.

Every stochastic component in :mod:`repro` accepts ``rng`` as either an
integer seed, an existing :class:`numpy.random.Generator`, or ``None``.
This module centralizes the conversion so that simulations are exactly
reproducible when seeded and independent when spawned.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_rng(rng: "RngLike" = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, a
        :class:`~numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: "RngLike", n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Children are derived through :class:`~numpy.random.SeedSequence`
    spawning, so parallel workers (e.g. forest trees trained across a
    process pool) never share streams.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = as_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
