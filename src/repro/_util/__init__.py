"""Shared utilities: seeded RNG handling and argument validation."""

from repro._util.rng import as_rng, spawn_rngs
from repro._util.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
]
