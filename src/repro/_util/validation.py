"""Small argument-validation helpers used across the package."""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, closed: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) when open)."""
    if closed:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_probability_vector(name: str, values) -> np.ndarray:
    """Validate that ``values`` is a non-negative vector summing to 1."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    total = arr.sum()
    if not np.isclose(total, 1.0):
        raise ValueError(f"{name} must sum to 1, got {total}")
    return arr
