"""Synthetic architectural performance counters.

Substitutes for the Linux perf counters the paper samples (Section 4):
29 cache-usage counters per service, sampled 0.2-1 Hz, derived causally
from the simulated cache state so the deep-learning stage has real
signal to find.
"""

from repro.counters.events import (
    COUNTER_NAMES,
    N_COUNTERS,
    synthesize_tick,
    synthesize_ticks,
)
from repro.counters.sampler import CounterSampler, sample_service_counters
from repro.counters.trace import CacheUsageTrace, order_counters

__all__ = [
    "COUNTER_NAMES",
    "N_COUNTERS",
    "synthesize_tick",
    "synthesize_ticks",
    "CounterSampler",
    "sample_service_counters",
    "CacheUsageTrace",
    "order_counters",
]
