"""The 29 cache-related architectural counters and their synthesis.

Counter values for one sampling tick are derived from the workload's
miss-ratio curve at the instantaneous effective LLC capacity, its access
intensity, and the fraction of the tick it was busy/boosted, with
multiplicative measurement noise.  The derivation keeps counters
*causally* tied to effective cache allocation — the signal multi-grained
scanning must extract.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.workloads.base import WorkloadSpec

#: Counter names grouped by type (the "spatial" ordering of Figure 7c).
COUNTER_NAMES: tuple[str, ...] = (
    # L1 data cache
    "l1d_loads",
    "l1d_load_misses",
    "l1d_stores",
    "l1d_store_misses",
    # L1 instruction cache
    "l1i_loads",
    "l1i_load_misses",
    # L2
    "l2_requests",
    "l2_loads",
    "l2_load_misses",
    "l2_stores",
    "l2_store_misses",
    "l2_prefetches",
    "l2_prefetch_misses",
    # LLC
    "llc_references",
    "llc_loads",
    "llc_load_misses",
    "llc_stores",
    "llc_store_misses",
    "llc_evictions",
    "llc_occupancy_bytes",
    "llc_ways_allocated",
    # memory / pipeline
    "mem_bandwidth_bytes",
    "dtlb_load_misses",
    "dtlb_store_misses",
    "instructions",
    "cycles",
    "stalled_cycles_mem",
    "offcore_requests",
    "boost_active",
)

N_COUNTERS = len(COUNTER_NAMES)
assert N_COUNTERS == 29, "the paper samples 29 cache-usage counters"

#: Fixed per-level filtering ratios by access-stream kind: what fraction
#: of accesses miss L1, and of those, what fraction miss L2.
_LEVEL_RATIOS = {
    "loop": (0.04, 0.30),
    "zipf": (0.12, 0.45),
    "strided": (0.20, 0.55),
    "sequential": (0.35, 0.80),
}

_LINE = 64


def synthesize_ticks(
    spec: WorkloadSpec,
    capacity_bytes,
    busy_fraction,
    boost_fraction,
    dt: float,
    ways_allocated,
    rng=None,
    noise: float = 0.05,
) -> np.ndarray:
    """Counter matrix for a batch of sampling intervals, vectorized.

    Per-tick inputs (``capacity_bytes``, ``busy_fraction``,
    ``boost_fraction``, ``ways_allocated``) broadcast against each other
    to a common tick count ``T``; the result has shape
    ``(T, N_COUNTERS)``.  The arithmetic is elementwise-identical to the
    scalar per-tick derivation, and the noise matrix is drawn row-major,
    so a batched call consumes the RNG stream exactly as ``T``
    successive scalar calls would — outputs are bit-identical.

    Parameters
    ----------
    spec:
        The workload whose counters are sampled.
    capacity_bytes:
        Mean effective LLC capacity during each tick.
    busy_fraction:
        Fraction of each tick with at least one query in service.
    boost_fraction:
        Fraction of each tick the service held short-term allocation.
    ways_allocated:
        Mean number of LLC ways enabled.
    noise:
        Relative std-dev of multiplicative measurement noise.
    """
    if dt <= 0:
        raise ValueError("dt must be > 0")
    capacity_bytes, busy_fraction, boost_fraction, ways_allocated = (
        np.broadcast_arrays(
            np.asarray(capacity_bytes, dtype=float),
            np.asarray(busy_fraction, dtype=float),
            np.asarray(boost_fraction, dtype=float),
            np.asarray(ways_allocated, dtype=float),
        )
    )
    if capacity_bytes.ndim > 1:
        raise ValueError("per-tick inputs must be scalars or 1-D arrays")
    if not (
        np.all((busy_fraction >= 0) & (busy_fraction <= 1))
        and np.all((boost_fraction >= 0) & (boost_fraction <= 1))
    ):
        raise ValueError("fractions must be in [0, 1]")
    rng = as_rng(rng)
    capacity_bytes = np.atleast_1d(capacity_bytes)
    busy_fraction = np.atleast_1d(busy_fraction)
    boost_fraction = np.atleast_1d(boost_fraction)
    ways_allocated = np.atleast_1d(ways_allocated)

    l1_mr, l2_mr = _LEVEL_RATIOS[spec.stream_kind]
    accesses = spec.access_intensity * dt * busy_fraction
    stores = accesses * spec.store_fraction
    loads = accesses - stores

    l1d_load_miss = loads * l1_mr
    l1d_store_miss = stores * l1_mr
    l1i_loads = accesses * 0.4
    l1i_miss = l1i_loads * 0.01

    l2_req = l1d_load_miss + l1d_store_miss + l1i_miss
    l2_loads = l1d_load_miss + l1i_miss
    l2_load_miss = l2_loads * l2_mr
    l2_stores = l1d_store_miss
    l2_store_miss = l2_stores * l2_mr
    l2_pref = l2_req * 0.15
    l2_pref_miss = l2_pref * l2_mr

    llc_mr = np.where(
        capacity_bytes > 0, spec.mrc.miss_ratio(capacity_bytes), 1.0
    )
    llc_refs = l2_load_miss + l2_store_miss + l2_pref_miss
    llc_loads = l2_load_miss
    llc_load_miss = llc_loads * llc_mr
    llc_stores = l2_store_miss
    llc_store_miss = llc_stores * llc_mr
    llc_evict = (llc_load_miss + llc_store_miss) * 0.9
    llc_occ = np.minimum(capacity_bytes, spec.mrc.footprint_bytes) * busy_fraction

    mem_bw = (llc_load_miss + llc_store_miss) * _LINE
    dtlb_l = loads * 0.002
    dtlb_s = stores * 0.002
    instructions = accesses * 4.0
    # Cycles grow with memory stalls: more LLC misses -> more stall cycles.
    m_base = float(spec.mrc.miss_ratio(spec.baseline_capacity))
    stall_scale = llc_mr / m_base if m_base > 0 else np.ones_like(llc_mr)
    base_cycles = instructions / 1.5
    stalled = base_cycles * spec.memory_boundedness * stall_scale
    cycles = base_cycles * (1 - spec.memory_boundedness) + stalled
    offcore = llc_refs * 1.05

    raw = np.stack(
        [
            loads,
            l1d_load_miss,
            stores,
            l1d_store_miss,
            l1i_loads,
            l1i_miss,
            l2_req,
            l2_loads,
            l2_load_miss,
            l2_stores,
            l2_store_miss,
            l2_pref,
            l2_pref_miss,
            llc_refs,
            llc_loads,
            llc_load_miss,
            llc_stores,
            llc_store_miss,
            llc_evict,
            llc_occ,
            ways_allocated,
            mem_bw,
            dtlb_l,
            dtlb_s,
            instructions,
            cycles,
            stalled,
            offcore,
            boost_fraction,
        ]
    )
    if noise > 0:
        # Tick-major draw: matches T successive scalar-call draws.
        raw = raw * rng.normal(1.0, noise, size=(raw.shape[1], raw.shape[0])).T
    return np.maximum(raw, 0.0).T


def synthesize_tick(
    spec: WorkloadSpec,
    capacity_bytes: float,
    busy_fraction: float,
    boost_fraction: float,
    dt: float,
    ways_allocated: float,
    rng=None,
    noise: float = 0.05,
) -> np.ndarray:
    """Counter vector for one sampling interval of length ``dt`` seconds.

    Scalar convenience wrapper over :func:`synthesize_ticks`; see there
    for parameter semantics.
    """
    return synthesize_ticks(
        spec,
        capacity_bytes,
        busy_fraction,
        boost_fraction,
        dt,
        ways_allocated,
        rng=rng,
        noise=noise,
    )[0]
