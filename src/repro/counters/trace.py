"""Cache usage traces: fixed-size counter matrices with orderings.

Traces are (n_counters x n_ticks) matrices.  Figure 7c studies how the
*ordering* of counters affects multi-grained scanning: grouping related
counters ("spatial" ordering, the natural order of ``COUNTER_NAMES``)
preserves locality a convolution can exploit; shuffling destroys it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.counters.events import COUNTER_NAMES, N_COUNTERS


def order_counters(
    matrix: np.ndarray, ordering: str = "spatial", rng=None
) -> np.ndarray:
    """Reorder the counter axis of a (n_counters, n_ticks) matrix.

    ``"spatial"`` keeps the grouped-by-type order; ``"shuffled"``
    applies a random permutation (the Figure 7c ablation).
    """
    if matrix.shape[0] != N_COUNTERS:
        raise ValueError(
            f"expected {N_COUNTERS} counters on axis 0, got {matrix.shape[0]}"
        )
    if ordering == "spatial":
        return matrix
    if ordering == "shuffled":
        perm = as_rng(rng).permutation(N_COUNTERS)
        return matrix[perm]
    raise ValueError(f"unknown ordering {ordering!r}")


@dataclass
class CacheUsageTrace:
    """One profiling window's counter trace for a collocated pair.

    ``data`` stacks each collocated service's counters along axis 0 in
    service order: shape (n_services * 29, n_ticks).  Short windows are
    zero-padded on the right so all traces are equally sized (Section
    3.1: "we fill zero values to pad traces").
    """

    data: np.ndarray
    service_names: tuple[str, ...]

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=float)
        if self.data.ndim != 2:
            raise ValueError("trace data must be 2-D")
        if self.data.shape[0] != len(self.service_names) * N_COUNTERS:
            raise ValueError(
                f"axis 0 must be n_services*{N_COUNTERS}, got {self.data.shape[0]}"
            )

    @property
    def n_services(self) -> int:
        return len(self.service_names)

    @property
    def n_ticks(self) -> int:
        return self.data.shape[1]

    @classmethod
    def from_counters(
        cls,
        per_service: list[np.ndarray],
        service_names: list[str],
        n_ticks: int,
    ) -> "CacheUsageTrace":
        """Stack per-service (n_ticks_i, 29) counter matrices, padding or
        truncating every one to exactly ``n_ticks`` columns."""
        if len(per_service) != len(service_names):
            raise ValueError("need one counter matrix per service name")
        blocks = []
        for mat in per_service:
            m = np.asarray(mat, dtype=float).T  # -> (29, n_ticks_i)
            if m.shape[0] != N_COUNTERS:
                raise ValueError(f"expected 29-counter matrices, got {m.shape}")
            if m.shape[1] >= n_ticks:
                m = m[:, :n_ticks]
            else:
                m = np.pad(m, ((0, 0), (0, n_ticks - m.shape[1])))
            blocks.append(m)
        return cls(data=np.vstack(blocks), service_names=tuple(service_names))

    def reorder(self, ordering: str, rng=None) -> "CacheUsageTrace":
        """Apply a counter ordering per service block."""
        blocks = [
            order_counters(
                self.data[i * N_COUNTERS : (i + 1) * N_COUNTERS], ordering, rng=rng
            )
            for i in range(self.n_services)
        ]
        return CacheUsageTrace(
            data=np.vstack(blocks), service_names=self.service_names
        )

    def flatten(self) -> np.ndarray:
        """Row-major flattening for models without spatial structure."""
        return self.data.ravel()

    def counter_row(self, service_idx: int, counter: str) -> np.ndarray:
        """Time series of one named counter for one service."""
        j = COUNTER_NAMES.index(counter)
        return self.data[service_idx * N_COUNTERS + j]
