"""Rate-limited counter sampling over a simulated run's state segments.

The runtime records per-service state snapshots ``(time, capacity,
n_in_service, boosted)``.  The sampler integrates those piecewise-
constant segments over fixed sampling ticks (1 Hz - 0.2 Hz in the
paper) and synthesizes a counter vector per tick.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.counters.events import N_COUNTERS, synthesize_tick
from repro.testbed.machine import XeonSpec
from repro.testbed.runtime import ServiceResult
from repro.workloads.base import WorkloadSpec


def _segment_means(
    segments: list[tuple[float, float, int, int, bool]],
    t0: float,
    t1: float,
    n_servers: int,
) -> tuple[float, float, float, float]:
    """Time-weighted (capacity, busy_fraction, boost_fraction,
    mean_queue_length) over [t0, t1).

    ``segments`` are (time, capacity, n_in_service, n_queued, boosted)
    snapshots, piecewise constant until the next snapshot.
    """
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    total = t1 - t0
    cap_acc = busy_acc = boost_acc = queue_acc = 0.0
    times = [s[0] for s in segments]
    # Find the segment active at t0.
    idx = int(np.searchsorted(times, t0, side="right")) - 1
    idx = max(idx, 0)
    t = t0
    while t < t1 and idx < len(segments):
        seg_time, cap, n_in, n_queued, boosted = segments[idx]
        seg_end = times[idx + 1] if idx + 1 < len(segments) else np.inf
        upto = min(seg_end, t1)
        dt = max(0.0, upto - t)
        cap_acc += cap * dt
        busy_acc += (min(n_in, n_servers) / n_servers) * dt
        boost_acc += (1.0 if boosted else 0.0) * dt
        queue_acc += n_queued * dt
        t = upto
        idx += 1
    return cap_acc / total, busy_acc / total, boost_acc / total, queue_acc / total


@dataclass(frozen=True)
class CounterSampler:
    """Sample a service's counters at ``sampling_hz`` over a run.

    ``sampling_hz`` is on the runtime's (normalized) clock; the paper's
    1 Hz-0.2 Hz rates map to 12-60 samples per minute of profiling.
    """

    sampling_hz: float = 1.0
    noise: float = 0.05

    def __post_init__(self) -> None:
        if self.sampling_hz <= 0:
            raise ValueError("sampling_hz must be > 0")
        if self.noise < 0:
            raise ValueError("noise must be >= 0")

    def sample(
        self,
        result: ServiceResult,
        spec: WorkloadSpec,
        machine: XeonSpec,
        t_start: float,
        t_end: float,
        rng=None,
    ) -> np.ndarray:
        """Counter matrix of shape (n_ticks, 29) over [t_start, t_end)."""
        if t_end <= t_start:
            raise ValueError("need t_end > t_start")
        rng = as_rng(rng)
        dt = 1.0 / self.sampling_hz
        n_ticks = max(1, int(np.floor((t_end - t_start) / dt)))
        out = np.empty((n_ticks, N_COUNTERS))
        n_servers = machine.cores_per_service
        default_ways = machine.mb_to_ways(spec.baseline_capacity / (1024 * 1024))
        for k in range(n_ticks):
            a = t_start + k * dt
            b = a + dt
            cap, busy, boost, _ = _segment_means(result.segments, a, b, n_servers)
            ways = cap / machine.way_bytes if machine.way_bytes > 0 else default_ways
            out[k] = synthesize_tick(
                spec,
                capacity_bytes=cap,
                busy_fraction=busy,
                boost_fraction=boost,
                dt=dt,
                ways_allocated=ways,
                rng=rng,
                noise=self.noise,
            )
        return out


def sample_service_counters(
    result: ServiceResult,
    spec: WorkloadSpec,
    machine: XeonSpec,
    sampling_hz: float = 1.0,
    noise: float = 0.05,
    rng=None,
) -> np.ndarray:
    """Counters over a service's whole observed span (convenience API)."""
    if result.arrival_times.size == 0:
        raise ValueError("service result has no completed queries")
    sampler = CounterSampler(sampling_hz=sampling_hz, noise=noise)
    t0 = float(result.arrival_times[0])
    t1 = float(result.completion_times.max())
    return sampler.sample(result, spec, machine, t0, t1, rng=rng)
