"""Command-line interface: ``python -m repro <command>``.

Commands
--------
workloads   print the Table 1 benchmark registry
machines    print the Xeon catalogue
simulate    run a collocation on the testbed and report response times
profile     run a Stage 1 profiling campaign and save it as .npz
policy      profile, train the model and print a recommended timeout vector
report      render a telemetry run-manifest (and event trace) as tables

Every pipeline command accepts ``--telemetry`` (enable the metrics
registry + span tracing and write a JSON run-manifest plus a JSONL span
log to ``--trace-dir``) and ``--trace-queue-events`` (also record
per-query simulator event traces).  Telemetry never changes results:
outputs are bit-identical with it on or off.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.analysis import format_table
from repro.baselines import RuntimeEvaluator, no_sharing_policy
from repro.core import StacModel, model_driven_policy, uniform_conditions
from repro.core.profiler import Profiler, ProfilerSettings
from repro.testbed import (
    MACHINES,
    CollocatedService,
    CollocationConfig,
    CollocationRuntime,
    get_machine,
)
from repro.workloads import get_workload, table1_rows


def _cmd_workloads(args) -> int:
    rows = [
        [r["wrk_id"], r["description"], r["cache_access_pattern"]]
        for r in table1_rows()
    ]
    print(
        format_table(
            ["wrk id", "description", "cache access pattern"],
            rows,
            title="Table 1 workloads",
        )
    )
    return 0


def _cmd_machines(args) -> int:
    rows = [
        [m.name, m.n_cores, m.llc_mb, m.llc_ways, m.max_collocated]
        for m in MACHINES.values()
    ]
    print(
        format_table(
            ["machine", "cores", "LLC MB", "ways", "max collocated"],
            rows,
            title="Xeon catalogue",
            precision=1,
        )
    )
    return 0


def _parse_timeout(value: str) -> float:
    if value.lower() in ("inf", "never"):
        return np.inf
    t = float(value)
    if t < 0:
        raise argparse.ArgumentTypeError("timeout must be >= 0 (or 'inf')")
    return t


def _cmd_simulate(args) -> int:
    machine = get_machine(args.machine)
    timeouts = args.timeouts or [np.inf] * len(args.pair)
    if len(timeouts) != len(args.pair):
        print("error: need one timeout per workload", file=sys.stderr)
        return 2
    cfg = CollocationConfig(
        machine=machine,
        services=[
            CollocatedService(
                get_workload(name), timeout=t, utilization=args.utilization
            )
            for name, t in zip(args.pair, timeouts)
        ],
        private_mb=args.private_mb,
        shared_mb=args.shared_mb,
    )
    res = CollocationRuntime(cfg, rng=args.seed).run(n_queries=args.queries)
    rows = []
    for s in res.services:
        rt = s.response_times_norm
        rows.append(
            [
                s.name,
                float(rt.mean()),
                float(np.percentile(rt, 50)),
                float(np.percentile(rt, 95)),
                s.boost_fraction,
                s.effective_allocation(),
            ]
        )
    print(
        format_table(
            ["service", "mean RT", "p50", "p95", "boost frac", "EA"],
            rows,
            title=(
                f"Collocation on {machine.name} at {args.utilization:.0%} load "
                "(response times relative to each service's baseline)"
            ),
        )
    )
    return 0


def _cmd_profile(args) -> int:
    conditions = uniform_conditions(tuple(args.pair), n=args.conditions, rng=args.seed)
    profiler = Profiler(
        machine=get_machine(args.machine),
        settings=ProfilerSettings(n_queries=args.queries),
        rng=args.seed,
    )
    ds = profiler.profile(conditions)
    from repro.core.io import save_dataset

    save_dataset(args.out, ds)
    print(f"profiled {len(ds)} rows over {args.conditions} conditions -> {args.out}")
    return 0


def _cmd_policy(args) -> int:
    from repro.core.sampling import grid_anchor_conditions

    pair = tuple(args.pair)
    conditions = uniform_conditions(
        pair, n=args.conditions, rng=args.seed
    ) + grid_anchor_conditions(pair, args.utilization)
    machine = get_machine(args.machine)
    profiler = Profiler(
        machine=machine,
        settings=ProfilerSettings(n_queries=args.queries),
        rng=args.seed,
    )
    print(f"profiling {pair} ({args.conditions} conditions)...")
    ds = profiler.profile(conditions)
    print(f"training {args.learner} model on {len(ds)} rows...")
    model = StacModel(
        machine=machine,
        learner=args.learner,
        n_jobs=args.train_jobs,
        forest_strategy=args.forest_strategy,
        rng=args.seed,
    ).fit(ds)
    utils = tuple([args.utilization] * len(pair))
    decision = model_driven_policy(
        model,
        pair,
        utils,
        n_jobs=args.jobs,
        warm_start=args.warm_start,
        batch=not args.no_batch,
    )
    print(f"recommended timeouts (x service time): {decision.timeouts}")
    if args.verify:
        evaluator = RuntimeEvaluator(
            machine=machine,
            specs=[get_workload(n) for n in pair],
            utilization=args.utilization,
            n_queries=args.queries * 3,
            rng=args.seed + 1,
        )
        base = evaluator.p95(no_sharing_policy(len(pair)).timeouts)
        ours = evaluator.p95(decision.timeouts)
        rows = [
            [name, base[i], ours[i], base[i] / ours[i]]
            for i, name in enumerate(pair)
        ]
        print(
            format_table(
                ["service", "p95 no-sharing", "p95 chosen", "speedup"],
                rows,
                title="Verification on the testbed",
            )
        )
    return 0


def _cmd_report(args) -> int:
    """Render a run manifest (and optional event trace) as ASCII tables."""
    from repro.telemetry import exporters, read_events_jsonl

    manifest_path = Path(args.manifest)
    if not manifest_path.exists():
        print(f"error: no such manifest: {manifest_path}", file=sys.stderr)
        return 2
    manifest = exporters.load_manifest(manifest_path)
    print(exporters.manifest_tables(manifest))
    events_path = Path(args.events) if args.events else None
    if events_path is None and manifest.get("events_file"):
        candidate = Path(manifest["events_file"])
        if not candidate.is_absolute():
            candidate = manifest_path.parent / candidate
        if candidate.exists():
            events_path = candidate
    if events_path is not None:
        if not events_path.exists():
            print(f"error: no such event log: {events_path}", file=sys.stderr)
            return 2
        print()
        print(exporters.events_table(read_events_jsonl(events_path)))
    return 0


def _telemetry_requested(args) -> bool:
    return bool(
        getattr(args, "telemetry", False)
        or getattr(args, "trace_queue_events", False)
    )


def _run_with_telemetry(args, command_line) -> int:
    """Execute one instrumented command and export its telemetry."""
    from repro.telemetry import exporters

    trace_dir = Path(args.trace_dir)
    telemetry.configure(trace_queue_events=args.trace_queue_events)
    try:
        with telemetry.span(f"repro.{args.command}"):
            rc = args.func(args)
        trace_dir.mkdir(parents=True, exist_ok=True)
        events_file = None
        n_events = None
        sink = telemetry.queue_sink()
        if sink is not None:
            n_events = sink.write_jsonl(trace_dir / "events.jsonl")
            events_file = "events.jsonl"  # relative to the manifest
        n_spans = exporters.write_spans_jsonl(
            trace_dir / "spans.jsonl", telemetry.get_span_log()
        )
        manifest = exporters.build_manifest(
            command=command_line,
            config={k: v for k, v in vars(args).items() if k != "func"},
            seeds={"seed": getattr(args, "seed", 0)},
            registry=telemetry.get_registry(),
            span_log=telemetry.get_span_log(),
            events_file=events_file,
            n_events=n_events,
        )
        exporters.write_manifest(trace_dir / "manifest.json", manifest)
        parts = [f"{n_spans} spans"]
        if n_events is not None:
            parts.append(f"{n_events} queue events")
        print(
            f"telemetry: wrote {trace_dir / 'manifest.json'} "
            f"({', '.join(parts)}); render with "
            f"'python -m repro report {trace_dir / 'manifest.json'}'"
        )
        return rc
    finally:
        telemetry.disable()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Short-term cache allocation modeling (ICPP'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="print the Table 1 registry").set_defaults(
        func=_cmd_workloads
    )
    sub.add_parser("machines", help="print the Xeon catalogue").set_defaults(
        func=_cmd_machines
    )

    def common(p, timeouts=False):
        p.add_argument("--pair", nargs="+", required=True, metavar="WORKLOAD")
        p.add_argument("--machine", default="e5-2683")
        p.add_argument("--utilization", type=float, default=0.9)
        p.add_argument("--queries", type=int, default=800)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--private-mb", type=float, default=2.0)
        p.add_argument("--shared-mb", type=float, default=2.0)
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="collect metrics + spans and write a run manifest to "
            "--trace-dir (results are bit-identical either way)",
        )
        p.add_argument(
            "--trace-dir",
            default="telemetry",
            help="directory for manifest.json / spans.jsonl / events.jsonl "
            "(default: %(default)s)",
        )
        p.add_argument(
            "--trace-queue-events",
            action="store_true",
            help="also record per-query simulator event traces "
            "(implies --telemetry)",
        )
        if timeouts:
            p.add_argument(
                "--timeouts",
                nargs="+",
                type=_parse_timeout,
                help="per-workload STA timeout (x service time; 'inf' disables)",
            )

    p_sim = sub.add_parser("simulate", help="run one collocation on the testbed")
    common(p_sim, timeouts=True)
    p_sim.set_defaults(func=_cmd_simulate)

    p_prof = sub.add_parser("profile", help="run a profiling campaign, save .npz")
    common(p_prof)
    p_prof.add_argument("--conditions", type=int, default=10)
    p_prof.add_argument("--out", default="profile.npz")
    p_prof.set_defaults(func=_cmd_profile)

    p_pol = sub.add_parser("policy", help="profile + train + recommend timeouts")
    common(p_pol)
    p_pol.add_argument("--conditions", type=int, default=10)
    p_pol.add_argument(
        "--learner",
        default="deep_forest",
        choices=("deep_forest", "cascade", "random_forest", "tree", "linear"),
    )
    p_pol.add_argument("--verify", action="store_true")
    p_pol.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the timeout-grid search "
        "(any value returns the identical vector)",
    )
    p_pol.add_argument(
        "--forest-strategy",
        choices=("exact", "hist"),
        default="exact",
        help="forest split finding: 'exact' (bit-identical trees) or "
        "'hist' (histogram-binned, several times faster to train)",
    )
    p_pol.add_argument(
        "--train-jobs",
        type=int,
        default=1,
        help="worker processes for forest training (one shared-memory "
        "pool per cascade level / MGS pass; identical model for any value)",
    )
    p_pol.add_argument(
        "--warm-start",
        action="store_true",
        help="warm-start the EA fixed point across neighbouring combos",
    )
    p_pol.add_argument(
        "--no-batch",
        action="store_true",
        help="force the serial queueing kernel for the grid search "
        "(identical results; batched is faster)",
    )
    p_pol.set_defaults(func=_cmd_policy)

    p_rep = sub.add_parser(
        "report", help="render a telemetry run-manifest as tables"
    )
    p_rep.add_argument("manifest", help="path to a manifest.json")
    p_rep.add_argument(
        "--events",
        default=None,
        help="events JSONL to summarize (default: the manifest's "
        "events_file, if present next to it)",
    )
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if _telemetry_requested(args):
            command_line = list(argv) if argv is not None else sys.argv[1:]
            return _run_with_telemetry(args, command_line)
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
